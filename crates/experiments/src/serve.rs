//! `repro serve` — a concurrent replay daemon with a result cache.
//!
//! The paper's experiments are one-shot sweeps; this module turns the
//! replay machinery into a long-lived service answering predictability
//! queries for many concurrent clients. A [`Server`] listens on TCP and
//! speaks a newline-delimited JSON **line protocol**: every request and
//! every response is one JSON object on one line.
//!
//! # The job lifecycle
//!
//! 1. **Admit.** A `submit` request carries a [`JobSpec`] — a synthetic
//!    scenario or a workload, a predictor bank, and options. Specs are
//!    parsed *strictly* (an unknown field is an error, never silently
//!    ignored) and validated before anything is scheduled. Admission is
//!    controlled twice: per client (at most `inflight_cap` unfinished
//!    jobs per connection) and globally (the bounded
//!    [`dvp_engine::JobQueue`] in front of the engine). An
//!    over-limit submit is answered with a structured `rejected` frame,
//!    never queued without bound.
//! 2. **Schedule.** Admitted jobs run on the queue's worker threads; each
//!    job internally fans out on the shared
//!    [`dvp_engine::ReplayEngine`].
//! 3. **Replay.** [`run_job`] materializes the trace (through the
//!    ordinary [`crate::TraceStore`] path, including its disk
//!    tier when a trace directory is configured), replays the requested
//!    bank, and renders a deterministic text payload — byte-identical to
//!    what the one-shot `repro job` CLI prints for the same spec.
//! 4. **Cache.** Completed payloads are memoized in a fingerprint-keyed
//!    [`crate::result_cache::ResultCache`] (in-memory LRU +
//!    optional on-disk tier). The cache key is
//!    [`JobSpec::canonical_key`]: the **engine epoch**
//!    ([`dvp_engine::engine_epoch`], a fingerprint of the
//!    predictor-semantics surface) prefixed to the job descriptor, so an
//!    identical later job on the *same* semantics is answered from cache
//!    byte-identically — and a daemon restarted on a binary with
//!    different semantics recomputes instead of serving stale bytes.
//! 5. **Stream.** The client sees `accepted`, then `progress`, then one
//!    terminal `result` / `error` frame (or an immediate `rejected`).
//!    Frames for one connection are serialized through a per-connection
//!    writer lock, so `accepted` always precedes that job's `result`.
//!
//! # Batch submission
//!
//! A `jobs` request carries many job specs, each tagged with a
//! client-chosen `id`, and is answered by **one interleaved response
//! stream**: per-job `accepted` / `rejected` / `progress` / terminal
//! frames in completion order, every frame carrying its job's id. A
//! whole sweep matrix is one round trip
//! ([`ServeClient::submit_batch`]), with per-job admission control and
//! byte-identical payloads vs N single submissions.
//!
//! # Scale-out: routers and workers
//!
//! The complete canonical key makes jobs location-independent, so the
//! daemon scales out shared-nothing. A [`Router`] (`repro serve
//! --router a,b,...`) accepts the same line protocol and forwards each
//! job to the backend worker owning its canonical key — rendezvous
//! hashing ([`route_backend`]), so each `repro serve --worker` process
//! owns a disjoint key range with its own disk tier. Backend frames are
//! relayed **verbatim**, so routed payloads are byte-identical to
//! worker-direct and one-shot ones; an unreachable backend produces a
//! structured `backend_down` terminal frame after bounded reconnect
//! attempts, never a hang.
//!
//! # Examples
//!
//! ```
//! use dvp_engine::ReplayEngine;
//! use dvp_experiments::serve::{JobSpec, Outcome, ServeClient, ServeOptions, Server, run_job};
//!
//! let engine = ReplayEngine::sequential();
//! let server = Server::start(engine.clone(), ServeOptions::default())?;
//! let mut client = ServeClient::connect(&server.addr().to_string())?;
//!
//! let spec = r#"{"scenario":{"kind":"constant","pcs":2,"records_per_pc":64},"bank":["l"]}"#;
//! let outcome = client.submit(spec)?;
//! let Outcome::Result { payload, .. } = outcome else { panic!("small job is admitted") };
//! // Byte-identical to computing the same job inline:
//! let inline = run_job(&JobSpec::parse(spec).unwrap(), &engine, None).unwrap();
//! assert_eq!(payload, inline);
//! client.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! Routed two-worker tier, batch-submitted through the router — every
//! payload byte-identical to the inline compute:
//!
//! ```
//! use dvp_engine::ReplayEngine;
//! use dvp_experiments::serve::{
//!     JobSpec, Outcome, Router, RouterOptions, ServeClient, ServeOptions, Server, run_job,
//! };
//!
//! let engine = ReplayEngine::sequential();
//! let w1 = Server::start(engine.clone(), ServeOptions::default())?;
//! let w2 = Server::start(engine.clone(), ServeOptions::default())?;
//! let router = Router::start(RouterOptions {
//!     backends: vec![w1.addr().to_string(), w2.addr().to_string()],
//!     ..RouterOptions::default()
//! })?;
//!
//! let jobs = [
//!     r#"{"scenario":{"kind":"constant","pcs":2,"records_per_pc":64},"bank":["l"]}"#,
//!     r#"{"scenario":{"kind":"stride","pcs":2,"records_per_pc":64,"stride":3},"bank":["s2"]}"#,
//! ];
//! let mut client = ServeClient::connect(&router.addr().to_string())?;
//! let outcomes = client.submit_batch(&jobs.map(String::from))?;
//! for (job, outcome) in jobs.iter().zip(&outcomes) {
//!     let Outcome::Result { payload, .. } = outcome else { panic!("admitted") };
//!     let inline = run_job(&JobSpec::parse(job).unwrap(), &engine, None).unwrap();
//!     assert_eq!(*payload, inline);
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::cache::TraceCache;
use crate::result_cache::{ResultCache, ResultCacheStats};
use crate::{TextTable, TraceStore, REFERENCE_OPT};
use dvp_core::PredictorConfig;
use dvp_engine::{JobQueue, ReplayEngine};
use dvp_workloads::synthetic::{Scenario, ScenarioKind, MAX_CYCLE};
use dvp_workloads::Benchmark;
use serde::json;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Version of the line protocol, announced in the `hello` frame.
pub const PROTOCOL_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Job specs
// ---------------------------------------------------------------------------

/// What a job replays: a synthetic scenario or a simulated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// A parameterized synthetic scenario (generated, never simulated).
    Scenario(Scenario),
    /// A real benchmark workload at `default_scale / scale_div`.
    Workload {
        /// The benchmark to simulate.
        benchmark: Benchmark,
        /// Scale divisor (1 = reference scale; `repro --quick` uses 4).
        scale_div: u32,
    },
}

/// One validated replay job: source × predictor bank × options.
///
/// The wire form is a JSON object with exactly one of `"scenario"` /
/// `"workload"`, plus optional `"bank"` (defaults to the paper bank),
/// `"sample"` (phase-sampled replay with functional warming), and
/// `"record_cap"`. Parsing is strict: unknown fields and out-of-range
/// parameters are errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// What to replay.
    pub source: JobSource,
    /// Predictor configuration names (`"l"`, `"s2"`, `"fcm1"`..`"fcm8"`).
    pub bank: Vec<String>,
    /// Replay only a SimPoint phase plan (functionally warmed) instead of
    /// the full trace.
    pub sample: bool,
    /// Truncate the trace to at most this many records.
    pub record_cap: Option<usize>,
}

/// Intermediate scenario fields, collected before kind-aware validation.
#[derive(Default)]
struct ScenarioFields {
    kind: Option<String>,
    pcs: Option<u32>,
    records_per_pc: Option<u32>,
    seed: Option<u64>,
    stride: Option<i64>,
    jitter_pct: Option<u8>,
    period: Option<u32>,
    order: Option<u32>,
    alphabet: Option<u64>,
    heap: Option<u32>,
}

impl ScenarioFields {
    /// Rejects any kind-specific field that does not belong to `kind`.
    fn forbid(&self, kind: &str, allowed: &[&str]) -> Result<(), String> {
        let present: [(&str, bool); 6] = [
            ("stride", self.stride.is_some()),
            ("jitter_pct", self.jitter_pct.is_some()),
            ("period", self.period.is_some()),
            ("order", self.order.is_some()),
            ("alphabet", self.alphabet.is_some()),
            ("heap", self.heap.is_some()),
        ];
        for (name, is_present) in present {
            if is_present && !allowed.contains(&name) {
                return Err(format!("field `{name}` does not apply to scenario kind `{kind}`"));
            }
        }
        Ok(())
    }

    fn require<T: Copy>(value: Option<T>, kind: &str, name: &str) -> Result<T, String> {
        value.ok_or_else(|| format!("scenario kind `{kind}` requires field `{name}`"))
    }

    /// Builds the validated [`Scenario`], mirroring [`Scenario::new`]'s
    /// panicking range asserts as structured errors (a daemon must never
    /// panic on client input).
    fn build(self) -> Result<Scenario, String> {
        let kind_name = self.kind.clone().ok_or("scenario requires field `kind`")?;
        let pcs = self.pcs.ok_or("scenario requires field `pcs`")?;
        let records_per_pc =
            self.records_per_pc.ok_or("scenario requires field `records_per_pc`")?;
        if pcs == 0 {
            return Err("scenario `pcs` must be positive".to_owned());
        }
        if records_per_pc == 0 {
            return Err("scenario `records_per_pc` must be positive".to_owned());
        }
        let seed = self.seed.unwrap_or(1);
        let kind = match kind_name.as_str() {
            "constant" => {
                self.forbid(&kind_name, &[])?;
                ScenarioKind::Constant
            }
            "mixed" => {
                self.forbid(&kind_name, &[])?;
                ScenarioKind::Mixed
            }
            "stride" => {
                self.forbid(&kind_name, &["stride", "jitter_pct"])?;
                let stride = Self::require(self.stride, &kind_name, "stride")?;
                if stride == 0 {
                    return Err(
                        "scenario `stride` must be nonzero (use kind `constant`)".to_owned()
                    );
                }
                let jitter_pct = self.jitter_pct.unwrap_or(0);
                if jitter_pct > 100 {
                    return Err("scenario `jitter_pct` must be at most 100".to_owned());
                }
                ScenarioKind::Stride { stride, jitter_pct }
            }
            "periodic" => {
                self.forbid(&kind_name, &["period"])?;
                let period = Self::require(self.period, &kind_name, "period")?;
                if !(1..=MAX_CYCLE).contains(&period) {
                    return Err(format!("scenario `period` must be in 1..={MAX_CYCLE}"));
                }
                ScenarioKind::Periodic { period }
            }
            "markov" => {
                self.forbid(&kind_name, &["order", "alphabet"])?;
                let order = Self::require(self.order, &kind_name, "order")?;
                let alphabet = Self::require(self.alphabet, &kind_name, "alphabet")?;
                if !(1..=8).contains(&order) {
                    return Err("scenario `order` must be in 1..=8".to_owned());
                }
                if !(2..=64).contains(&alphabet) {
                    return Err(
                        "scenario `alphabet` must be in 2..=64 for kind `markov`".to_owned()
                    );
                }
                let alphabet = u32::try_from(alphabet).expect("<= 64");
                if u64::from(alphabet).pow(order) > u64::from(MAX_CYCLE) {
                    return Err(format!("scenario alphabet^order exceeds {MAX_CYCLE}"));
                }
                ScenarioKind::Markov { order, alphabet }
            }
            "chase" => {
                self.forbid(&kind_name, &["heap"])?;
                let heap = Self::require(self.heap, &kind_name, "heap")?;
                if !(2..=MAX_CYCLE).contains(&heap) {
                    return Err(format!("scenario `heap` must be in 2..={MAX_CYCLE}"));
                }
                ScenarioKind::Chase { heap }
            }
            "random" => {
                self.forbid(&kind_name, &["alphabet"])?;
                let alphabet = Self::require(self.alphabet, &kind_name, "alphabet")?;
                if alphabet < 2 {
                    return Err("scenario `alphabet` must be at least 2".to_owned());
                }
                ScenarioKind::Random { alphabet }
            }
            other => {
                return Err(format!(
                    "unknown scenario kind `{other}` (expected constant, stride, periodic, \
                     markov, chase, random, or mixed)"
                ))
            }
        };
        Ok(Scenario::new(kind, pcs, records_per_pc, seed))
    }
}

/// Parses one JSON number token into `T`, with the field name in errors.
fn number_field<T: std::str::FromStr>(parser: &mut json::Parser, name: &str) -> Result<T, String> {
    let text = parser.number_text().map_err(|err| format!("field `{name}`: {err}"))?;
    text.parse::<T>().map_err(|_| format!("field `{name}`: invalid number `{text}`"))
}

impl JobSpec {
    /// Parses a complete job-spec JSON document (strict: trailing input,
    /// unknown fields, and out-of-range parameters are all errors).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let mut parser = json::Parser::new(text);
        let spec = JobSpec::parse_value(&mut parser)?;
        parser.finish().map_err(|err| err.to_string())?;
        Ok(spec)
    }

    /// Parses one job-spec object at the parser's cursor (the form used
    /// inside a `submit` request's `"job"` field).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn parse_value(parser: &mut json::Parser) -> Result<JobSpec, String> {
        let fail = |err: json::Error| err.to_string();
        parser.begin_object().map_err(fail)?;
        let mut scenario: Option<Scenario> = None;
        let mut workload: Option<(Benchmark, u32)> = None;
        let mut bank: Option<Vec<String>> = None;
        let mut sample = false;
        let mut record_cap: Option<usize> = None;
        let mut first = true;
        while !parser.end_object(&mut first).map_err(fail)? {
            let key = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match key.as_str() {
                "scenario" => scenario = Some(Self::parse_scenario(parser)?),
                "workload" => workload = Some(Self::parse_workload(parser)?),
                "bank" => {
                    let mut names = Vec::new();
                    parser.begin_array().map_err(fail)?;
                    let mut first_el = true;
                    while !parser.end_array(&mut first_el).map_err(fail)? {
                        names.push(parser.string().map_err(fail)?);
                    }
                    bank = Some(names);
                }
                "sample" => sample = parser.boolean().map_err(fail)?,
                "record_cap" => {
                    if !parser.try_null().map_err(fail)? {
                        let cap: u64 = number_field(parser, "record_cap")?;
                        if cap == 0 {
                            return Err("field `record_cap` must be positive".to_owned());
                        }
                        record_cap =
                            Some(usize::try_from(cap).map_err(|_| "field `record_cap` too large")?);
                    }
                }
                other => return Err(format!("unknown job field `{other}`")),
            }
        }
        let source = match (scenario, workload) {
            (Some(s), None) => JobSource::Scenario(s),
            (None, Some((benchmark, scale_div))) => JobSource::Workload { benchmark, scale_div },
            _ => return Err("job must have exactly one of `scenario` or `workload`".to_owned()),
        };
        let bank = match bank {
            Some(names) if names.is_empty() => {
                return Err("field `bank` must name at least one predictor".to_owned())
            }
            Some(names) => names,
            None => PredictorConfig::paper_bank().iter().map(|c| c.name().to_owned()).collect(),
        };
        for name in &bank {
            if bank_config(name).is_none() {
                return Err(format!(
                    "unknown predictor `{name}` in bank (expected l, s2, or fcm1..fcm8)"
                ));
            }
        }
        Ok(JobSpec { source, bank, sample, record_cap })
    }

    fn parse_scenario(parser: &mut json::Parser) -> Result<Scenario, String> {
        let fail = |err: json::Error| err.to_string();
        parser.begin_object().map_err(fail)?;
        let mut fields = ScenarioFields::default();
        let mut first = true;
        while !parser.end_object(&mut first).map_err(fail)? {
            let key = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match key.as_str() {
                "kind" => fields.kind = Some(parser.string().map_err(fail)?),
                "pcs" => fields.pcs = Some(number_field(parser, "pcs")?),
                "records_per_pc" => {
                    fields.records_per_pc = Some(number_field(parser, "records_per_pc")?);
                }
                "seed" => fields.seed = Some(number_field(parser, "seed")?),
                "stride" => fields.stride = Some(number_field(parser, "stride")?),
                "jitter_pct" => fields.jitter_pct = Some(number_field(parser, "jitter_pct")?),
                "period" => fields.period = Some(number_field(parser, "period")?),
                "order" => fields.order = Some(number_field(parser, "order")?),
                "alphabet" => fields.alphabet = Some(number_field(parser, "alphabet")?),
                "heap" => fields.heap = Some(number_field(parser, "heap")?),
                other => return Err(format!("unknown scenario field `{other}`")),
            }
        }
        fields.build()
    }

    fn parse_workload(parser: &mut json::Parser) -> Result<(Benchmark, u32), String> {
        let fail = |err: json::Error| err.to_string();
        parser.begin_object().map_err(fail)?;
        let mut benchmark: Option<Benchmark> = None;
        let mut scale_div = 1u32;
        let mut first = true;
        while !parser.end_object(&mut first).map_err(fail)? {
            let key = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match key.as_str() {
                "benchmark" => {
                    let name = parser.string().map_err(fail)?;
                    let Some(&found) = Benchmark::ALL.iter().find(|b| b.name() == name) else {
                        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
                        return Err(format!(
                            "unknown benchmark `{name}` (expected one of: {})",
                            names.join(", ")
                        ));
                    };
                    benchmark = Some(found);
                }
                "scale_div" => {
                    scale_div = number_field(parser, "scale_div")?;
                    if scale_div == 0 {
                        return Err("field `scale_div` must be positive".to_owned());
                    }
                }
                other => return Err(format!("unknown workload field `{other}`")),
            }
        }
        let benchmark = benchmark.ok_or("workload requires field `benchmark`")?;
        Ok((benchmark, scale_div))
    }

    /// Renders the spec back to its canonical one-line JSON wire form
    /// (fields in a fixed order; `JobSpec::parse(spec.to_json())`
    /// round-trips).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        match &self.source {
            JobSource::Scenario(s) => {
                out.push_str("\"scenario\":{\"kind\":");
                json::write_string(s.name(), &mut out);
                out.push_str(&format!(
                    ",\"pcs\":{},\"records_per_pc\":{},\"seed\":{}",
                    s.pcs(),
                    s.records_per_pc(),
                    s.seed()
                ));
                match s.kind() {
                    ScenarioKind::Constant | ScenarioKind::Mixed => {}
                    ScenarioKind::Stride { stride, jitter_pct } => {
                        out.push_str(&format!(",\"stride\":{stride},\"jitter_pct\":{jitter_pct}"));
                    }
                    ScenarioKind::Periodic { period } => {
                        out.push_str(&format!(",\"period\":{period}"));
                    }
                    ScenarioKind::Markov { order, alphabet } => {
                        out.push_str(&format!(",\"order\":{order},\"alphabet\":{alphabet}"));
                    }
                    ScenarioKind::Chase { heap } => out.push_str(&format!(",\"heap\":{heap}")),
                    ScenarioKind::Random { alphabet } => {
                        out.push_str(&format!(",\"alphabet\":{alphabet}"));
                    }
                }
                out.push('}');
            }
            JobSource::Workload { benchmark, scale_div } => {
                out.push_str("\"workload\":{\"benchmark\":");
                json::write_string(benchmark.name(), &mut out);
                out.push_str(&format!(",\"scale_div\":{scale_div}}}"));
            }
        }
        out.push_str(",\"bank\":[");
        for (i, name) in self.bank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(name, &mut out);
        }
        out.push_str(&format!("],\"sample\":{}", self.sample));
        if let Some(cap) = self.record_cap {
            out.push_str(&format!(",\"record_cap\":{cap}"));
        }
        out.push('}');
        out
    }

    /// The job descriptor: the trace fingerprint (workload, input, opt
    /// level, seed, scale, record cap) extended with the bank and
    /// sampling mode — everything *in the spec* that can move a payload
    /// byte. This is the identity line embedded in the rendered payload
    /// itself; the result-cache key is [`JobSpec::canonical_key`], which
    /// additionally binds the engine epoch.
    #[must_use]
    pub fn descriptor(&self) -> String {
        let fp = match &self.source {
            JobSource::Scenario(s) => s.fingerprint(self.record_cap),
            JobSource::Workload { benchmark, scale_div } => {
                let scale = (benchmark.default_scale() / scale_div).max(1);
                let workload = dvp_workloads::Workload::reference(*benchmark).with_scale(scale);
                TraceCache::fingerprint(&workload, REFERENCE_OPT, self.record_cap)
            }
        };
        format!(
            "{}|{}|{}|seed{}|scale{}|cap{}|bank={}|sample={}",
            fp.workload,
            fp.input,
            fp.opt_level,
            fp.seed,
            fp.scale,
            fp.record_cap,
            self.bank.join("+"),
            u8::from(self.sample)
        )
    }

    /// The canonical result-cache (and routing) key: the process-wide
    /// engine epoch ([`dvp_engine::engine_epoch`]) prefixed to the
    /// [`descriptor`](JobSpec::descriptor). Binding the epoch into the
    /// key means a cache — in-memory *or* on-disk — populated by a
    /// binary with different predictor semantics can never satisfy a
    /// lookup from this one.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        self.canonical_key_at(dvp_engine::engine_epoch())
    }

    /// [`canonical_key`](JobSpec::canonical_key) at an explicit epoch —
    /// the hook tests use to simulate a restart on a different binary.
    #[must_use]
    pub fn canonical_key_at(&self, epoch: u64) -> String {
        format!("epoch{epoch:016x}|{}", self.descriptor())
    }
}

/// Resolves one predictor-configuration name: the paper bank's `"l"`,
/// `"s2"`, `"fcm1"`..`"fcm3"`, plus the extended `"fcm4"`..`"fcm8"`.
#[must_use]
pub fn bank_config(name: &str) -> Option<PredictorConfig> {
    if let Some(config) = PredictorConfig::paper_bank().into_iter().find(|c| c.name() == name) {
        return Some(config);
    }
    let order: usize = name.strip_prefix("fcm")?.parse().ok()?;
    if (1..=8).contains(&order) {
        PredictorConfig::fcm_orders([order]).pop()
    } else {
        None
    }
}

/// Runs one job to its rendered text payload — the single code path
/// behind the daemon, the one-shot `repro job` CLI, and the test goldens,
/// so all three are byte-identical by construction.
///
/// `trace_dir` adds the persistent trace-cache tier for workload and
/// scenario traces (results are cached separately, by the caller).
///
/// # Errors
///
/// A human-readable description of the failure (bad bank name, workload
/// build error).
pub fn run_job(
    spec: &JobSpec,
    engine: &ReplayEngine,
    trace_dir: Option<&Path>,
) -> Result<String, String> {
    let configs: Vec<PredictorConfig> = spec
        .bank
        .iter()
        .map(|name| bank_config(name).ok_or_else(|| format!("unknown predictor `{name}` in bank")))
        .collect::<Result<_, _>>()?;
    let mut store = match &spec.source {
        JobSource::Scenario(_) => TraceStore::new(),
        JobSource::Workload { scale_div, .. } => TraceStore::with_scale_div(*scale_div),
    };
    if let Some(cap) = spec.record_cap {
        store = store.with_record_cap(cap);
    }
    if let Some(dir) = trace_dir {
        store = store.with_trace_dir(dir);
    }
    let trace = match &spec.source {
        JobSource::Scenario(scenario) => {
            store.synthetic_traces(engine, &[*scenario]).pop().expect("one scenario in, one out")
        }
        JobSource::Workload { benchmark, .. } => {
            store.trace(*benchmark).map_err(|err| format!("workload generation failed: {err:?}"))?
        }
    };
    // The payload embeds the epoch-free descriptor: the rendered bytes
    // describe the job, while epoch-binding lives in the cache key.
    let mut payload = format!("job {}\n", spec.descriptor());
    if spec.sample {
        let plan = dvp_engine::phase_plan(&trace, &dvp_engine::PhaseOptions::default());
        let replays = engine.replay_sampled_warm(&trace, &configs, &plan);
        payload.push_str(&format!(
            "sampled {} of {} records across {} phases (functional warming)\n",
            plan.simulated_records(),
            trace.len(),
            plan.phases.len()
        ));
        let mut table = TextTable::new(vec!["Config", "Simulated", "Correct", "Weighted%"]);
        for replay in &replays {
            let correct: u64 = replay.phases.iter().map(|t| t.correct(None)).sum();
            table.row(vec![
                replay.name.clone(),
                replay.simulated().to_string(),
                correct.to_string(),
                format!("{:.2}", replay.weighted_accuracy(&plan, None) * 100.0),
            ]);
        }
        payload.push_str(&table.render());
    } else {
        let replays = engine.replay(&trace, &configs);
        payload.push_str(&format!("replayed {} records\n", trace.len()));
        let mut table = TextTable::new(vec!["Config", "Predicted", "Correct"]);
        for replay in &replays {
            table.row(vec![
                replay.name.clone(),
                replay.tracker.predicted(None).to_string(),
                replay.tracker.correct(None).to_string(),
            ]);
        }
        payload.push_str(&table.render());
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_owned(), |n| n.to_string())
}

fn hello_frame() -> String {
    format!("{{\"frame\":\"hello\",\"protocol\":{PROTOCOL_VERSION},\"server\":\"repro-serve\"}}")
}

fn accepted_frame(id: Option<u64>, key: &str) -> String {
    let mut out = format!("{{\"frame\":\"accepted\",\"id\":{},\"key\":", id_json(id));
    json::write_string(key, &mut out);
    out.push('}');
    out
}

fn rejected_frame(id: Option<u64>, reason: &str) -> String {
    let mut out = format!("{{\"frame\":\"rejected\",\"id\":{},\"reason\":", id_json(id));
    json::write_string(reason, &mut out);
    out.push('}');
    out
}

fn progress_frame(id: Option<u64>, state: &str) -> String {
    let mut out = format!("{{\"frame\":\"progress\",\"id\":{},\"state\":", id_json(id));
    json::write_string(state, &mut out);
    out.push('}');
    out
}

fn result_frame(id: Option<u64>, cache: &str, payload: &str) -> String {
    let mut out = format!("{{\"frame\":\"result\",\"id\":{},\"cache\":", id_json(id));
    json::write_string(cache, &mut out);
    out.push_str(",\"payload\":");
    json::write_string(payload, &mut out);
    out.push('}');
    out
}

fn error_frame(id: Option<u64>, message: &str) -> String {
    let mut out = format!("{{\"frame\":\"error\",\"id\":{},\"message\":", id_json(id));
    json::write_string(message, &mut out);
    out.push('}');
    out
}

/// Terminal frame the router emits for a job whose owning backend could
/// not be reached (or was lost mid-job): structured, per-job, never a
/// hang.
fn backend_down_frame(id: Option<u64>, backend: &str, reason: &str) -> String {
    let mut out = format!("{{\"frame\":\"backend_down\",\"id\":{},\"backend\":", id_json(id));
    json::write_string(backend, &mut out);
    out.push_str(",\"reason\":");
    json::write_string(reason, &mut out);
    out.push('}');
    out
}

/// One parsed server frame — the *lenient* counterpart of the server's
/// strict request parsing: unknown fields are skipped so old clients keep
/// working against newer servers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    /// Frame type: `hello`, `accepted`, `rejected`, `progress`, `result`,
    /// `error`, `backend_down`, `pong`, `stats`, `bye`.
    pub frame: String,
    /// Echo of the submit request's `id`, when the frame belongs to a job.
    pub id: Option<u64>,
    /// The job's canonical result-cache key (`accepted` frames).
    pub key: Option<String>,
    /// Why a job was refused (`rejected` frames).
    pub reason: Option<String>,
    /// Scheduling state (`progress` frames).
    pub state: Option<String>,
    /// `"hit"` or `"miss"` (`result` frames).
    pub cache: Option<String>,
    /// The rendered job payload (`result` frames).
    pub payload: Option<String>,
    /// What went wrong (`error` frames).
    pub message: Option<String>,
    /// The unreachable backend's address (`backend_down` frames).
    pub backend: Option<String>,
    /// The frame's raw JSON line, verbatim.
    pub raw: String,
}

impl Frame {
    /// Parses one frame line, skipping unknown fields.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON or a missing `frame` field.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let fail = |err: json::Error| err.to_string();
        let mut parser = json::Parser::new(line);
        let mut out = Frame { raw: line.to_owned(), ..Frame::default() };
        parser.begin_object().map_err(fail)?;
        let mut first = true;
        let mut saw_frame = false;
        while !parser.end_object(&mut first).map_err(fail)? {
            let field = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match field.as_str() {
                "frame" => {
                    out.frame = parser.string().map_err(fail)?;
                    saw_frame = true;
                }
                "id" => {
                    if !parser.try_null().map_err(fail)? {
                        out.id = Some(number_field(&mut parser, "id")?);
                    }
                }
                "key" => out.key = Some(parser.string().map_err(fail)?),
                "reason" => out.reason = Some(parser.string().map_err(fail)?),
                "state" => out.state = Some(parser.string().map_err(fail)?),
                "cache" => out.cache = Some(parser.string().map_err(fail)?),
                "payload" => out.payload = Some(parser.string().map_err(fail)?),
                "message" => out.message = Some(parser.string().map_err(fail)?),
                "backend" => out.backend = Some(parser.string().map_err(fail)?),
                _ => parser.skip_value().map_err(fail)?,
            }
        }
        parser.finish().map_err(fail)?;
        if !saw_frame {
            return Err("frame is missing `frame`".to_owned());
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Daemon configuration (all fields have conservative defaults).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address; port 0 binds an ephemeral port (read it back via
    /// [`Server::addr`]).
    pub listen: String,
    /// Maximum *pending* (admitted, not yet running) jobs; an over-limit
    /// submit is rejected.
    pub queue_capacity: usize,
    /// Maximum unfinished jobs per client connection.
    pub inflight_cap: usize,
    /// Worker threads executing jobs (each job fans out on the engine).
    pub job_workers: usize,
    /// In-memory result-cache entries (LRU).
    pub memory_entries: usize,
    /// On-disk result-cache directory (none = memory-only results).
    pub result_dir: Option<PathBuf>,
    /// Trace-cache directory handed to every job's [`TraceStore`].
    pub trace_dir: Option<PathBuf>,
    /// Engine epoch bound into every cache key and on-disk entry.
    /// Defaults to the process-wide [`dvp_engine::engine_epoch`];
    /// overridable so tests can simulate a restart on a different binary
    /// without touching the environment.
    pub epoch: u64,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            listen: "127.0.0.1:0".to_owned(),
            queue_capacity: 64,
            inflight_cap: 8,
            job_workers: 2,
            memory_entries: 64,
            result_dir: None,
            trace_dir: None,
            epoch: dvp_engine::engine_epoch(),
        }
    }
}

/// State shared by the accept thread, connection threads, and job workers.
struct ServerShared {
    engine: ReplayEngine,
    queue: JobQueue,
    cache: Mutex<ResultCache>,
    inflight_cap: usize,
    trace_dir: Option<PathBuf>,
    epoch: u64,
    shutdown: AtomicBool,
    completed: AtomicU64,
    addr: SocketAddr,
}

impl ServerShared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn stats_frame(&self) -> String {
        let stats = self.cache.lock().expect("cache mutex never poisoned").stats();
        format!(
            "{{\"frame\":\"stats\",\"result_hits\":{},\"misses\":{},\"disk_hits\":{},\
             \"written\":{},\"evicted\":{},\"invalid\":{},\"completed\":{},\"queued\":{},\
             \"running\":{}}}",
            stats.hits,
            stats.misses,
            stats.disk_hits,
            stats.written,
            stats.evictions,
            stats.invalid,
            self.completed.load(Ordering::SeqCst),
            self.queue.queued(),
            self.queue.running()
        )
    }
}

/// The `repro serve` daemon (see the [module docs](self) for the
/// protocol and job lifecycle).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `options.listen` and starts accepting connections; jobs run
    /// on `engine`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (busy port, bad address).
    pub fn start(engine: ReplayEngine, options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.listen)?;
        let addr = listener.local_addr()?;
        let mut cache = ResultCache::new(options.memory_entries).with_epoch(options.epoch);
        if let Some(dir) = &options.result_dir {
            cache = cache.with_dir(dir);
        }
        let shared = Arc::new(ServerShared {
            queue: JobQueue::new(options.job_workers, options.queue_capacity),
            engine,
            cache: Mutex::new(cache),
            inflight_cap: options.inflight_cap,
            trace_dir: options.trace_dir.clone(),
            epoch: options.epoch,
            shutdown: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            addr,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                thread::spawn(move || handle_connection(&conn_shared, stream));
            }
        });
        Ok(Server { addr, shared, accept: Some(accept) })
    }

    /// The bound address (read this back after listening on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Result-cache counters so far.
    #[must_use]
    pub fn result_stats(&self) -> ResultCacheStats {
        self.shared.cache.lock().expect("cache mutex never poisoned").stats()
    }

    /// Jobs that reached a terminal frame (result, cached result, error).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::SeqCst)
    }

    /// Blocks until no job is pending or running (or `timeout` elapses);
    /// reports whether the queue went idle.
    #[must_use]
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.shared.queue.wait_idle(timeout)
    }

    /// Begins shutdown: no new connections are accepted. Already-admitted
    /// jobs still run to completion.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until a client requests shutdown (or one was already
    /// requested), drains in-flight jobs, and returns the final
    /// result-cache counters.
    pub fn join(mut self) -> ResultCacheStats {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let _ = self.shared.queue.wait_idle(Duration::from_secs(60));
        self.result_stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.shared.request_shutdown();
            let _ = handle.join();
        }
    }
}

/// Writes one frame line; write errors mean the client is gone and are
/// deliberately ignored (a disconnected client must never wedge a job).
fn write_frame(writer: &Mutex<TcpStream>, line: &str) {
    let mut stream = writer.lock().expect("writer mutex never poisoned");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// One client request, parsed strictly (see [`parse_request`]).
#[derive(Debug)]
enum Request {
    Submit { id: Option<u64>, spec: Box<JobSpec> },
    Batch { jobs: Vec<(u64, JobSpec)> },
    Ping,
    Stats,
    Shutdown,
}

/// Parses one element of a `jobs` batch array: exactly `{"id": n, "job":
/// {...}}`, both fields required (the id is how the client tells the
/// interleaved response frames apart, so an element without one is
/// useless and rejected up front).
fn parse_batch_element(parser: &mut json::Parser) -> Result<(u64, JobSpec), String> {
    let fail = |err: json::Error| err.to_string();
    parser.begin_object().map_err(fail)?;
    let mut id: Option<u64> = None;
    let mut spec: Option<JobSpec> = None;
    let mut first = true;
    while !parser.end_object(&mut first).map_err(fail)? {
        let key = parser.string().map_err(fail)?;
        parser.colon().map_err(fail)?;
        match key.as_str() {
            "id" => id = Some(number_field(parser, "id")?),
            "job" => spec = Some(JobSpec::parse_value(parser)?),
            other => return Err(format!("unknown batch-element field `{other}`")),
        }
    }
    let id = id.ok_or("every batch element requires an `id`")?;
    let spec = spec.ok_or("every batch element requires a `job` object")?;
    Ok((id, spec))
}

/// Parses one request line. Strict like the job spec itself: an unknown
/// request field or op is an error answered with an `error` frame.
fn parse_request(line: &str) -> Result<Request, String> {
    let fail = |err: json::Error| err.to_string();
    let mut parser = json::Parser::new(line);
    parser.begin_object().map_err(fail)?;
    let mut op: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut spec: Option<JobSpec> = None;
    let mut batch: Option<Vec<(u64, JobSpec)>> = None;
    let mut first = true;
    while !parser.end_object(&mut first).map_err(fail)? {
        let key = parser.string().map_err(fail)?;
        parser.colon().map_err(fail)?;
        match key.as_str() {
            "op" => op = Some(parser.string().map_err(fail)?),
            "id" => {
                if !parser.try_null().map_err(fail)? {
                    id = Some(number_field(&mut parser, "id")?);
                }
            }
            "job" => spec = Some(JobSpec::parse_value(&mut parser)?),
            "jobs" => {
                let mut list: Vec<(u64, JobSpec)> = Vec::new();
                parser.begin_array().map_err(fail)?;
                let mut first_el = true;
                while !parser.end_array(&mut first_el).map_err(fail)? {
                    let (el_id, el_spec) = parse_batch_element(&mut parser)?;
                    if list.iter().any(|(existing, _)| *existing == el_id) {
                        return Err(format!("duplicate batch id {el_id}"));
                    }
                    list.push((el_id, el_spec));
                }
                batch = Some(list);
            }
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    parser.finish().map_err(fail)?;
    match op.as_deref() {
        Some("submit") => {
            if batch.is_some() {
                return Err("op `submit` takes a `job` object, not `jobs`".to_owned());
            }
            let spec = spec.ok_or("submit requires a `job` object")?;
            Ok(Request::Submit { id, spec: Box::new(spec) })
        }
        Some("jobs") => {
            if spec.is_some() {
                return Err("op `jobs` takes a `jobs` array, not `job`".to_owned());
            }
            let jobs = batch.ok_or("op `jobs` requires a `jobs` array")?;
            if jobs.is_empty() {
                return Err("`jobs` must contain at least one element".to_owned());
            }
            Ok(Request::Batch { jobs })
        }
        Some("ping") => Ok(Request::Ping),
        Some("stats") => Ok(Request::Stats),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(other) => {
            Err(format!("unknown op `{other}` (expected submit, jobs, ping, stats, or shutdown)"))
        }
        None => Err("request is missing `op`".to_owned()),
    }
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = Arc::new(Mutex::new(write_half));
    write_frame(&writer, &hello_frame());
    let inflight = Arc::new(AtomicUsize::new(0));
    let reader = io::BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(why) => write_frame(&writer, &error_frame(None, &why)),
            Ok(Request::Ping) => write_frame(&writer, "{\"frame\":\"pong\"}"),
            Ok(Request::Stats) => write_frame(&writer, &shared.stats_frame()),
            Ok(Request::Shutdown) => {
                write_frame(&writer, "{\"frame\":\"bye\"}");
                shared.request_shutdown();
                break;
            }
            Ok(Request::Submit { id, spec }) => submit_job(shared, &writer, &inflight, id, *spec),
            Ok(Request::Batch { jobs }) => {
                // One interleaved response stream: admit every element in
                // order, then frames arrive tagged by the client's ids in
                // completion order.
                for (id, spec) in jobs {
                    submit_job(shared, &writer, &inflight, Some(id), spec);
                }
            }
        }
    }
}

fn submit_job(
    shared: &Arc<ServerShared>,
    writer: &Arc<Mutex<TcpStream>>,
    inflight: &Arc<AtomicUsize>,
    id: Option<u64>,
    spec: JobSpec,
) {
    if inflight.load(Ordering::SeqCst) >= shared.inflight_cap {
        let reason = format!("in-flight limit ({}) reached", shared.inflight_cap);
        write_frame(writer, &rejected_frame(id, &reason));
        return;
    }
    let key = spec.canonical_key_at(shared.epoch);
    let cached = shared.cache.lock().expect("cache mutex never poisoned").get(&key);
    if let Some(payload) = cached {
        // Count completion *before* the terminal frame: a client must
        // never observe its result while `completed()` still lags.
        shared.completed.fetch_add(1, Ordering::SeqCst);
        write_frame(writer, &accepted_frame(id, &key));
        write_frame(writer, &result_frame(id, "hit", &payload));
        return;
    }
    inflight.fetch_add(1, Ordering::SeqCst);
    let job_shared = Arc::clone(shared);
    let job_writer = Arc::clone(writer);
    let job_inflight = Arc::clone(inflight);
    let job_key = key.clone();
    let job = move || {
        write_frame(&job_writer, &progress_frame(id, "replaying"));
        let outcome = run_job(&spec, &job_shared.engine, job_shared.trace_dir.as_deref());
        if let Ok(payload) = &outcome {
            job_shared.cache.lock().expect("cache mutex never poisoned").insert(&job_key, payload);
        }
        // Count completion *before* the terminal frame (see the hit path).
        job_shared.completed.fetch_add(1, Ordering::SeqCst);
        match outcome {
            Ok(payload) => write_frame(&job_writer, &result_frame(id, "miss", &payload)),
            Err(why) => write_frame(&job_writer, &error_frame(id, &why)),
        }
        job_inflight.fetch_sub(1, Ordering::SeqCst);
    };
    // Hold the writer lock across admission so the worker's `progress`
    // frame can never precede this job's `accepted` frame.
    let guard = writer.lock().expect("writer mutex never poisoned");
    let admitted = shared.queue.try_submit(job);
    let line = match admitted {
        Ok(_ticket) => accepted_frame(id, &key),
        Err(err) => {
            inflight.fetch_sub(1, Ordering::SeqCst);
            rejected_frame(id, &err.to_string())
        }
    };
    let mut stream = guard;
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Terminal outcome of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The job finished; `cache` is `"hit"` or `"miss"`.
    Result {
        /// Whether the payload came from the result cache.
        cache: String,
        /// The rendered job payload.
        payload: String,
    },
    /// Admission control refused the job.
    Rejected {
        /// The structured reason (queue full, in-flight limit).
        reason: String,
    },
    /// The job (or the request itself) failed.
    Error {
        /// What went wrong.
        message: String,
    },
    /// The router could not reach the backend owning this job's key
    /// (bounded reconnect attempts exhausted, or the connection was lost
    /// mid-job).
    BackendDown {
        /// The unreachable backend's address.
        backend: String,
        /// Why it is considered down.
        reason: String,
    },
}

/// A blocking line-protocol client: one connection, sequential requests.
/// Used by `repro client`, the integration suite, and CI.
#[derive(Debug)]
pub struct ServeClient {
    reader: io::BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connects, applies a generous read timeout (jobs are computed
    /// while the client blocks on the result frame), and consumes the
    /// server's `hello`.
    ///
    /// # Errors
    ///
    /// Propagates connect/handshake failures (connection refused, a
    /// non-`hello` first frame).
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client = ServeClient { reader: io::BufReader::new(stream), writer, next_id: 1 };
        let hello = client.read_frame()?;
        if hello.frame != "hello" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a hello frame, got `{}`", hello.raw),
            ));
        }
        Ok(client)
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_frame(&mut self) -> io::Result<Frame> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Frame::parse(line.trim_end_matches(['\n', '\r']))
                .map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why));
        }
    }

    /// Submits one job spec (JSON text) and drives the stream to its
    /// terminal frame, handing every frame to `on_frame` on the way.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; protocol-level refusals come back
    /// as [`Outcome::Rejected`] / [`Outcome::Error`].
    pub fn submit_streaming(
        &mut self,
        job_json: &str,
        mut on_frame: impl FnMut(&Frame),
    ) -> io::Result<Outcome> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(&format!("{{\"op\":\"submit\",\"id\":{id},\"job\":{job_json}}}"))?;
        loop {
            let frame = self.read_frame()?;
            on_frame(&frame);
            match frame.frame.as_str() {
                "result" => {
                    return Ok(Outcome::Result {
                        cache: frame.cache.unwrap_or_default(),
                        payload: frame.payload.unwrap_or_default(),
                    })
                }
                "rejected" => {
                    return Ok(Outcome::Rejected { reason: frame.reason.unwrap_or_default() })
                }
                "error" => {
                    return Ok(Outcome::Error { message: frame.message.unwrap_or_default() })
                }
                "backend_down" => {
                    return Ok(Outcome::BackendDown {
                        backend: frame.backend.unwrap_or_default(),
                        reason: frame.reason.unwrap_or_default(),
                    })
                }
                _ => {}
            }
        }
    }

    /// [`ServeClient::submit_streaming`] without a frame callback.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn submit(&mut self, job_json: &str) -> io::Result<Outcome> {
        self.submit_streaming(job_json, |_| {})
    }

    /// Submits many job specs as **one** `jobs` request and drives the
    /// single interleaved response stream until every job reached its
    /// terminal frame, handing every frame to `on_frame` on the way.
    ///
    /// Returns one [`Outcome`] per input job, in input order (frames may
    /// arrive in any completion order; ids map them back). A
    /// request-level `error` frame (null id) fails every job that has no
    /// terminal frame yet.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; per-job refusals come back as
    /// [`Outcome::Rejected`] / [`Outcome::Error`] /
    /// [`Outcome::BackendDown`] in the returned vector.
    pub fn submit_batch_streaming(
        &mut self,
        jobs: &[String],
        mut on_frame: impl FnMut(&Frame),
    ) -> io::Result<Vec<Outcome>> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let first_id = self.next_id;
        self.next_id += jobs.len() as u64;
        let mut line = String::from("{\"op\":\"jobs\",\"jobs\":[");
        for (offset, job_json) in jobs.iter().enumerate() {
            if offset > 0 {
                line.push(',');
            }
            line.push_str(&format!("{{\"id\":{},\"job\":{job_json}}}", first_id + offset as u64));
        }
        line.push_str("]}");
        self.send_line(&line)?;
        let mut outcomes: Vec<Option<Outcome>> = vec![None; jobs.len()];
        let mut open = jobs.len();
        while open > 0 {
            let frame = self.read_frame()?;
            on_frame(&frame);
            let outcome = match frame.frame.as_str() {
                "result" => Outcome::Result {
                    cache: frame.cache.unwrap_or_default(),
                    payload: frame.payload.unwrap_or_default(),
                },
                "rejected" => Outcome::Rejected { reason: frame.reason.unwrap_or_default() },
                "error" => Outcome::Error { message: frame.message.unwrap_or_default() },
                "backend_down" => Outcome::BackendDown {
                    backend: frame.backend.unwrap_or_default(),
                    reason: frame.reason.unwrap_or_default(),
                },
                _ => continue,
            };
            let slot = frame
                .id
                .and_then(|id| id.checked_sub(first_id))
                .and_then(|offset| usize::try_from(offset).ok())
                .filter(|offset| *offset < jobs.len());
            match slot {
                Some(index) => {
                    if outcomes[index].is_none() {
                        outcomes[index] = Some(outcome);
                        open -= 1;
                    }
                }
                None => {
                    // A request-level failure (null or unknown id): the
                    // server will send nothing further for this batch, so
                    // it answers every still-open job.
                    for entry in outcomes.iter_mut().filter(|entry| entry.is_none()) {
                        *entry = Some(outcome.clone());
                    }
                    open = 0;
                }
            }
        }
        Ok(outcomes.into_iter().map(|outcome| outcome.expect("every slot filled")).collect())
    }

    /// [`ServeClient::submit_batch_streaming`] without a frame callback.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn submit_batch(&mut self, jobs: &[String]) -> io::Result<Vec<Outcome>> {
        self.submit_batch_streaming(jobs, |_| {})
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures or a non-`pong` response.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send_line("{\"op\":\"ping\"}")?;
        let frame = self.read_frame()?;
        if frame.frame == "pong" {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected pong: {}", frame.raw)))
        }
    }

    /// Fetches the server's `stats` frame (raw JSON line).
    ///
    /// # Errors
    ///
    /// Propagates transport failures or a non-`stats` response.
    pub fn stats(&mut self) -> io::Result<String> {
        self.send_line("{\"op\":\"stats\"}")?;
        let frame = self.read_frame()?;
        if frame.frame == "stats" {
            Ok(frame.raw)
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats: {}", frame.raw),
            ))
        }
    }

    /// Asks the server to shut down and waits for the `bye` ack.
    ///
    /// # Errors
    ///
    /// Propagates transport failures or a non-`bye` response.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send_line("{\"op\":\"shutdown\"}")?;
        let frame = self.read_frame()?;
        if frame.frame == "bye" {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected bye: {}", frame.raw)))
        }
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Router configuration (see [`Router`]).
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Listen address; port 0 binds an ephemeral port (read it back via
    /// [`Router::addr`]).
    pub listen: String,
    /// Backend worker addresses. Must be nonempty; ownership of the key
    /// space is split across them by [`route_backend`].
    pub backends: Vec<String>,
    /// Bounded TCP connect attempts per backend before its jobs are
    /// answered with `backend_down` frames.
    pub connect_attempts: u32,
}

impl Default for RouterOptions {
    fn default() -> RouterOptions {
        RouterOptions {
            listen: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            connect_attempts: 2,
        }
    }
}

/// Router counters (returned by [`Router::stats`] / [`Router::join`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Jobs whose terminal frame was relayed from a backend.
    pub forwarded: u64,
    /// Jobs answered with a `backend_down` frame instead.
    pub backend_down: u64,
}

struct RouterShared {
    backends: Vec<String>,
    connect_attempts: u32,
    forwarded: AtomicU64,
    down: AtomicU64,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl RouterShared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn stats_frame(&self) -> String {
        format!(
            "{{\"frame\":\"stats\",\"router\":true,\"backends\":{},\"forwarded\":{},\
             \"backend_down\":{}}}",
            self.backends.len(),
            self.forwarded.load(Ordering::SeqCst),
            self.down.load(Ordering::SeqCst)
        )
    }

    fn stats(&self) -> RouterStats {
        RouterStats {
            forwarded: self.forwarded.load(Ordering::SeqCst),
            backend_down: self.down.load(Ordering::SeqCst),
        }
    }
}

/// Picks the backend owning `key` by rendezvous (highest-random-weight)
/// hashing: every backend scores an independent hash of
/// `(backend, key)` and the highest score wins.
///
/// Properties the router relies on:
///
/// - **Deterministic and coordination-free** — every router (and every
///   test) agrees on the owner from the backend list alone.
/// - **Order-independent** — permuting the backend list never moves a
///   key (scores don't depend on list position; ties break on the
///   backend *name*).
/// - **Minimal movement** — removing one backend only re-homes the keys
///   it owned; all other keys keep their owner.
#[must_use]
pub fn route_backend<'a>(backends: &'a [String], key: &str) -> &'a str {
    assert!(!backends.is_empty(), "route_backend requires at least one backend");
    let mut best: Option<(&str, u64)> = None;
    for backend in backends {
        let mut scored = Vec::with_capacity(backend.len() + 1 + key.len());
        scored.extend_from_slice(backend.as_bytes());
        scored.push(0); // separator: ("ab", "c") never collides with ("a", "bc")
        scored.extend_from_slice(key.as_bytes());
        let score = crate::result_cache::fnv1a64(&scored);
        let wins = match best {
            None => true,
            // Deterministic tie-break on the name keeps the choice
            // independent of list order even on (astronomically unlikely)
            // equal scores.
            Some((b, s)) => score > s || (score == s && backend.as_str() < b),
        };
        if wins {
            best = Some((backend, score));
        }
    }
    best.expect("nonempty backend list").0
}

/// One pooled connection from a router connection-thread to a backend.
struct BackendLink {
    reader: io::BufReader<TcpStream>,
    writer: TcpStream,
}

impl BackendLink {
    /// Connects with bounded attempts (short backoff between them) and
    /// consumes the worker's `hello` frame.
    fn connect(addr: &str, attempts: u32) -> Result<BackendLink, String> {
        let attempts = attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                thread::sleep(Duration::from_millis(50 * u64::from(attempt)));
            }
            let stream = match TcpStream::connect(addr) {
                Ok(stream) => stream,
                Err(err) => {
                    last = err.to_string();
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
            let Ok(writer) = stream.try_clone() else {
                last = "could not clone the backend stream".to_owned();
                continue;
            };
            let mut link = BackendLink { reader: io::BufReader::new(stream), writer };
            match link.read_frame() {
                Ok((frame, raw)) if frame.frame == "hello" => {
                    let _ = raw;
                    return Ok(link);
                }
                Ok((_, raw)) => last = format!("expected a hello frame, got `{raw}`"),
                Err(err) => last = err.to_string(),
            }
        }
        Err(format!("unreachable after {attempts} attempts: {last}"))
    }

    fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads one frame, returning it parsed *and* raw — the raw line is
    /// what gets relayed to the client, verbatim, so routed payloads are
    /// byte-identical to worker-direct ones by construction.
    fn read_frame(&mut self) -> io::Result<(Frame, String)> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "backend closed the connection",
                ));
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            let frame = Frame::parse(trimmed)
                .map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why))?;
            return Ok((frame, trimmed.to_owned()));
        }
    }
}

/// The scale-out front door: accepts the same line protocol as
/// [`Server`] and forwards every job to the backend worker owning its
/// canonical key (see the [module docs](self)). `ping` / `stats` /
/// `shutdown` are answered locally; `shutdown` stops the router only,
/// never its workers.
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router").field("addr", &self.addr).finish()
    }
}

impl Router {
    /// Binds `options.listen` and starts accepting connections.
    ///
    /// Backends are *not* dialed here: a worker that is down at start
    /// (or restarts later) costs nothing until a job routes to it, and
    /// then fails fast with a structured `backend_down` frame.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when `options.backends` is empty;
    /// otherwise bind failures (busy port, bad address).
    pub fn start(options: RouterOptions) -> io::Result<Router> {
        if options.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router requires at least one backend",
            ));
        }
        let listener = TcpListener::bind(&options.listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            backends: options.backends.clone(),
            connect_attempts: options.connect_attempts.max(1),
            forwarded: AtomicU64::new(0),
            down: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            addr,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                thread::spawn(move || handle_router_connection(&conn_shared, stream));
            }
        });
        Ok(Router { addr, shared, accept: Some(accept) })
    }

    /// The bound address (read this back after listening on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Forwarding counters so far.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.shared.stats()
    }

    /// Begins shutdown: no new connections are accepted. Workers are
    /// untouched.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until a client requests shutdown (or one was already
    /// requested) and returns the final forwarding counters.
    pub fn join(mut self) -> RouterStats {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        self.shared.stats()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.shared.request_shutdown();
            let _ = handle.join();
        }
    }
}

fn router_hello_frame() -> String {
    format!("{{\"frame\":\"hello\",\"protocol\":{PROTOCOL_VERSION},\"server\":\"repro-router\"}}")
}

/// Writes one frame line to the router's client; write errors mean the
/// client is gone and are deliberately ignored.
fn send_client_line(client: &mut TcpStream, line: &str) {
    let _ = client.write_all(line.as_bytes());
    let _ = client.write_all(b"\n");
    let _ = client.flush();
}

fn handle_router_connection(shared: &Arc<RouterShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(mut client) = stream.try_clone() else { return };
    send_client_line(&mut client, &router_hello_frame());
    // Requests on one router connection are forwarded sequentially by
    // this thread, so backend links can be pooled per-connection without
    // any id-collision risk across clients.
    let mut links: Vec<Option<BackendLink>> = Vec::new();
    links.resize_with(shared.backends.len(), || None);
    let reader = io::BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(why) => send_client_line(&mut client, &error_frame(None, &why)),
            Ok(Request::Ping) => send_client_line(&mut client, "{\"frame\":\"pong\"}"),
            Ok(Request::Stats) => send_client_line(&mut client, &shared.stats_frame()),
            Ok(Request::Shutdown) => {
                send_client_line(&mut client, "{\"frame\":\"bye\"}");
                shared.request_shutdown();
                break;
            }
            Ok(Request::Submit { id, spec }) => {
                route_and_forward(shared, &mut client, &mut links, vec![(id, *spec)]);
            }
            Ok(Request::Batch { jobs }) => {
                let jobs = jobs.into_iter().map(|(id, spec)| (Some(id), spec)).collect();
                route_and_forward(shared, &mut client, &mut links, jobs);
            }
        }
    }
}

/// Splits `jobs` into per-backend groups by canonical-key ownership
/// (preserving submission order within each group) and forwards each
/// group over that backend's pooled link.
fn route_and_forward(
    shared: &RouterShared,
    client: &mut TcpStream,
    links: &mut [Option<BackendLink>],
    jobs: Vec<(Option<u64>, JobSpec)>,
) {
    let mut groups: Vec<Vec<(Option<u64>, JobSpec)>> = Vec::new();
    groups.resize_with(shared.backends.len(), Vec::new);
    for (id, spec) in jobs {
        let key = spec.canonical_key();
        let owner = route_backend(&shared.backends, &key);
        let index = shared
            .backends
            .iter()
            .position(|backend| backend == owner)
            .expect("owner comes from the backend list");
        groups[index].push((id, spec));
    }
    for (index, group) in groups.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        forward_group(shared, client, &mut links[index], &shared.backends[index], &group);
    }
}

/// Forwards one per-backend job group and relays the backend's frames to
/// the client, verbatim, until every job in the group reached a terminal
/// frame. A pooled link that turns out to be dead is replaced and the
/// group resent **only if no frame was received yet** (resending after a
/// frame could double-execute a job); past that point, still-open jobs
/// are answered with `backend_down` frames.
fn forward_group(
    shared: &RouterShared,
    client: &mut TcpStream,
    slot: &mut Option<BackendLink>,
    backend: &str,
    group: &[(Option<u64>, JobSpec)],
) {
    let request = if group.len() == 1 {
        let (id, spec) = &group[0];
        format!("{{\"op\":\"submit\",\"id\":{},\"job\":{}}}", id_json(*id), spec.to_json())
    } else {
        let mut line = String::from("{\"op\":\"jobs\",\"jobs\":[");
        for (offset, (id, spec)) in group.iter().enumerate() {
            if offset > 0 {
                line.push(',');
            }
            line.push_str(&format!("{{\"id\":{},\"job\":{}}}", id_json(*id), spec.to_json()));
        }
        line.push_str("]}");
        line
    };
    let ids: Vec<Option<u64>> = group.iter().map(|(id, _)| *id).collect();
    // One fresh-link resend: a pooled connection may have died since its
    // last use, and that must not cost the client its jobs.
    let mut resends_left = 1u32;
    loop {
        let mut link = match slot.take() {
            Some(link) => link,
            None => match BackendLink::connect(backend, shared.connect_attempts) {
                Ok(link) => link,
                Err(why) => {
                    shared.down.fetch_add(ids.len() as u64, Ordering::SeqCst);
                    for id in &ids {
                        send_client_line(client, &backend_down_frame(*id, backend, &why));
                    }
                    return;
                }
            },
        };
        let mut pending = ids.clone();
        let mut received_any = false;
        if link.send(&request).is_ok() {
            while !pending.is_empty() {
                let Ok((frame, raw)) = link.read_frame() else { break };
                received_any = true;
                if matches!(frame.frame.as_str(), "result" | "rejected" | "error" | "backend_down")
                {
                    match frame.id {
                        Some(done) => pending.retain(|id| *id != Some(done)),
                        // A request-level failure answers the whole group:
                        // the backend sends nothing further for it.
                        None => pending.clear(),
                    }
                }
                send_client_line(client, &raw);
            }
        }
        if pending.is_empty() {
            shared.forwarded.fetch_add(ids.len() as u64, Ordering::SeqCst);
            *slot = Some(link); // the link proved healthy: pool it
            return;
        }
        if !received_any && resends_left > 0 {
            resends_left -= 1;
            continue;
        }
        let answered = (ids.len() - pending.len()) as u64;
        shared.forwarded.fetch_add(answered, Ordering::SeqCst);
        shared.down.fetch_add(pending.len() as u64, Ordering::SeqCst);
        for id in &pending {
            send_client_line(client, &backend_down_frame(*id, backend, "connection lost mid-job"));
        }
        return;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> &'static str {
        r#"{"scenario":{"kind":"stride","pcs":2,"records_per_pc":32,"seed":3,"stride":5},"bank":["l","s2"]}"#
    }

    #[test]
    fn job_spec_round_trips_through_to_json() {
        let spec = JobSpec::parse(tiny_spec()).expect("valid spec");
        assert_eq!(JobSpec::parse(&spec.to_json()).expect("canonical form reparses"), spec);
        assert!(matches!(spec.source, JobSource::Scenario(_)));
        assert_eq!(spec.bank, vec!["l", "s2"]);
        assert!(!spec.sample);
    }

    #[test]
    fn job_spec_defaults_bank_to_the_paper_bank() {
        let spec = JobSpec::parse(r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8}}"#)
            .expect("valid spec");
        assert_eq!(spec.bank, vec!["l", "s2", "fcm1", "fcm2", "fcm3"]);
    }

    #[test]
    fn job_spec_rejects_unknown_and_misapplied_fields() {
        let unknown = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8},"bogus":1}"#,
        )
        .unwrap_err();
        assert!(unknown.contains("unknown job field `bogus`"), "{unknown}");

        let scenario_field = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8,"warp":9}}"#,
        )
        .unwrap_err();
        assert!(scenario_field.contains("unknown scenario field `warp`"), "{scenario_field}");

        let misapplied = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8,"period":4}}"#,
        )
        .unwrap_err();
        assert!(misapplied.contains("`period` does not apply"), "{misapplied}");

        let both = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8},"workload":{"benchmark":"m88k"}}"#,
        )
        .unwrap_err();
        assert!(both.contains("exactly one of"), "{both}");

        let trailing = JobSpec::parse(&format!("{} junk", tiny_spec())).unwrap_err();
        assert!(trailing.contains("trailing"), "{trailing}");
    }

    #[test]
    fn job_spec_rejects_out_of_range_parameters_instead_of_panicking() {
        for (spec, needle) in [
            (r#"{"scenario":{"kind":"stride","pcs":1,"records_per_pc":8,"stride":0}}"#, "nonzero"),
            (
                r#"{"scenario":{"kind":"markov","pcs":1,"records_per_pc":8,"order":9,"alphabet":4}}"#,
                "order",
            ),
            (
                r#"{"scenario":{"kind":"markov","pcs":1,"records_per_pc":8,"order":8,"alphabet":64}}"#,
                "alphabet^order",
            ),
            (r#"{"scenario":{"kind":"chase","pcs":1,"records_per_pc":8,"heap":1}}"#, "heap"),
            (r#"{"scenario":{"kind":"periodic","pcs":0,"records_per_pc":8,"period":4}}"#, "pcs"),
            (r#"{"workload":{"benchmark":"m88k","scale_div":0}}"#, "scale_div"),
            (r#"{"workload":{"benchmark":"nope"}}"#, "unknown benchmark"),
            (
                r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8},"bank":["zz"]}"#,
                "unknown predictor",
            ),
        ] {
            let err = JobSpec::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec}: {err}");
        }
    }

    #[test]
    fn bank_config_resolves_paper_and_extended_orders() {
        for name in ["l", "s2", "fcm1", "fcm3", "fcm8"] {
            let config = bank_config(name).expect(name);
            assert_eq!(config.name(), name);
        }
        assert!(bank_config("fcm0").is_none());
        assert!(bank_config("fcm9").is_none());
        assert!(bank_config("hybrid?").is_none());
    }

    #[test]
    fn canonical_keys_separate_every_byte_moving_option() {
        let base = JobSpec::parse(tiny_spec()).unwrap();
        let mut other_bank = base.clone();
        other_bank.bank = vec!["l".to_owned()];
        let mut sampled = base.clone();
        sampled.sample = true;
        let mut capped = base.clone();
        capped.record_cap = Some(16);
        let keys = [&base, &other_bank, &sampled, &capped].map(|s| s.canonical_key());
        for (i, key) in keys.iter().enumerate() {
            for later in &keys[i + 1..] {
                assert_ne!(key, later);
            }
        }
    }

    #[test]
    fn run_job_is_deterministic_across_engines() {
        let spec = JobSpec::parse(tiny_spec()).unwrap();
        let a = run_job(&spec, &ReplayEngine::sequential(), None).expect("runs");
        let b = run_job(&spec, &ReplayEngine::new().with_workers(2).with_shards(3), None)
            .expect("runs");
        assert_eq!(a, b, "payload must be byte-identical at any engine setting");
        assert!(a.starts_with("job syn-stride|"), "{a}");
        assert!(a.contains("replayed 64 records\n"), "{a}");
    }

    #[test]
    fn frames_parse_leniently() {
        let frame = Frame::parse(&result_frame(Some(7), "miss", "line1\nline2")).expect("parses");
        assert_eq!(frame.frame, "result");
        assert_eq!(frame.id, Some(7));
        assert_eq!(frame.cache.as_deref(), Some("miss"));
        assert_eq!(frame.payload.as_deref(), Some("line1\nline2"));

        // Unknown fields are skipped, null ids read as None.
        let future =
            Frame::parse(r#"{"frame":"accepted","id":null,"key":"k","novel":[1,{"a":2}]}"#)
                .expect("parses");
        assert_eq!(future.id, None);
        assert_eq!(future.key.as_deref(), Some("k"));

        assert!(Frame::parse("{\"id\":1}").unwrap_err().contains("missing `frame`"));
        assert!(Frame::parse("nonsense").is_err());
    }

    #[test]
    fn requests_parse_strictly() {
        assert!(matches!(parse_request("{\"op\":\"ping\"}"), Ok(Request::Ping)));
        assert!(matches!(parse_request("{\"op\":\"stats\"}"), Ok(Request::Stats)));
        let err = parse_request("{\"op\":\"submit\"}").unwrap_err();
        assert!(err.contains("requires a `job`"), "{err}");
        let err = parse_request("{\"op\":\"warp\"}").unwrap_err();
        assert!(err.contains("unknown op `warp`"), "{err}");
        let err = parse_request("{\"op\":\"ping\",\"extra\":1}").unwrap_err();
        assert!(err.contains("unknown request field `extra`"), "{err}");
    }

    #[test]
    fn canonical_keys_bind_the_engine_epoch() {
        let spec = JobSpec::parse(tiny_spec()).unwrap();
        let at_a = spec.canonical_key_at(0xA);
        let at_b = spec.canonical_key_at(0xB);
        assert_ne!(at_a, at_b, "same job, different semantics, different key");
        assert!(at_a.starts_with("epoch000000000000000a|"), "{at_a}");
        assert!(at_a.ends_with(&spec.descriptor()), "{at_a}");
        // The payload identity line stays epoch-free: rendered bytes never
        // depend on which binary computed them.
        assert!(!spec.descriptor().contains("epoch"), "{}", spec.descriptor());
        assert_eq!(spec.canonical_key(), spec.canonical_key_at(dvp_engine::engine_epoch()));
    }

    #[test]
    fn batch_requests_parse_strictly() {
        let element = format!("{{\"id\":1,\"job\":{}}}", tiny_spec());
        let ok = format!("{{\"op\":\"jobs\",\"jobs\":[{element}]}}");
        let Ok(Request::Batch { jobs }) = parse_request(&ok) else {
            panic!("one-element batch parses")
        };
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].0, 1);

        let dup = format!("{{\"op\":\"jobs\",\"jobs\":[{element},{element}]}}");
        assert!(parse_request(&dup).unwrap_err().contains("duplicate batch id 1"));

        let empty = parse_request("{\"op\":\"jobs\",\"jobs\":[]}").unwrap_err();
        assert!(empty.contains("at least one element"), "{empty}");

        let missing_id = format!("{{\"op\":\"jobs\",\"jobs\":[{{\"job\":{}}}]}}", tiny_spec());
        assert!(parse_request(&missing_id).unwrap_err().contains("requires an `id`"));

        let missing_job = parse_request("{\"op\":\"jobs\",\"jobs\":[{\"id\":1}]}").unwrap_err();
        assert!(missing_job.contains("requires a `job`"), "{missing_job}");

        let stray =
            format!("{{\"op\":\"jobs\",\"jobs\":[{{\"id\":1,\"job\":{},\"x\":1}}]}}", tiny_spec());
        assert!(parse_request(&stray).unwrap_err().contains("unknown batch-element field `x`"));

        let cross = format!("{{\"op\":\"submit\",\"jobs\":[{element}]}}");
        assert!(parse_request(&cross).unwrap_err().contains("not `jobs`"));
        let cross = format!("{{\"op\":\"jobs\",\"job\":{}}}", tiny_spec());
        assert!(parse_request(&cross).unwrap_err().contains("not `job`"));
    }

    #[test]
    fn backend_down_frames_round_trip() {
        let line = backend_down_frame(Some(4), "127.0.0.1:9", "unreachable after 2 attempts: x");
        let frame = Frame::parse(&line).expect("parses");
        assert_eq!(frame.frame, "backend_down");
        assert_eq!(frame.id, Some(4));
        assert_eq!(frame.backend.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(frame.reason.as_deref(), Some("unreachable after 2 attempts: x"));
    }

    #[test]
    fn rendezvous_routing_is_deterministic_and_order_independent() {
        let backends: Vec<String> =
            ["10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"].map(String::from).into();
        let mut reversed = backends.clone();
        reversed.reverse();
        let keys: Vec<String> = (0..200).map(|i| format!("epoch00|job{i}")).collect();
        let mut owners_seen = std::collections::BTreeSet::new();
        for key in &keys {
            let owner = route_backend(&backends, key);
            assert_eq!(owner, route_backend(&backends, key), "stable across calls");
            assert_eq!(owner, route_backend(&reversed, key), "independent of list order");
            owners_seen.insert(owner.to_owned());
        }
        assert_eq!(owners_seen.len(), backends.len(), "200 keys cover all 3 backends");

        // Minimal movement: dropping one backend only re-homes its keys.
        let survivors: Vec<String> = backends[..2].to_vec();
        for key in &keys {
            let before = route_backend(&backends, key);
            if before != backends[2] {
                assert_eq!(before, route_backend(&survivors, key), "surviving owners keep keys");
            }
        }
    }

    #[test]
    fn keys_from_different_epochs_route_independently() {
        let backends: Vec<String> = ["a:1", "b:1", "c:1", "d:1"].map(String::from).into();
        let spec = JobSpec::parse(tiny_spec()).unwrap();
        // Not a guarantee for any single spec, but across epochs the owner
        // must be a pure function of the full canonical key.
        let moved = (0u64..32)
            .filter(|&epoch| {
                route_backend(&backends, &spec.canonical_key_at(epoch))
                    != route_backend(&backends, &spec.canonical_key_at(epoch + 1000))
            })
            .count();
        assert!(moved > 0, "epoch is part of the routed key");
    }
}
