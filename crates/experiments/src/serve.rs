//! `repro serve` — a concurrent replay daemon with a result cache.
//!
//! The paper's experiments are one-shot sweeps; this module turns the
//! replay machinery into a long-lived service answering predictability
//! queries for many concurrent clients. A [`Server`] listens on TCP and
//! speaks a newline-delimited JSON **line protocol**: every request and
//! every response is one JSON object on one line.
//!
//! # The job lifecycle
//!
//! 1. **Admit.** A `submit` request carries a [`JobSpec`] — a synthetic
//!    scenario or a workload, a predictor bank, and options. Specs are
//!    parsed *strictly* (an unknown field is an error, never silently
//!    ignored) and validated before anything is scheduled. Admission is
//!    controlled twice: per client (at most `inflight_cap` unfinished
//!    jobs per connection) and globally (the bounded
//!    [`dvp_engine::JobQueue`] in front of the engine). An
//!    over-limit submit is answered with a structured `rejected` frame,
//!    never queued without bound.
//! 2. **Schedule.** Admitted jobs run on the queue's worker threads; each
//!    job internally fans out on the shared
//!    [`dvp_engine::ReplayEngine`].
//! 3. **Replay.** [`run_job`] materializes the trace (through the
//!    ordinary [`crate::TraceStore`] path, including its disk
//!    tier when a trace directory is configured), replays the requested
//!    bank, and renders a deterministic text payload — byte-identical to
//!    what the one-shot `repro job` CLI prints for the same spec.
//! 4. **Cache.** Completed payloads are memoized in a fingerprint-keyed
//!    [`crate::result_cache::ResultCache`] (in-memory LRU +
//!    optional on-disk tier); an identical later job is answered from
//!    cache with a byte-identical payload.
//! 5. **Stream.** The client sees `accepted`, then `progress`, then one
//!    terminal `result` / `error` frame (or an immediate `rejected`).
//!    Frames for one connection are serialized through a per-connection
//!    writer lock, so `accepted` always precedes that job's `result`.
//!
//! # Examples
//!
//! ```
//! use dvp_engine::ReplayEngine;
//! use dvp_experiments::serve::{JobSpec, Outcome, ServeClient, ServeOptions, Server, run_job};
//!
//! let engine = ReplayEngine::sequential();
//! let server = Server::start(engine.clone(), ServeOptions::default())?;
//! let mut client = ServeClient::connect(&server.addr().to_string())?;
//!
//! let spec = r#"{"scenario":{"kind":"constant","pcs":2,"records_per_pc":64},"bank":["l"]}"#;
//! let outcome = client.submit(spec)?;
//! let Outcome::Result { payload, .. } = outcome else { panic!("small job is admitted") };
//! // Byte-identical to computing the same job inline:
//! let inline = run_job(&JobSpec::parse(spec).unwrap(), &engine, None).unwrap();
//! assert_eq!(payload, inline);
//! client.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::cache::TraceCache;
use crate::result_cache::{ResultCache, ResultCacheStats};
use crate::{TextTable, TraceStore, REFERENCE_OPT};
use dvp_core::PredictorConfig;
use dvp_engine::{JobQueue, ReplayEngine};
use dvp_workloads::synthetic::{Scenario, ScenarioKind, MAX_CYCLE};
use dvp_workloads::Benchmark;
use serde::json;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Version of the line protocol, announced in the `hello` frame.
pub const PROTOCOL_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Job specs
// ---------------------------------------------------------------------------

/// What a job replays: a synthetic scenario or a simulated workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// A parameterized synthetic scenario (generated, never simulated).
    Scenario(Scenario),
    /// A real benchmark workload at `default_scale / scale_div`.
    Workload {
        /// The benchmark to simulate.
        benchmark: Benchmark,
        /// Scale divisor (1 = reference scale; `repro --quick` uses 4).
        scale_div: u32,
    },
}

/// One validated replay job: source × predictor bank × options.
///
/// The wire form is a JSON object with exactly one of `"scenario"` /
/// `"workload"`, plus optional `"bank"` (defaults to the paper bank),
/// `"sample"` (phase-sampled replay with functional warming), and
/// `"record_cap"`. Parsing is strict: unknown fields and out-of-range
/// parameters are errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// What to replay.
    pub source: JobSource,
    /// Predictor configuration names (`"l"`, `"s2"`, `"fcm1"`..`"fcm8"`).
    pub bank: Vec<String>,
    /// Replay only a SimPoint phase plan (functionally warmed) instead of
    /// the full trace.
    pub sample: bool,
    /// Truncate the trace to at most this many records.
    pub record_cap: Option<usize>,
}

/// Intermediate scenario fields, collected before kind-aware validation.
#[derive(Default)]
struct ScenarioFields {
    kind: Option<String>,
    pcs: Option<u32>,
    records_per_pc: Option<u32>,
    seed: Option<u64>,
    stride: Option<i64>,
    jitter_pct: Option<u8>,
    period: Option<u32>,
    order: Option<u32>,
    alphabet: Option<u64>,
    heap: Option<u32>,
}

impl ScenarioFields {
    /// Rejects any kind-specific field that does not belong to `kind`.
    fn forbid(&self, kind: &str, allowed: &[&str]) -> Result<(), String> {
        let present: [(&str, bool); 6] = [
            ("stride", self.stride.is_some()),
            ("jitter_pct", self.jitter_pct.is_some()),
            ("period", self.period.is_some()),
            ("order", self.order.is_some()),
            ("alphabet", self.alphabet.is_some()),
            ("heap", self.heap.is_some()),
        ];
        for (name, is_present) in present {
            if is_present && !allowed.contains(&name) {
                return Err(format!("field `{name}` does not apply to scenario kind `{kind}`"));
            }
        }
        Ok(())
    }

    fn require<T: Copy>(value: Option<T>, kind: &str, name: &str) -> Result<T, String> {
        value.ok_or_else(|| format!("scenario kind `{kind}` requires field `{name}`"))
    }

    /// Builds the validated [`Scenario`], mirroring [`Scenario::new`]'s
    /// panicking range asserts as structured errors (a daemon must never
    /// panic on client input).
    fn build(self) -> Result<Scenario, String> {
        let kind_name = self.kind.clone().ok_or("scenario requires field `kind`")?;
        let pcs = self.pcs.ok_or("scenario requires field `pcs`")?;
        let records_per_pc =
            self.records_per_pc.ok_or("scenario requires field `records_per_pc`")?;
        if pcs == 0 {
            return Err("scenario `pcs` must be positive".to_owned());
        }
        if records_per_pc == 0 {
            return Err("scenario `records_per_pc` must be positive".to_owned());
        }
        let seed = self.seed.unwrap_or(1);
        let kind = match kind_name.as_str() {
            "constant" => {
                self.forbid(&kind_name, &[])?;
                ScenarioKind::Constant
            }
            "mixed" => {
                self.forbid(&kind_name, &[])?;
                ScenarioKind::Mixed
            }
            "stride" => {
                self.forbid(&kind_name, &["stride", "jitter_pct"])?;
                let stride = Self::require(self.stride, &kind_name, "stride")?;
                if stride == 0 {
                    return Err(
                        "scenario `stride` must be nonzero (use kind `constant`)".to_owned()
                    );
                }
                let jitter_pct = self.jitter_pct.unwrap_or(0);
                if jitter_pct > 100 {
                    return Err("scenario `jitter_pct` must be at most 100".to_owned());
                }
                ScenarioKind::Stride { stride, jitter_pct }
            }
            "periodic" => {
                self.forbid(&kind_name, &["period"])?;
                let period = Self::require(self.period, &kind_name, "period")?;
                if !(1..=MAX_CYCLE).contains(&period) {
                    return Err(format!("scenario `period` must be in 1..={MAX_CYCLE}"));
                }
                ScenarioKind::Periodic { period }
            }
            "markov" => {
                self.forbid(&kind_name, &["order", "alphabet"])?;
                let order = Self::require(self.order, &kind_name, "order")?;
                let alphabet = Self::require(self.alphabet, &kind_name, "alphabet")?;
                if !(1..=8).contains(&order) {
                    return Err("scenario `order` must be in 1..=8".to_owned());
                }
                if !(2..=64).contains(&alphabet) {
                    return Err(
                        "scenario `alphabet` must be in 2..=64 for kind `markov`".to_owned()
                    );
                }
                let alphabet = u32::try_from(alphabet).expect("<= 64");
                if u64::from(alphabet).pow(order) > u64::from(MAX_CYCLE) {
                    return Err(format!("scenario alphabet^order exceeds {MAX_CYCLE}"));
                }
                ScenarioKind::Markov { order, alphabet }
            }
            "chase" => {
                self.forbid(&kind_name, &["heap"])?;
                let heap = Self::require(self.heap, &kind_name, "heap")?;
                if !(2..=MAX_CYCLE).contains(&heap) {
                    return Err(format!("scenario `heap` must be in 2..={MAX_CYCLE}"));
                }
                ScenarioKind::Chase { heap }
            }
            "random" => {
                self.forbid(&kind_name, &["alphabet"])?;
                let alphabet = Self::require(self.alphabet, &kind_name, "alphabet")?;
                if alphabet < 2 {
                    return Err("scenario `alphabet` must be at least 2".to_owned());
                }
                ScenarioKind::Random { alphabet }
            }
            other => {
                return Err(format!(
                    "unknown scenario kind `{other}` (expected constant, stride, periodic, \
                     markov, chase, random, or mixed)"
                ))
            }
        };
        Ok(Scenario::new(kind, pcs, records_per_pc, seed))
    }
}

/// Parses one JSON number token into `T`, with the field name in errors.
fn number_field<T: std::str::FromStr>(parser: &mut json::Parser, name: &str) -> Result<T, String> {
    let text = parser.number_text().map_err(|err| format!("field `{name}`: {err}"))?;
    text.parse::<T>().map_err(|_| format!("field `{name}`: invalid number `{text}`"))
}

impl JobSpec {
    /// Parses a complete job-spec JSON document (strict: trailing input,
    /// unknown fields, and out-of-range parameters are all errors).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let mut parser = json::Parser::new(text);
        let spec = JobSpec::parse_value(&mut parser)?;
        parser.finish().map_err(|err| err.to_string())?;
        Ok(spec)
    }

    /// Parses one job-spec object at the parser's cursor (the form used
    /// inside a `submit` request's `"job"` field).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn parse_value(parser: &mut json::Parser) -> Result<JobSpec, String> {
        let fail = |err: json::Error| err.to_string();
        parser.begin_object().map_err(fail)?;
        let mut scenario: Option<Scenario> = None;
        let mut workload: Option<(Benchmark, u32)> = None;
        let mut bank: Option<Vec<String>> = None;
        let mut sample = false;
        let mut record_cap: Option<usize> = None;
        let mut first = true;
        while !parser.end_object(&mut first).map_err(fail)? {
            let key = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match key.as_str() {
                "scenario" => scenario = Some(Self::parse_scenario(parser)?),
                "workload" => workload = Some(Self::parse_workload(parser)?),
                "bank" => {
                    let mut names = Vec::new();
                    parser.begin_array().map_err(fail)?;
                    let mut first_el = true;
                    while !parser.end_array(&mut first_el).map_err(fail)? {
                        names.push(parser.string().map_err(fail)?);
                    }
                    bank = Some(names);
                }
                "sample" => sample = parser.boolean().map_err(fail)?,
                "record_cap" => {
                    if !parser.try_null().map_err(fail)? {
                        let cap: u64 = number_field(parser, "record_cap")?;
                        if cap == 0 {
                            return Err("field `record_cap` must be positive".to_owned());
                        }
                        record_cap =
                            Some(usize::try_from(cap).map_err(|_| "field `record_cap` too large")?);
                    }
                }
                other => return Err(format!("unknown job field `{other}`")),
            }
        }
        let source = match (scenario, workload) {
            (Some(s), None) => JobSource::Scenario(s),
            (None, Some((benchmark, scale_div))) => JobSource::Workload { benchmark, scale_div },
            _ => return Err("job must have exactly one of `scenario` or `workload`".to_owned()),
        };
        let bank = match bank {
            Some(names) if names.is_empty() => {
                return Err("field `bank` must name at least one predictor".to_owned())
            }
            Some(names) => names,
            None => PredictorConfig::paper_bank().iter().map(|c| c.name().to_owned()).collect(),
        };
        for name in &bank {
            if bank_config(name).is_none() {
                return Err(format!(
                    "unknown predictor `{name}` in bank (expected l, s2, or fcm1..fcm8)"
                ));
            }
        }
        Ok(JobSpec { source, bank, sample, record_cap })
    }

    fn parse_scenario(parser: &mut json::Parser) -> Result<Scenario, String> {
        let fail = |err: json::Error| err.to_string();
        parser.begin_object().map_err(fail)?;
        let mut fields = ScenarioFields::default();
        let mut first = true;
        while !parser.end_object(&mut first).map_err(fail)? {
            let key = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match key.as_str() {
                "kind" => fields.kind = Some(parser.string().map_err(fail)?),
                "pcs" => fields.pcs = Some(number_field(parser, "pcs")?),
                "records_per_pc" => {
                    fields.records_per_pc = Some(number_field(parser, "records_per_pc")?);
                }
                "seed" => fields.seed = Some(number_field(parser, "seed")?),
                "stride" => fields.stride = Some(number_field(parser, "stride")?),
                "jitter_pct" => fields.jitter_pct = Some(number_field(parser, "jitter_pct")?),
                "period" => fields.period = Some(number_field(parser, "period")?),
                "order" => fields.order = Some(number_field(parser, "order")?),
                "alphabet" => fields.alphabet = Some(number_field(parser, "alphabet")?),
                "heap" => fields.heap = Some(number_field(parser, "heap")?),
                other => return Err(format!("unknown scenario field `{other}`")),
            }
        }
        fields.build()
    }

    fn parse_workload(parser: &mut json::Parser) -> Result<(Benchmark, u32), String> {
        let fail = |err: json::Error| err.to_string();
        parser.begin_object().map_err(fail)?;
        let mut benchmark: Option<Benchmark> = None;
        let mut scale_div = 1u32;
        let mut first = true;
        while !parser.end_object(&mut first).map_err(fail)? {
            let key = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match key.as_str() {
                "benchmark" => {
                    let name = parser.string().map_err(fail)?;
                    let Some(&found) = Benchmark::ALL.iter().find(|b| b.name() == name) else {
                        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
                        return Err(format!(
                            "unknown benchmark `{name}` (expected one of: {})",
                            names.join(", ")
                        ));
                    };
                    benchmark = Some(found);
                }
                "scale_div" => {
                    scale_div = number_field(parser, "scale_div")?;
                    if scale_div == 0 {
                        return Err("field `scale_div` must be positive".to_owned());
                    }
                }
                other => return Err(format!("unknown workload field `{other}`")),
            }
        }
        let benchmark = benchmark.ok_or("workload requires field `benchmark`")?;
        Ok((benchmark, scale_div))
    }

    /// Renders the spec back to its canonical one-line JSON wire form
    /// (fields in a fixed order; `JobSpec::parse(spec.to_json())`
    /// round-trips).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        match &self.source {
            JobSource::Scenario(s) => {
                out.push_str("\"scenario\":{\"kind\":");
                json::write_string(s.name(), &mut out);
                out.push_str(&format!(
                    ",\"pcs\":{},\"records_per_pc\":{},\"seed\":{}",
                    s.pcs(),
                    s.records_per_pc(),
                    s.seed()
                ));
                match s.kind() {
                    ScenarioKind::Constant | ScenarioKind::Mixed => {}
                    ScenarioKind::Stride { stride, jitter_pct } => {
                        out.push_str(&format!(",\"stride\":{stride},\"jitter_pct\":{jitter_pct}"));
                    }
                    ScenarioKind::Periodic { period } => {
                        out.push_str(&format!(",\"period\":{period}"));
                    }
                    ScenarioKind::Markov { order, alphabet } => {
                        out.push_str(&format!(",\"order\":{order},\"alphabet\":{alphabet}"));
                    }
                    ScenarioKind::Chase { heap } => out.push_str(&format!(",\"heap\":{heap}")),
                    ScenarioKind::Random { alphabet } => {
                        out.push_str(&format!(",\"alphabet\":{alphabet}"));
                    }
                }
                out.push('}');
            }
            JobSource::Workload { benchmark, scale_div } => {
                out.push_str("\"workload\":{\"benchmark\":");
                json::write_string(benchmark.name(), &mut out);
                out.push_str(&format!(",\"scale_div\":{scale_div}}}"));
            }
        }
        out.push_str(",\"bank\":[");
        for (i, name) in self.bank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(name, &mut out);
        }
        out.push_str(&format!("],\"sample\":{}", self.sample));
        if let Some(cap) = self.record_cap {
            out.push_str(&format!(",\"record_cap\":{cap}"));
        }
        out.push('}');
        out
    }

    /// The canonical result-cache key: the trace fingerprint (workload,
    /// input, opt level, seed, scale, record cap) extended with the bank
    /// and sampling mode — everything that can move a payload byte.
    #[must_use]
    pub fn canonical_key(&self) -> String {
        let fp = match &self.source {
            JobSource::Scenario(s) => s.fingerprint(self.record_cap),
            JobSource::Workload { benchmark, scale_div } => {
                let scale = (benchmark.default_scale() / scale_div).max(1);
                let workload = dvp_workloads::Workload::reference(*benchmark).with_scale(scale);
                TraceCache::fingerprint(&workload, REFERENCE_OPT, self.record_cap)
            }
        };
        format!(
            "{}|{}|{}|seed{}|scale{}|cap{}|bank={}|sample={}",
            fp.workload,
            fp.input,
            fp.opt_level,
            fp.seed,
            fp.scale,
            fp.record_cap,
            self.bank.join("+"),
            u8::from(self.sample)
        )
    }
}

/// Resolves one predictor-configuration name: the paper bank's `"l"`,
/// `"s2"`, `"fcm1"`..`"fcm3"`, plus the extended `"fcm4"`..`"fcm8"`.
#[must_use]
pub fn bank_config(name: &str) -> Option<PredictorConfig> {
    if let Some(config) = PredictorConfig::paper_bank().into_iter().find(|c| c.name() == name) {
        return Some(config);
    }
    let order: usize = name.strip_prefix("fcm")?.parse().ok()?;
    if (1..=8).contains(&order) {
        PredictorConfig::fcm_orders([order]).pop()
    } else {
        None
    }
}

/// Runs one job to its rendered text payload — the single code path
/// behind the daemon, the one-shot `repro job` CLI, and the test goldens,
/// so all three are byte-identical by construction.
///
/// `trace_dir` adds the persistent trace-cache tier for workload and
/// scenario traces (results are cached separately, by the caller).
///
/// # Errors
///
/// A human-readable description of the failure (bad bank name, workload
/// build error).
pub fn run_job(
    spec: &JobSpec,
    engine: &ReplayEngine,
    trace_dir: Option<&Path>,
) -> Result<String, String> {
    let configs: Vec<PredictorConfig> = spec
        .bank
        .iter()
        .map(|name| bank_config(name).ok_or_else(|| format!("unknown predictor `{name}` in bank")))
        .collect::<Result<_, _>>()?;
    let mut store = match &spec.source {
        JobSource::Scenario(_) => TraceStore::new(),
        JobSource::Workload { scale_div, .. } => TraceStore::with_scale_div(*scale_div),
    };
    if let Some(cap) = spec.record_cap {
        store = store.with_record_cap(cap);
    }
    if let Some(dir) = trace_dir {
        store = store.with_trace_dir(dir);
    }
    let trace = match &spec.source {
        JobSource::Scenario(scenario) => {
            store.synthetic_traces(engine, &[*scenario]).pop().expect("one scenario in, one out")
        }
        JobSource::Workload { benchmark, .. } => {
            store.trace(*benchmark).map_err(|err| format!("workload generation failed: {err:?}"))?
        }
    };
    let mut payload = format!("job {}\n", spec.canonical_key());
    if spec.sample {
        let plan = dvp_engine::phase_plan(&trace, &dvp_engine::PhaseOptions::default());
        let replays = engine.replay_sampled_warm(&trace, &configs, &plan);
        payload.push_str(&format!(
            "sampled {} of {} records across {} phases (functional warming)\n",
            plan.simulated_records(),
            trace.len(),
            plan.phases.len()
        ));
        let mut table = TextTable::new(vec!["Config", "Simulated", "Correct", "Weighted%"]);
        for replay in &replays {
            let correct: u64 = replay.phases.iter().map(|t| t.correct(None)).sum();
            table.row(vec![
                replay.name.clone(),
                replay.simulated().to_string(),
                correct.to_string(),
                format!("{:.2}", replay.weighted_accuracy(&plan, None) * 100.0),
            ]);
        }
        payload.push_str(&table.render());
    } else {
        let replays = engine.replay(&trace, &configs);
        payload.push_str(&format!("replayed {} records\n", trace.len()));
        let mut table = TextTable::new(vec!["Config", "Predicted", "Correct"]);
        for replay in &replays {
            table.row(vec![
                replay.name.clone(),
                replay.tracker.predicted(None).to_string(),
                replay.tracker.correct(None).to_string(),
            ]);
        }
        payload.push_str(&table.render());
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_owned(), |n| n.to_string())
}

fn hello_frame() -> String {
    format!("{{\"frame\":\"hello\",\"protocol\":{PROTOCOL_VERSION},\"server\":\"repro-serve\"}}")
}

fn accepted_frame(id: Option<u64>, key: &str) -> String {
    let mut out = format!("{{\"frame\":\"accepted\",\"id\":{},\"key\":", id_json(id));
    json::write_string(key, &mut out);
    out.push('}');
    out
}

fn rejected_frame(id: Option<u64>, reason: &str) -> String {
    let mut out = format!("{{\"frame\":\"rejected\",\"id\":{},\"reason\":", id_json(id));
    json::write_string(reason, &mut out);
    out.push('}');
    out
}

fn progress_frame(id: Option<u64>, state: &str) -> String {
    let mut out = format!("{{\"frame\":\"progress\",\"id\":{},\"state\":", id_json(id));
    json::write_string(state, &mut out);
    out.push('}');
    out
}

fn result_frame(id: Option<u64>, cache: &str, payload: &str) -> String {
    let mut out = format!("{{\"frame\":\"result\",\"id\":{},\"cache\":", id_json(id));
    json::write_string(cache, &mut out);
    out.push_str(",\"payload\":");
    json::write_string(payload, &mut out);
    out.push('}');
    out
}

fn error_frame(id: Option<u64>, message: &str) -> String {
    let mut out = format!("{{\"frame\":\"error\",\"id\":{},\"message\":", id_json(id));
    json::write_string(message, &mut out);
    out.push('}');
    out
}

/// One parsed server frame — the *lenient* counterpart of the server's
/// strict request parsing: unknown fields are skipped so old clients keep
/// working against newer servers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Frame {
    /// Frame type: `hello`, `accepted`, `rejected`, `progress`, `result`,
    /// `error`, `pong`, `stats`, `bye`.
    pub frame: String,
    /// Echo of the submit request's `id`, when the frame belongs to a job.
    pub id: Option<u64>,
    /// The job's canonical result-cache key (`accepted` frames).
    pub key: Option<String>,
    /// Why a job was refused (`rejected` frames).
    pub reason: Option<String>,
    /// Scheduling state (`progress` frames).
    pub state: Option<String>,
    /// `"hit"` or `"miss"` (`result` frames).
    pub cache: Option<String>,
    /// The rendered job payload (`result` frames).
    pub payload: Option<String>,
    /// What went wrong (`error` frames).
    pub message: Option<String>,
    /// The frame's raw JSON line, verbatim.
    pub raw: String,
}

impl Frame {
    /// Parses one frame line, skipping unknown fields.
    ///
    /// # Errors
    ///
    /// Reports malformed JSON or a missing `frame` field.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let fail = |err: json::Error| err.to_string();
        let mut parser = json::Parser::new(line);
        let mut out = Frame { raw: line.to_owned(), ..Frame::default() };
        parser.begin_object().map_err(fail)?;
        let mut first = true;
        let mut saw_frame = false;
        while !parser.end_object(&mut first).map_err(fail)? {
            let field = parser.string().map_err(fail)?;
            parser.colon().map_err(fail)?;
            match field.as_str() {
                "frame" => {
                    out.frame = parser.string().map_err(fail)?;
                    saw_frame = true;
                }
                "id" => {
                    if !parser.try_null().map_err(fail)? {
                        out.id = Some(number_field(&mut parser, "id")?);
                    }
                }
                "key" => out.key = Some(parser.string().map_err(fail)?),
                "reason" => out.reason = Some(parser.string().map_err(fail)?),
                "state" => out.state = Some(parser.string().map_err(fail)?),
                "cache" => out.cache = Some(parser.string().map_err(fail)?),
                "payload" => out.payload = Some(parser.string().map_err(fail)?),
                "message" => out.message = Some(parser.string().map_err(fail)?),
                _ => parser.skip_value().map_err(fail)?,
            }
        }
        parser.finish().map_err(fail)?;
        if !saw_frame {
            return Err("frame is missing `frame`".to_owned());
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Daemon configuration (all fields have conservative defaults).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address; port 0 binds an ephemeral port (read it back via
    /// [`Server::addr`]).
    pub listen: String,
    /// Maximum *pending* (admitted, not yet running) jobs; an over-limit
    /// submit is rejected.
    pub queue_capacity: usize,
    /// Maximum unfinished jobs per client connection.
    pub inflight_cap: usize,
    /// Worker threads executing jobs (each job fans out on the engine).
    pub job_workers: usize,
    /// In-memory result-cache entries (LRU).
    pub memory_entries: usize,
    /// On-disk result-cache directory (none = memory-only results).
    pub result_dir: Option<PathBuf>,
    /// Trace-cache directory handed to every job's [`TraceStore`].
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            listen: "127.0.0.1:0".to_owned(),
            queue_capacity: 64,
            inflight_cap: 8,
            job_workers: 2,
            memory_entries: 64,
            result_dir: None,
            trace_dir: None,
        }
    }
}

/// State shared by the accept thread, connection threads, and job workers.
struct ServerShared {
    engine: ReplayEngine,
    queue: JobQueue,
    cache: Mutex<ResultCache>,
    inflight_cap: usize,
    trace_dir: Option<PathBuf>,
    shutdown: AtomicBool,
    completed: AtomicU64,
    addr: SocketAddr,
}

impl ServerShared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn stats_frame(&self) -> String {
        let stats = self.cache.lock().expect("cache mutex never poisoned").stats();
        format!(
            "{{\"frame\":\"stats\",\"result_hits\":{},\"misses\":{},\"disk_hits\":{},\
             \"written\":{},\"evicted\":{},\"invalid\":{},\"completed\":{},\"queued\":{},\
             \"running\":{}}}",
            stats.hits,
            stats.misses,
            stats.disk_hits,
            stats.written,
            stats.evictions,
            stats.invalid,
            self.completed.load(Ordering::SeqCst),
            self.queue.queued(),
            self.queue.running()
        )
    }
}

/// The `repro serve` daemon (see the [module docs](self) for the
/// protocol and job lifecycle).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds `options.listen` and starts accepting connections; jobs run
    /// on `engine`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (busy port, bad address).
    pub fn start(engine: ReplayEngine, options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.listen)?;
        let addr = listener.local_addr()?;
        let mut cache = ResultCache::new(options.memory_entries);
        if let Some(dir) = &options.result_dir {
            cache = cache.with_dir(dir);
        }
        let shared = Arc::new(ServerShared {
            queue: JobQueue::new(options.job_workers, options.queue_capacity),
            engine,
            cache: Mutex::new(cache),
            inflight_cap: options.inflight_cap,
            trace_dir: options.trace_dir.clone(),
            shutdown: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            addr,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_shared = Arc::clone(&accept_shared);
                thread::spawn(move || handle_connection(&conn_shared, stream));
            }
        });
        Ok(Server { addr, shared, accept: Some(accept) })
    }

    /// The bound address (read this back after listening on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Result-cache counters so far.
    #[must_use]
    pub fn result_stats(&self) -> ResultCacheStats {
        self.shared.cache.lock().expect("cache mutex never poisoned").stats()
    }

    /// Jobs that reached a terminal frame (result, cached result, error).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::SeqCst)
    }

    /// Blocks until no job is pending or running (or `timeout` elapses);
    /// reports whether the queue went idle.
    #[must_use]
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.shared.queue.wait_idle(timeout)
    }

    /// Begins shutdown: no new connections are accepted. Already-admitted
    /// jobs still run to completion.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until a client requests shutdown (or one was already
    /// requested), drains in-flight jobs, and returns the final
    /// result-cache counters.
    pub fn join(mut self) -> ResultCacheStats {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let _ = self.shared.queue.wait_idle(Duration::from_secs(60));
        self.result_stats()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.shared.request_shutdown();
            let _ = handle.join();
        }
    }
}

/// Writes one frame line; write errors mean the client is gone and are
/// deliberately ignored (a disconnected client must never wedge a job).
fn write_frame(writer: &Mutex<TcpStream>, line: &str) {
    let mut stream = writer.lock().expect("writer mutex never poisoned");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// One client request, parsed strictly (see [`parse_request`]).
#[derive(Debug)]
enum Request {
    Submit { id: Option<u64>, spec: Box<JobSpec> },
    Ping,
    Stats,
    Shutdown,
}

/// Parses one request line. Strict like the job spec itself: an unknown
/// request field or op is an error answered with an `error` frame.
fn parse_request(line: &str) -> Result<Request, String> {
    let fail = |err: json::Error| err.to_string();
    let mut parser = json::Parser::new(line);
    parser.begin_object().map_err(fail)?;
    let mut op: Option<String> = None;
    let mut id: Option<u64> = None;
    let mut spec: Option<JobSpec> = None;
    let mut first = true;
    while !parser.end_object(&mut first).map_err(fail)? {
        let key = parser.string().map_err(fail)?;
        parser.colon().map_err(fail)?;
        match key.as_str() {
            "op" => op = Some(parser.string().map_err(fail)?),
            "id" => {
                if !parser.try_null().map_err(fail)? {
                    id = Some(number_field(&mut parser, "id")?);
                }
            }
            "job" => spec = Some(JobSpec::parse_value(&mut parser)?),
            other => return Err(format!("unknown request field `{other}`")),
        }
    }
    parser.finish().map_err(fail)?;
    match op.as_deref() {
        Some("submit") => {
            let spec = spec.ok_or("submit requires a `job` object")?;
            Ok(Request::Submit { id, spec: Box::new(spec) })
        }
        Some("ping") => Ok(Request::Ping),
        Some("stats") => Ok(Request::Stats),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(other) => {
            Err(format!("unknown op `{other}` (expected submit, ping, stats, or shutdown)"))
        }
        None => Err("request is missing `op`".to_owned()),
    }
}

fn handle_connection(shared: &Arc<ServerShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = Arc::new(Mutex::new(write_half));
    write_frame(&writer, &hello_frame());
    let inflight = Arc::new(AtomicUsize::new(0));
    let reader = io::BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(why) => write_frame(&writer, &error_frame(None, &why)),
            Ok(Request::Ping) => write_frame(&writer, "{\"frame\":\"pong\"}"),
            Ok(Request::Stats) => write_frame(&writer, &shared.stats_frame()),
            Ok(Request::Shutdown) => {
                write_frame(&writer, "{\"frame\":\"bye\"}");
                shared.request_shutdown();
                break;
            }
            Ok(Request::Submit { id, spec }) => submit_job(shared, &writer, &inflight, id, *spec),
        }
    }
}

fn submit_job(
    shared: &Arc<ServerShared>,
    writer: &Arc<Mutex<TcpStream>>,
    inflight: &Arc<AtomicUsize>,
    id: Option<u64>,
    spec: JobSpec,
) {
    if inflight.load(Ordering::SeqCst) >= shared.inflight_cap {
        let reason = format!("in-flight limit ({}) reached", shared.inflight_cap);
        write_frame(writer, &rejected_frame(id, &reason));
        return;
    }
    let key = spec.canonical_key();
    let cached = shared.cache.lock().expect("cache mutex never poisoned").get(&key);
    if let Some(payload) = cached {
        // Count completion *before* the terminal frame: a client must
        // never observe its result while `completed()` still lags.
        shared.completed.fetch_add(1, Ordering::SeqCst);
        write_frame(writer, &accepted_frame(id, &key));
        write_frame(writer, &result_frame(id, "hit", &payload));
        return;
    }
    inflight.fetch_add(1, Ordering::SeqCst);
    let job_shared = Arc::clone(shared);
    let job_writer = Arc::clone(writer);
    let job_inflight = Arc::clone(inflight);
    let job_key = key.clone();
    let job = move || {
        write_frame(&job_writer, &progress_frame(id, "replaying"));
        let outcome = run_job(&spec, &job_shared.engine, job_shared.trace_dir.as_deref());
        if let Ok(payload) = &outcome {
            job_shared.cache.lock().expect("cache mutex never poisoned").insert(&job_key, payload);
        }
        // Count completion *before* the terminal frame (see the hit path).
        job_shared.completed.fetch_add(1, Ordering::SeqCst);
        match outcome {
            Ok(payload) => write_frame(&job_writer, &result_frame(id, "miss", &payload)),
            Err(why) => write_frame(&job_writer, &error_frame(id, &why)),
        }
        job_inflight.fetch_sub(1, Ordering::SeqCst);
    };
    // Hold the writer lock across admission so the worker's `progress`
    // frame can never precede this job's `accepted` frame.
    let guard = writer.lock().expect("writer mutex never poisoned");
    let admitted = shared.queue.try_submit(job);
    let line = match admitted {
        Ok(_ticket) => accepted_frame(id, &key),
        Err(err) => {
            inflight.fetch_sub(1, Ordering::SeqCst);
            rejected_frame(id, &err.to_string())
        }
    };
    let mut stream = guard;
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Terminal outcome of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The job finished; `cache` is `"hit"` or `"miss"`.
    Result {
        /// Whether the payload came from the result cache.
        cache: String,
        /// The rendered job payload.
        payload: String,
    },
    /// Admission control refused the job.
    Rejected {
        /// The structured reason (queue full, in-flight limit).
        reason: String,
    },
    /// The job (or the request itself) failed.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// A blocking line-protocol client: one connection, sequential requests.
/// Used by `repro client`, the integration suite, and CI.
#[derive(Debug)]
pub struct ServeClient {
    reader: io::BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Connects, applies a generous read timeout (jobs are computed
    /// while the client blocks on the result frame), and consumes the
    /// server's `hello`.
    ///
    /// # Errors
    ///
    /// Propagates connect/handshake failures (connection refused, a
    /// non-`hello` first frame).
    pub fn connect(addr: &str) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let mut client = ServeClient { reader: io::BufReader::new(stream), writer, next_id: 1 };
        let hello = client.read_frame()?;
        if hello.frame != "hello" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a hello frame, got `{}`", hello.raw),
            ));
        }
        Ok(client)
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_frame(&mut self) -> io::Result<Frame> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return Frame::parse(line.trim_end_matches(['\n', '\r']))
                .map_err(|why| io::Error::new(io::ErrorKind::InvalidData, why));
        }
    }

    /// Submits one job spec (JSON text) and drives the stream to its
    /// terminal frame, handing every frame to `on_frame` on the way.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; protocol-level refusals come back
    /// as [`Outcome::Rejected`] / [`Outcome::Error`].
    pub fn submit_streaming(
        &mut self,
        job_json: &str,
        mut on_frame: impl FnMut(&Frame),
    ) -> io::Result<Outcome> {
        let id = self.next_id;
        self.next_id += 1;
        self.send_line(&format!("{{\"op\":\"submit\",\"id\":{id},\"job\":{job_json}}}"))?;
        loop {
            let frame = self.read_frame()?;
            on_frame(&frame);
            match frame.frame.as_str() {
                "result" => {
                    return Ok(Outcome::Result {
                        cache: frame.cache.unwrap_or_default(),
                        payload: frame.payload.unwrap_or_default(),
                    })
                }
                "rejected" => {
                    return Ok(Outcome::Rejected { reason: frame.reason.unwrap_or_default() })
                }
                "error" => {
                    return Ok(Outcome::Error { message: frame.message.unwrap_or_default() })
                }
                _ => {}
            }
        }
    }

    /// [`ServeClient::submit_streaming`] without a frame callback.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn submit(&mut self, job_json: &str) -> io::Result<Outcome> {
        self.submit_streaming(job_json, |_| {})
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// Propagates transport failures or a non-`pong` response.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send_line("{\"op\":\"ping\"}")?;
        let frame = self.read_frame()?;
        if frame.frame == "pong" {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected pong: {}", frame.raw)))
        }
    }

    /// Fetches the server's `stats` frame (raw JSON line).
    ///
    /// # Errors
    ///
    /// Propagates transport failures or a non-`stats` response.
    pub fn stats(&mut self) -> io::Result<String> {
        self.send_line("{\"op\":\"stats\"}")?;
        let frame = self.read_frame()?;
        if frame.frame == "stats" {
            Ok(frame.raw)
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats: {}", frame.raw),
            ))
        }
    }

    /// Asks the server to shut down and waits for the `bye` ack.
    ///
    /// # Errors
    ///
    /// Propagates transport failures or a non-`bye` response.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send_line("{\"op\":\"shutdown\"}")?;
        let frame = self.read_frame()?;
        if frame.frame == "bye" {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidData, format!("expected bye: {}", frame.raw)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> &'static str {
        r#"{"scenario":{"kind":"stride","pcs":2,"records_per_pc":32,"seed":3,"stride":5},"bank":["l","s2"]}"#
    }

    #[test]
    fn job_spec_round_trips_through_to_json() {
        let spec = JobSpec::parse(tiny_spec()).expect("valid spec");
        assert_eq!(JobSpec::parse(&spec.to_json()).expect("canonical form reparses"), spec);
        assert!(matches!(spec.source, JobSource::Scenario(_)));
        assert_eq!(spec.bank, vec!["l", "s2"]);
        assert!(!spec.sample);
    }

    #[test]
    fn job_spec_defaults_bank_to_the_paper_bank() {
        let spec = JobSpec::parse(r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8}}"#)
            .expect("valid spec");
        assert_eq!(spec.bank, vec!["l", "s2", "fcm1", "fcm2", "fcm3"]);
    }

    #[test]
    fn job_spec_rejects_unknown_and_misapplied_fields() {
        let unknown = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8},"bogus":1}"#,
        )
        .unwrap_err();
        assert!(unknown.contains("unknown job field `bogus`"), "{unknown}");

        let scenario_field = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8,"warp":9}}"#,
        )
        .unwrap_err();
        assert!(scenario_field.contains("unknown scenario field `warp`"), "{scenario_field}");

        let misapplied = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8,"period":4}}"#,
        )
        .unwrap_err();
        assert!(misapplied.contains("`period` does not apply"), "{misapplied}");

        let both = JobSpec::parse(
            r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8},"workload":{"benchmark":"m88k"}}"#,
        )
        .unwrap_err();
        assert!(both.contains("exactly one of"), "{both}");

        let trailing = JobSpec::parse(&format!("{} junk", tiny_spec())).unwrap_err();
        assert!(trailing.contains("trailing"), "{trailing}");
    }

    #[test]
    fn job_spec_rejects_out_of_range_parameters_instead_of_panicking() {
        for (spec, needle) in [
            (r#"{"scenario":{"kind":"stride","pcs":1,"records_per_pc":8,"stride":0}}"#, "nonzero"),
            (
                r#"{"scenario":{"kind":"markov","pcs":1,"records_per_pc":8,"order":9,"alphabet":4}}"#,
                "order",
            ),
            (
                r#"{"scenario":{"kind":"markov","pcs":1,"records_per_pc":8,"order":8,"alphabet":64}}"#,
                "alphabet^order",
            ),
            (r#"{"scenario":{"kind":"chase","pcs":1,"records_per_pc":8,"heap":1}}"#, "heap"),
            (r#"{"scenario":{"kind":"periodic","pcs":0,"records_per_pc":8,"period":4}}"#, "pcs"),
            (r#"{"workload":{"benchmark":"m88k","scale_div":0}}"#, "scale_div"),
            (r#"{"workload":{"benchmark":"nope"}}"#, "unknown benchmark"),
            (
                r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8},"bank":["zz"]}"#,
                "unknown predictor",
            ),
        ] {
            let err = JobSpec::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec {spec}: {err}");
        }
    }

    #[test]
    fn bank_config_resolves_paper_and_extended_orders() {
        for name in ["l", "s2", "fcm1", "fcm3", "fcm8"] {
            let config = bank_config(name).expect(name);
            assert_eq!(config.name(), name);
        }
        assert!(bank_config("fcm0").is_none());
        assert!(bank_config("fcm9").is_none());
        assert!(bank_config("hybrid?").is_none());
    }

    #[test]
    fn canonical_keys_separate_every_byte_moving_option() {
        let base = JobSpec::parse(tiny_spec()).unwrap();
        let mut other_bank = base.clone();
        other_bank.bank = vec!["l".to_owned()];
        let mut sampled = base.clone();
        sampled.sample = true;
        let mut capped = base.clone();
        capped.record_cap = Some(16);
        let keys = [&base, &other_bank, &sampled, &capped].map(|s| s.canonical_key());
        for (i, key) in keys.iter().enumerate() {
            for later in &keys[i + 1..] {
                assert_ne!(key, later);
            }
        }
    }

    #[test]
    fn run_job_is_deterministic_across_engines() {
        let spec = JobSpec::parse(tiny_spec()).unwrap();
        let a = run_job(&spec, &ReplayEngine::sequential(), None).expect("runs");
        let b = run_job(&spec, &ReplayEngine::new().with_workers(2).with_shards(3), None)
            .expect("runs");
        assert_eq!(a, b, "payload must be byte-identical at any engine setting");
        assert!(a.starts_with("job syn-stride|"), "{a}");
        assert!(a.contains("replayed 64 records\n"), "{a}");
    }

    #[test]
    fn frames_parse_leniently() {
        let frame = Frame::parse(&result_frame(Some(7), "miss", "line1\nline2")).expect("parses");
        assert_eq!(frame.frame, "result");
        assert_eq!(frame.id, Some(7));
        assert_eq!(frame.cache.as_deref(), Some("miss"));
        assert_eq!(frame.payload.as_deref(), Some("line1\nline2"));

        // Unknown fields are skipped, null ids read as None.
        let future =
            Frame::parse(r#"{"frame":"accepted","id":null,"key":"k","novel":[1,{"a":2}]}"#)
                .expect("parses");
        assert_eq!(future.id, None);
        assert_eq!(future.key.as_deref(), Some("k"));

        assert!(Frame::parse("{\"id\":1}").unwrap_err().contains("missing `frame`"));
        assert!(Frame::parse("nonsense").is_err());
    }

    #[test]
    fn requests_parse_strictly() {
        assert!(matches!(parse_request("{\"op\":\"ping\"}"), Ok(Request::Ping)));
        assert!(matches!(parse_request("{\"op\":\"stats\"}"), Ok(Request::Stats)));
        let err = parse_request("{\"op\":\"submit\"}").unwrap_err();
        assert!(err.contains("requires a `job`"), "{err}");
        let err = parse_request("{\"op\":\"warp\"}").unwrap_err();
        assert!(err.contains("unknown op `warp`"), "{err}");
        let err = parse_request("{\"op\":\"ping\",\"extra\":1}").unwrap_err();
        assert!(err.contains("unknown request field `extra`"), "{err}");
    }
}
