//! Workload characterization: Table 2 (benchmark sizes), Table 3
//! (instruction categories), Tables 4–5 (static counts and dynamic
//! percentages of predicted instructions by type).

use crate::context::TraceStore;
use crate::table_fmt::{pct, TextTable};
use dvp_trace::{InstrCategory, TraceSummary};
use dvp_workloads::{Benchmark, BuildError};

/// One benchmark's Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Input name.
    pub input: String,
    /// Total dynamic instructions retired.
    pub retired: u64,
    /// Predicted (register-writing) dynamic instructions.
    pub predicted: u64,
}

/// Table 2: benchmark characteristics.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per benchmark.
    pub rows: Vec<Table2Row>,
}

/// Runs Table 2.
///
/// # Errors
///
/// Propagates workload build/run errors.
pub fn table2(store: &mut TraceStore) -> Result<Table2, BuildError> {
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let predicted = store.predicted(benchmark)?;
        let retired = store.retired(benchmark)?;
        rows.push(Table2Row {
            benchmark,
            input: store.workload(benchmark).input_name().to_owned(),
            retired,
            predicted,
        });
    }
    Ok(Table2 { rows })
}

impl Table2 {
    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Benchmark",
            "SPEC analog",
            "Input",
            "Dynamic Instr.",
            "Predicted",
            "Predicted %",
        ]);
        for row in &self.rows {
            table.row(vec![
                row.benchmark.name().to_owned(),
                row.benchmark.spec_analog().to_owned(),
                row.input.clone(),
                row.retired.to_string(),
                row.predicted.to_string(),
                pct(row.predicted as f64 / row.retired as f64),
            ]);
        }
        format!(
            "Table 2: benchmark characteristics (paper: predicted fraction 62%-84%)\n{}",
            table.render()
        )
    }
}

/// Table 3: the instruction categories (definitional — included so the
/// report is self-contained).
#[must_use]
pub fn table3() -> String {
    let mut table = TextTable::new(vec!["Instruction Types", "Code"]);
    let desc: [(&str, InstrCategory); 8] = [
        ("Addition, Subtraction", InstrCategory::AddSub),
        ("Loads", InstrCategory::Loads),
        ("And, Or, Xor, Nor", InstrCategory::Logic),
        ("Shifts", InstrCategory::Shift),
        ("Compare and Set", InstrCategory::Set),
        ("Multiply and Divide", InstrCategory::MultDiv),
        ("Load immediate (upper)", InstrCategory::Lui),
        ("Jump-and-link, Other", InstrCategory::Other),
    ];
    for (text, cat) in desc {
        table.row(vec![text.to_owned(), cat.code().to_owned()]);
    }
    format!("Table 3: instruction categories\n{}", table.render())
}

/// Tables 4 and 5: per-benchmark static counts and dynamic percentages of
/// predicted instructions by category.
#[derive(Debug, Clone)]
pub struct Table45 {
    /// Per benchmark, the trace summary it was computed from.
    pub summaries: Vec<(Benchmark, TraceSummary)>,
}

/// Runs Tables 4–5.
///
/// # Errors
///
/// Propagates workload build/run errors.
pub fn table45(store: &mut TraceStore) -> Result<Table45, BuildError> {
    let mut summaries = Vec::new();
    for benchmark in Benchmark::ALL {
        let summary: TraceSummary = store.trace(benchmark)?.iter().copied().collect();
        summaries.push((benchmark, summary));
    }
    Ok(Table45 { summaries })
}

impl Table45 {
    /// Renders Table 4 (static counts).
    #[must_use]
    pub fn render_static(&self) -> String {
        let mut header = vec!["Type".to_owned()];
        header.extend(self.summaries.iter().map(|(b, _)| b.name().to_owned()));
        let mut table = TextTable::new(header);
        for cat in InstrCategory::ALL {
            let mut cells = vec![cat.code().to_owned()];
            cells.extend(self.summaries.iter().map(|(_, s)| s.static_count(cat).to_string()));
            table.row(cells);
        }
        format!("Table 4: predicted instructions - static count\n{}", table.render())
    }

    /// Renders Table 5 (dynamic percentages).
    #[must_use]
    pub fn render_dynamic(&self) -> String {
        let mut header = vec!["Type".to_owned()];
        header.extend(self.summaries.iter().map(|(b, _)| b.name().to_owned()));
        let mut table = TextTable::new(header);
        for cat in InstrCategory::ALL {
            let mut cells = vec![cat.code().to_owned()];
            cells.extend(self.summaries.iter().map(|(_, s)| pct(s.dynamic_fraction(cat))));
            table.row(cells);
        }
        format!(
            "Table 5: predicted instructions - dynamic %\n\
             (paper: AddSub 34-52%, Loads 20-49% dominate)\n{}",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store() -> TraceStore {
        TraceStore::with_scale_div(1000).with_record_cap(if cfg!(debug_assertions) {
            25_000
        } else {
            150_000
        }) // min scale 1 everywhere
    }

    #[test]
    fn table2_has_all_benchmarks_and_sane_fractions() {
        let mut store = small_store();
        let t = table2(&mut store).unwrap();
        assert_eq!(t.rows.len(), 7);
        for row in &t.rows {
            let f = row.predicted as f64 / row.retired as f64;
            assert!((0.5..1.0).contains(&f), "{}: {f}", row.benchmark);
        }
        assert!(t.render().contains("compress"));
    }

    #[test]
    fn table3_lists_all_categories() {
        let text = table3();
        for cat in InstrCategory::ALL {
            assert!(text.contains(cat.code()), "{}", cat.code());
        }
    }

    #[test]
    fn table45_percentages_sum_to_100() {
        let mut store = small_store();
        let t = table45(&mut store).unwrap();
        for (benchmark, summary) in &t.summaries {
            let total: f64 = InstrCategory::ALL.iter().map(|&c| summary.dynamic_fraction(c)).sum();
            assert!((total - 1.0).abs() < 1e-9, "{benchmark}");
        }
        assert!(t.render_static().contains("Table 4"));
        assert!(t.render_dynamic().contains("Table 5"));
    }
}
