//! The synthetic scenario sweep: a (scenario × parameter × predictor)
//! matrix mapping where each predictor family wins and breaks.
//!
//! The paper's experiments probe seven fixed workloads; this extension
//! probes *behaviour classes* directly. [`default_grid`] enumerates a
//! parameter grid over every [`ScenarioKind`] (pure and jittered strides,
//! cycle lengths, Markov orders, chase arenas, alphabet sizes, a blend),
//! [`run`] replays all of them under a predictor bank on the parallel
//! engine, and each row is scored against the generator's *analytic*
//! expectation ([`Scenario::expected`]) — an order-k Markov chain must
//! saturate `fcm{k}`, a pure stride must saturate `s2`, uniform noise must
//! defeat everyone. A predictor regression therefore surfaces as a `met:
//! no` cell (and a nonzero `repro sweep` exit code), not just a golden
//! diff.
//!
//! Scenario traces go through the shared [`TraceStore`] path: generated
//! once per process, persisted in the fingerprint-keyed container cache
//! with `--trace-dir`, and replayed with bit-identical results at any
//! worker/shard count.
//!
//! # Examples
//!
//! ```
//! use dvp_core::PredictorConfig;
//! use dvp_engine::ReplayEngine;
//! use dvp_experiments::{sweep, TraceStore};
//! use dvp_workloads::synthetic::{Scenario, ScenarioKind};
//!
//! let grid = [Scenario::new(ScenarioKind::Stride { stride: 3, jitter_pct: 0 }, 4, 512, 1)];
//! let mut store = TraceStore::new();
//! let results =
//!     sweep::run(&mut store, &ReplayEngine::sequential(), &grid, &PredictorConfig::paper_bank());
//! assert!(results.all_met(), "a pure stride must saturate s2:\n{}", results.render());
//! ```

use crate::context::TraceStore;
use crate::table_fmt::{pct, TextTable};
use dvp_core::PredictorConfig;
use dvp_engine::ReplayEngine;
use dvp_workloads::synthetic::{Expectation, Scenario, ScenarioKind};

/// One scenario's replay outcome: per-configuration accuracy against the
/// generator's analytic expectation.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The scenario that produced this row.
    pub scenario: Scenario,
    /// Records actually replayed (after any store record cap).
    pub records: u64,
    /// `(configuration name, overall accuracy)` in bank order.
    pub accuracy: Vec<(String, f64)>,
    /// The analytic expectation the accuracies were checked against.
    pub expected: Expectation,
    /// Sampled-replay check (`Some` only under [`run_sampled`]): the
    /// largest absolute sampled-vs-full accuracy error across the bank,
    /// in percentage points, using the functionally-warmed estimator
    /// (exact state, representative windows tallied).
    pub sampled_err_pp: Option<f64>,
    /// Whether every configuration satisfied the expectation (and, under
    /// [`run_sampled`], the sampling error stayed within
    /// [`crate::phases::ERROR_LIMIT_PP`]).
    pub met: bool,
}

/// Results of a full sweep, renderable as a table, CSV, or JSON.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Configuration names, in bank order (the table's accuracy columns).
    pub bank: Vec<String>,
    /// One row per scenario, in grid order.
    pub rows: Vec<SweepRow>,
}

/// The default scenario × parameter grid of `repro sweep`. `quick` shrinks
/// the per-PC record count (the floors in [`Scenario::expected`] adapt, so
/// every row is expected to stay `met` at either size).
#[must_use]
pub fn default_grid(quick: bool) -> Vec<Scenario> {
    let (pcs, rpp) = if quick { (16, 3072) } else { (32, 16384) };
    let kinds = [
        ScenarioKind::Constant,
        ScenarioKind::Stride { stride: 1, jitter_pct: 0 },
        ScenarioKind::Stride { stride: -7, jitter_pct: 0 },
        ScenarioKind::Stride { stride: 3, jitter_pct: 5 },
        ScenarioKind::Periodic { period: 4 },
        ScenarioKind::Periodic { period: 64 },
        ScenarioKind::Markov { order: 1, alphabet: 4 },
        ScenarioKind::Markov { order: 2, alphabet: 4 },
        ScenarioKind::Markov { order: 3, alphabet: 4 },
        ScenarioKind::Chase { heap: 64 },
        ScenarioKind::Chase { heap: 512 },
        ScenarioKind::Random { alphabet: 4 },
        ScenarioKind::Random { alphabet: 1 << 20 },
        ScenarioKind::Mixed,
    ];
    kinds
        .into_iter()
        .enumerate()
        .map(|(index, kind)| Scenario::new(kind, pcs, rpp, 0xD1CE_0000 + index as u64))
        .collect()
}

/// Replays every scenario of `grid` under every configuration of `bank`
/// (one `replay_matrix` call — the full matrix fans out as (trace, config,
/// shard) jobs) and scores each row against its analytic expectation.
/// Scenario traces are acquired through `store`, so a configured trace
/// directory serves warm runs without generating.
pub fn run(
    store: &mut TraceStore,
    engine: &ReplayEngine,
    grid: &[Scenario],
    bank: &[PredictorConfig],
) -> SweepResults {
    run_inner(store, engine, grid, bank, false)
}

/// As [`run`], additionally replaying every scenario *sampled* under its
/// SimPoint phase plan (default [`dvp_engine::PhaseOptions`]) and
/// recording the worst sampled-vs-full accuracy error per row — the
/// `repro sweep --sample` path. A row only counts as `met` if it meets
/// its analytic expectation **and** its error stays within
/// [`crate::phases::ERROR_LIMIT_PP`], so a sampling-bias regression
/// fails the sweep exactly like a predictor regression.
pub fn run_sampled(
    store: &mut TraceStore,
    engine: &ReplayEngine,
    grid: &[Scenario],
    bank: &[PredictorConfig],
) -> SweepResults {
    run_inner(store, engine, grid, bank, true)
}

fn run_inner(
    store: &mut TraceStore,
    engine: &ReplayEngine,
    grid: &[Scenario],
    bank: &[PredictorConfig],
    sample: bool,
) -> SweepResults {
    let traces = store.synthetic_traces(engine, grid);
    let matrix = engine.replay_matrix(&traces, bank);
    let rows = grid
        .iter()
        .zip(&traces)
        .zip(matrix)
        .map(|((scenario, trace), replays)| {
            let accuracy: Vec<(String, f64)> = replays
                .into_iter()
                .map(|r| {
                    let acc = r.accuracy();
                    (r.name, acc)
                })
                .collect();
            let sampled_err_pp = sample.then(|| {
                let plan = dvp_engine::phase_plan(trace, &dvp_engine::PhaseOptions::default());
                let sampled = engine.replay_sampled_warm(trace, bank, &plan);
                accuracy
                    .iter()
                    .zip(&sampled)
                    .map(|((_, full), sampled)| {
                        (full - sampled.weighted_accuracy(&plan, None)).abs() * 100.0
                    })
                    .fold(0.0, f64::max)
            });
            let expected = scenario.expected();
            let met = expected.met(&accuracy)
                && sampled_err_pp.is_none_or(|err| err <= crate::phases::ERROR_LIMIT_PP);
            SweepRow {
                scenario: *scenario,
                records: trace.len() as u64,
                accuracy,
                expected,
                sampled_err_pp,
                met,
            }
        })
        .collect();
    SweepResults { bank: bank.iter().map(|c| c.name().to_owned()).collect(), rows }
}

impl SweepResults {
    /// Whether every row satisfied its analytic expectation.
    #[must_use]
    pub fn all_met(&self) -> bool {
        self.rows.iter().all(|row| row.met)
    }

    /// Whether these results carry sampled-replay error columns (i.e.
    /// they came from [`run_sampled`]).
    #[must_use]
    pub fn sampled(&self) -> bool {
        self.rows.iter().any(|row| row.sampled_err_pp.is_some())
    }

    /// Renders the human-readable table (the `repro sweep` default).
    #[must_use]
    pub fn render(&self) -> String {
        let sampled = self.sampled();
        let mut header = vec!["Scenario".to_owned(), "Params".to_owned(), "Records".to_owned()];
        header.extend(self.bank.iter().cloned());
        if sampled {
            header.push("Err(pp)".to_owned());
        }
        header.push("Expect".to_owned());
        header.push("Met".to_owned());
        let mut table = TextTable::new(header);
        for row in &self.rows {
            let mut cells = vec![
                row.scenario.name().to_owned(),
                row.scenario.params(),
                row.records.to_string(),
            ];
            cells.extend(row.accuracy.iter().map(|(_, acc)| pct(*acc)));
            if sampled {
                cells.push(format!("{:.2}", row.sampled_err_pp.unwrap_or(0.0)));
            }
            cells.push(row.expected.describe());
            cells.push(if row.met { "yes" } else { "NO" }.to_owned());
            table.row(cells);
        }
        format!(
            "Synthetic scenario sweep: accuracy (%) vs analytic expectation\n\
             (each generator isolates one behaviour class; `Expect` is derived\n\
             from its parameters, and `Met` flags predictor regressions)\n{}",
            table.render()
        )
    }

    /// Renders machine-readable CSV (accuracies as raw fractions).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let sampled = self.sampled();
        let mut out = String::from("scenario,params,seed,records");
        for name in &self.bank {
            out.push(',');
            out.push_str(name);
        }
        if sampled {
            out.push_str(",sampled_err_pp");
        }
        out.push_str(",expect,met\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},\"{}\",{},{}",
                row.scenario.name(),
                row.scenario.params(),
                row.scenario.seed(),
                row.records
            ));
            for (_, acc) in &row.accuracy {
                out.push_str(&format!(",{acc:.6}"));
            }
            if sampled {
                out.push_str(&format!(",{:.6}", row.sampled_err_pp.unwrap_or(0.0)));
            }
            out.push_str(&format!(",\"{}\",{}\n", row.expected.describe(), row.met));
        }
        out
    }

    /// Renders machine-readable JSON (an array of row objects).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let accuracy = row
                .accuracy
                .iter()
                .map(|(name, acc)| format!("{}: {acc:.6}", json_str(name)))
                .collect::<Vec<_>>()
                .join(", ");
            let saturating = row
                .expected
                .saturating
                .iter()
                .map(|name| json_str(name))
                .collect::<Vec<_>>()
                .join(", ");
            let ceiling = row
                .expected
                .others_ceiling
                .map_or_else(|| "null".to_owned(), |c| format!("{c:.6}"));
            let err = row
                .sampled_err_pp
                .map_or_else(String::new, |e| format!("\"sampled_err_pp\": {e:.6}, "));
            out.push_str(&format!(
                "  {{\"scenario\": {}, \"params\": {}, \"seed\": {}, \"records\": {}, \
                 \"accuracy\": {{{accuracy}}}, {err}\"expected\": {{\"saturating\": [{saturating}], \
                 \"floor\": {:.6}, \"others_ceiling\": {ceiling}}}, \"met\": {}}}{}\n",
                json_str(row.scenario.name()),
                json_str(&row.scenario.params()),
                row.scenario.seed(),
                row.records,
                row.expected.floor,
                row.met,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push(']');
        out
    }
}

/// Minimal JSON string quoting (scenario names and params are plain ASCII,
/// but escape defensively).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Vec<Scenario> {
        vec![
            Scenario::new(ScenarioKind::Stride { stride: 2, jitter_pct: 0 }, 2, 600, 1),
            Scenario::new(ScenarioKind::Random { alphabet: 1 << 20 }, 2, 600, 2),
        ]
    }

    fn tiny_results() -> SweepResults {
        let mut store = TraceStore::new();
        run(&mut store, &ReplayEngine::sequential(), &tiny_grid(), &PredictorConfig::paper_bank())
    }

    #[test]
    fn tiny_sweep_meets_expectations_and_renders_everywhere() {
        let results = tiny_results();
        assert_eq!(results.rows.len(), 2);
        assert!(results.all_met(), "{}", results.render());
        let table = results.render();
        assert!(table.contains("stride") && table.contains("random"), "{table}");
        assert!(table.contains("yes"), "{table}");
        let csv = results.render_csv();
        assert_eq!(csv.lines().count(), 3, "{csv}");
        assert!(csv.starts_with("scenario,params,seed,records,l,s2,fcm1,fcm2,fcm3,expect,met"));
        let json = results.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"scenario\": \"stride\""), "{json}");
    }

    #[test]
    fn sweep_is_identical_at_any_worker_count() {
        let sequential = tiny_results();
        let mut store = TraceStore::new();
        let parallel = run(
            &mut store,
            &ReplayEngine::new().with_workers(4).with_shards(3),
            &tiny_grid(),
            &PredictorConfig::paper_bank(),
        );
        assert_eq!(sequential.render(), parallel.render());
        assert_eq!(sequential.render_json(), parallel.render_json());
    }

    #[test]
    fn default_grid_covers_every_kind_at_both_sizes() {
        for quick in [false, true] {
            let grid = default_grid(quick);
            let kinds: std::collections::HashSet<&str> = grid.iter().map(|s| s.name()).collect();
            assert_eq!(kinds.len(), 7, "all seven generator classes present");
            // Distinct seeds so scenarios never share a value stream.
            let seeds: std::collections::HashSet<u64> = grid.iter().map(|s| s.seed()).collect();
            assert_eq!(seeds.len(), grid.len());
        }
        assert!(default_grid(true)[0].records_per_pc() < default_grid(false)[0].records_per_pc());
    }

    #[test]
    fn sampled_sweep_adds_error_columns_and_plain_sweep_does_not() {
        let mut store = TraceStore::new();
        let results = run_sampled(
            &mut store,
            &ReplayEngine::new().with_workers(2),
            &tiny_grid(),
            &PredictorConfig::paper_bank(),
        );
        assert!(results.sampled());
        // Each tiny trace fits one window, so its plan replays the whole
        // trace and the sampled estimate is exact.
        for row in &results.rows {
            assert_eq!(row.sampled_err_pp, Some(0.0), "{row:?}");
            assert!(row.met, "{row:?}");
        }
        assert!(results.render().contains("Err(pp)"));
        assert!(results.render_csv().contains("sampled_err_pp"));
        assert!(results.render_json().contains("sampled_err_pp"));

        let plain = tiny_results();
        assert!(!plain.sampled());
        assert!(!plain.render().contains("Err(pp)"));
        assert!(!plain.render_csv().contains("sampled_err_pp"));
        assert!(!plain.render_json().contains("sampled_err_pp"));
    }

    #[test]
    fn json_escaping_is_defensive() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
