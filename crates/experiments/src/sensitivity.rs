//! Sensitivity studies on the gcc-like workload: Table 6 (input files),
//! Table 7 (compiler flags), and Figure 11 (FCM order sweep).

use crate::context::{TraceStore, REFERENCE_OPT};
use crate::table_fmt::{pct, TextTable};
use dvp_core::PredictorConfig;
use dvp_engine::{ReplayEngine, SharedTrace};
use dvp_lang::OptLevel;
use dvp_workloads::{Benchmark, BuildError, Workload, CC_INPUTS};

/// FCM order used by Tables 6 and 7 (the paper uses order 2).
pub const SENSITIVITY_ORDER: usize = 2;

/// Records Figure 11 considers (bounds the order-8 table memory).
pub const ORDER_SWEEP_CAP: usize = 2_000_000;

/// The single-config bank Tables 6 and 7 replay: one order-2 FCM.
fn sensitivity_bank() -> Vec<PredictorConfig> {
    PredictorConfig::fcm_orders([SENSITIVITY_ORDER])
}

/// Every variant workload trace the sensitivity studies consume — Table
/// 6's five `cc` inputs at the reference optimization level plus Table
/// 7's three optimization levels of the default input — deduplicated by
/// fingerprint. `repro trace export` pushes these through
/// [`TraceStore::variant_traces`] so a subsequent `repro all` against the
/// same cache directory performs zero value-trace simulation.
///
/// # Errors
///
/// Propagates workload construction errors.
pub fn variant_jobs(store: &TraceStore) -> Result<Vec<(Workload, OptLevel)>, BuildError> {
    let scale = store.workload(Benchmark::Cc).scale();
    let mut jobs: Vec<(Workload, OptLevel)> = Vec::new();
    for &(name, _, _) in &CC_INPUTS {
        jobs.push((Workload::cc_with_input(name)?.with_scale(scale), REFERENCE_OPT));
    }
    for &flags in &OptLevel::ALL {
        jobs.push((store.workload(Benchmark::Cc), flags));
    }
    let cap = store.record_cap();
    let mut seen = std::collections::HashSet::new();
    jobs.retain(|(workload, opt)| {
        seen.insert(crate::cache::TraceCache::fingerprint(workload, *opt, cap).digest())
    });
    Ok(jobs)
}

/// One row of Table 6: an input file, its prediction count, and the
/// order-2 FCM accuracy.
#[derive(Debug, Clone)]
pub struct Table6Row {
    /// Input file name.
    pub input: String,
    /// Number of predictions (trace records).
    pub predictions: u64,
    /// Order-2 FCM accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// Table 6: sensitivity of the gcc-like workload to its input file.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// One row per input.
    pub rows: Vec<Table6Row>,
}

/// Runs Table 6: the same `cc` program over its five input files. The
/// variant traces come through the store's cache tiers (cache misses
/// simulate in parallel, one job per input, and persist when a trace
/// directory is configured); the order-2 FCM replays then run as a 5×1
/// matrix of sharded jobs.
///
/// # Errors
///
/// Propagates workload build/run errors.
pub fn table6(store: &mut TraceStore, engine: &ReplayEngine) -> Result<Table6, BuildError> {
    let scale = store.workload(Benchmark::Cc).scale();
    let jobs: Vec<(Workload, OptLevel)> = CC_INPUTS
        .iter()
        .map(|&(name, _, _)| Ok((Workload::cc_with_input(name)?.with_scale(scale), REFERENCE_OPT)))
        .collect::<Result<_, BuildError>>()?;
    let variants = store.variant_traces(engine, jobs)?;
    let traces: Vec<SharedTrace> = variants.iter().map(|(trace, _)| trace.clone()).collect();
    let rows = CC_INPUTS
        .iter()
        .zip(&variants)
        .zip(engine.replay_matrix(&traces, &sensitivity_bank()))
        .map(|((&(name, _, _), &(_, predictions)), replays)| Table6Row {
            input: name.to_owned(),
            predictions,
            accuracy: replays[0].accuracy(),
        })
        .collect();
    Ok(Table6 { rows })
}

impl Table6 {
    /// Spread between best and worst accuracy (paper: ~2.6 points).
    #[must_use]
    pub fn accuracy_spread(&self) -> f64 {
        let max = self.rows.iter().map(|r| r.accuracy).fold(0.0, f64::max);
        let min = self.rows.iter().map(|r| r.accuracy).fold(1.0, f64::min);
        max - min
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["File", "Predictions", "Correct %"]);
        for row in &self.rows {
            table.row(vec![row.input.clone(), row.predictions.to_string(), pct(row.accuracy)]);
        }
        format!(
            "Table 6: sensitivity of cc (gcc analog) to different input files\n\
             (order-{SENSITIVITY_ORDER} fcm; paper: 76.0%-78.6%, small variation)\n{}",
            table.render()
        )
    }
}

/// One row of Table 7: a compiler configuration and its accuracy.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Optimization level ("flags").
    pub flags: OptLevel,
    /// Number of predictions.
    pub predictions: u64,
    /// Order-2 FCM accuracy.
    pub accuracy: f64,
}

/// Table 7: sensitivity of the gcc-like workload to compiler flags.
#[derive(Debug, Clone)]
pub struct Table7 {
    /// One row per optimization level.
    pub rows: Vec<Table7Row>,
}

/// Runs Table 7: the default `cc` input compiled at `O0`, `O1` and `O2`.
/// Each optimization level's trace comes through the store's cache tiers
/// (misses compile-and-trace in parallel and persist when a trace
/// directory is configured), then the order-2 FCM replays run as a 3×1
/// matrix.
///
/// # Errors
///
/// Propagates workload build/run errors.
pub fn table7(store: &mut TraceStore, engine: &ReplayEngine) -> Result<Table7, BuildError> {
    let workload = store.workload(Benchmark::Cc);
    let jobs: Vec<(Workload, OptLevel)> =
        OptLevel::ALL.iter().map(|&flags| (workload.clone(), flags)).collect();
    let variants = store.variant_traces(engine, jobs)?;
    let traces: Vec<SharedTrace> = variants.iter().map(|(trace, _)| trace.clone()).collect();
    let rows = OptLevel::ALL
        .iter()
        .zip(&variants)
        .zip(engine.replay_matrix(&traces, &sensitivity_bank()))
        .map(|((&flags, &(_, predictions)), replays)| Table7Row {
            flags,
            predictions,
            accuracy: replays[0].accuracy(),
        })
        .collect();
    Ok(Table7 { rows })
}

impl Table7 {
    /// Spread between best and worst accuracy (paper: ~3.3 points).
    #[must_use]
    pub fn accuracy_spread(&self) -> f64 {
        let max = self.rows.iter().map(|r| r.accuracy).fold(0.0, f64::max);
        let min = self.rows.iter().map(|r| r.accuracy).fold(1.0, f64::min);
        max - min
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Flags", "Predictions", "Correct %"]);
        for row in &self.rows {
            table.row(vec![
                format!("-{}", row.flags),
                row.predictions.to_string(),
                pct(row.accuracy),
            ]);
        }
        format!(
            "Table 7: sensitivity of cc (gcc analog) to compiler flags (input gcc.i)\n\
             (order-{SENSITIVITY_ORDER} fcm; paper: 75.3%-78.6%, small variation)\n{}",
            table.render()
        )
    }
}

/// Figure 11: order-2 accuracy per FCM order 1..=8 on the gcc-like trace.
#[derive(Debug, Clone)]
pub struct Figure11 {
    /// `(order, accuracy)` pairs.
    pub points: Vec<(usize, f64)>,
    /// Number of trace records considered.
    pub records: usize,
}

/// Runs Figure 11: FCM order sweep on the default `cc` trace, as a bank of
/// eight FCM configurations replayed concurrently over one shared trace.
/// The trace is capped at [`ORDER_SWEEP_CAP`] records so the order-8 exact
/// tables stay within memory.
///
/// # Errors
///
/// Propagates workload build/run errors.
pub fn figure11(store: &mut TraceStore, engine: &ReplayEngine) -> Result<Figure11, BuildError> {
    let capped = store.trace(Benchmark::Cc)?.truncated(ORDER_SWEEP_CAP);
    let replays = engine.replay(&capped, &PredictorConfig::fcm_orders(1..=8));
    let points = (1..=8).zip(replays).map(|(order, replay)| (order, replay.accuracy())).collect();
    Ok(Figure11 { points, records: capped.len() })
}

impl Figure11 {
    /// Renders the figure data.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Order", "Accuracy %"]);
        for &(order, accuracy) in &self.points {
            table.row(vec![order.to_string(), pct(accuracy)]);
        }
        format!(
            "Figure 11: sensitivity of cc to the fcm order ({} records)\n\
             (paper: rises ~71%..83%, returns diminish with each added order)\n{}",
            self.records,
            table.render()
        )
    }

    /// Whether gains diminish: each added order's improvement is no larger
    /// than ~the previous one's (with a small tolerance for noise).
    #[must_use]
    pub fn gains_diminish(&self) -> bool {
        let gains: Vec<f64> = self.points.windows(2).map(|w| w[1].1 - w[0].1).collect();
        gains.windows(2).all(|g| g[1] <= g[0] + 0.02)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_small_variation_across_inputs() {
        let mut store = TraceStore::with_scale_div(1000)
            .with_record_cap(if cfg!(debug_assertions) { 25_000 } else { 150_000 });
        let t = table6(&mut store, &ReplayEngine::new()).unwrap();
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            assert!(row.accuracy > 0.4, "{}: {}", row.input, row.accuracy);
        }
        assert!(t.accuracy_spread() < 0.12, "spread {}", t.accuracy_spread());
        assert!(t.render().contains("gcc.i"));
    }

    #[test]
    fn table7_small_variation_across_flags() {
        let mut store = TraceStore::with_scale_div(1000)
            .with_record_cap(if cfg!(debug_assertions) { 25_000 } else { 150_000 });
        let t = table7(&mut store, &ReplayEngine::new()).unwrap();
        assert_eq!(t.rows.len(), 3);
        assert!(t.accuracy_spread() < 0.15, "spread {}", t.accuracy_spread());
        assert!(t.render().contains("-O1"));
    }

    #[test]
    fn figure11_best_order_beats_order_one() {
        let mut store = TraceStore::with_scale_div(1000)
            .with_record_cap(if cfg!(debug_assertions) { 25_000 } else { 150_000 });
        let f = figure11(&mut store, &ReplayEngine::new()).unwrap();
        assert_eq!(f.points.len(), 8);
        // On short traces high orders pay their longer learning time, so
        // the curve can roll over; but some order above 1 must win
        // (the paper's full-length traces rise monotonically to order 8).
        let best = f.points.iter().map(|&(_, a)| a).fold(0.0, f64::max);
        assert!(best > f.points[0].1, "best {best} vs order-1 {}", f.points[0].1);
        assert!(f.render().contains("Order"));
    }
}
