//! The result cache's isolation guarantee, hammered property-style: *no*
//! corruption of an on-disk entry may ever surface as a served payload.
//! Every flipped byte, truncation, or appended tail must be detected by
//! the container's framing (magic, version, lengths, FNV-1a checksum,
//! key echo) and answered with reject-and-recompute — never bad bytes.

use dvp_experiments::result_cache::{decode_entry, encode_entry, fnv1a64, ResultCache};
use proptest::prelude::*;
use std::path::PathBuf;

/// The engine epoch every entry in this suite is written and read under
/// (corruption detection must be epoch-independent).
const EPOCH: u64 = 0x00c0_ffee_0000_0001;

/// A unique, self-cleaning temp directory under the system temp root.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("dvp-result-corrupt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const KEY: &str = "syn-stride|n2,d5,j0|syn|seed3|scale32|bank=l+s2|sample=0";
const PAYLOAD: &str = "replayed 64 records\nConfig  Predicted\nl  64\ns2  64\n";

/// Exhaustive single-byte-flip sweep (not sampled: every offset, a
/// deterministic XOR pattern) — the checksum must catch all of them.
#[test]
fn every_single_byte_flip_is_rejected() {
    let good = encode_entry(KEY, PAYLOAD, EPOCH);
    assert!(decode_entry(KEY, EPOCH, &good).is_ok(), "the untouched entry decodes");
    for offset in 0..good.len() {
        let mut bad = good.clone();
        bad[offset] ^= 0x5a;
        assert!(
            decode_entry(KEY, EPOCH, &bad).is_err(),
            "flipping byte {offset} of {} went undetected",
            good.len()
        );
    }
}

/// The reject reasons carry the byte offset and expected-vs-found values
/// (the v1 trace-reader idiom): pin the exact wording per failure class.
#[test]
fn reject_reasons_carry_offsets_and_expected_vs_found() {
    let good = encode_entry(KEY, PAYLOAD, EPOCH);

    let err = decode_entry(KEY, EPOCH, &good[..10]).unwrap_err();
    assert_eq!(err, "entry too short: 10 bytes on disk, at least 29 required");

    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    let err = decode_entry(KEY, EPOCH, &bad_magic).unwrap_err();
    assert_eq!(err, "bad magic at offset 0: expected [44, 56, 50, 52], found [58, 56, 50, 52]");

    // A version byte of 1 is a *structurally plausible* legacy entry, and
    // the reason says why it is still refused.
    let mut v1 = good.clone();
    v1[4] = 1;
    let err = decode_entry(KEY, EPOCH, &v1).unwrap_err();
    assert_eq!(
        err,
        "unsupported version at offset 4: expected 2, found 1 \
         (pre-epoch v1 entries are never trusted)"
    );
    let mut v9 = good.clone();
    v9[4] = 9;
    let err = decode_entry(KEY, EPOCH, &v9).unwrap_err();
    assert_eq!(err, "unsupported version at offset 4: expected 2, found 9");

    let mut truncated = good.clone();
    truncated.truncate(good.len() - 3);
    let err = decode_entry(KEY, EPOCH, &truncated).unwrap_err();
    assert_eq!(
        err,
        format!(
            "length mismatch: {} bytes on disk, {} declared \
             (key_len {} at offset 13, payload_len {} at offset 17)",
            good.len() - 3,
            good.len(),
            KEY.len(),
            PAYLOAD.len()
        )
    );

    let mut flipped = good.clone();
    let payload_mid = 21 + KEY.len() + PAYLOAD.len() / 2;
    flipped[payload_mid] ^= 0x01;
    let err = decode_entry(KEY, EPOCH, &flipped).unwrap_err();
    let body_end = good.len() - 8;
    assert!(err.starts_with(&format!("checksum mismatch at offset {body_end}: stored ")), "{err}");
    let stored = fnv1a64(&good[..body_end]);
    assert!(err.contains(&format!("stored {stored:016x}")), "{err}");

    // Staleness is judged only after the checksum passes, so an intact
    // entry from another build reports as stale — never as corrupt.
    let err = decode_entry(KEY, EPOCH + 1, &good).unwrap_err();
    assert_eq!(
        err,
        format!("stale engine epoch at offset 5: entry {EPOCH:016x}, current {:016x}", EPOCH + 1)
    );

    let err = decode_entry("other|key", EPOCH, &encode_entry(KEY, PAYLOAD, EPOCH)).unwrap_err();
    assert_eq!(
        err,
        format!("key mismatch at offset 21: entry holds `{KEY}`, expected `other|key`")
    );
}

/// Every proper prefix is rejected: torn writes can never serve.
#[test]
fn every_truncation_is_rejected() {
    let good = encode_entry(KEY, PAYLOAD, EPOCH);
    for len in 0..good.len() {
        assert!(
            decode_entry(KEY, EPOCH, &good[..len]).is_err(),
            "truncating to {len} of {} went undetected",
            good.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random multi-byte corruption of random payloads is rejected, and
    /// recomputing (re-inserting) over the damaged file fully recovers:
    /// the rewritten entry decodes to the new payload.
    #[test]
    fn random_corruption_is_rejected_and_recomputable(
        seed in any::<u64>(),
        payload_len in 1usize..512,
        flips in 1usize..8,
    ) {
        // A seeded xorshift keeps the generated payload and the damage
        // deterministic per case.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let payload: String =
            (0..payload_len).map(|_| char::from(b' ' + (next() % 95) as u8)).collect();
        let good = encode_entry(KEY, &payload, EPOCH);
        prop_assert_eq!(decode_entry(KEY, EPOCH, &good).unwrap(), payload.clone());

        let mut bad = good.clone();
        for _ in 0..flips {
            let offset = (next() % bad.len() as u64) as usize;
            let mask = (next() % 255) as u8 + 1; // never a zero mask
            bad[offset] ^= mask;
        }
        if bad != good {
            prop_assert!(decode_entry(KEY, EPOCH, &bad).is_err());
        }

        // Trailing junk after a valid entry is also rejected (the header
        // lengths must account for every byte in the file).
        let mut tail = good.clone();
        tail.extend_from_slice(&next().to_le_bytes()[..1 + (next() % 7) as usize]);
        prop_assert!(decode_entry(KEY, EPOCH, &tail).is_err());
    }
}

/// End-to-end reject-and-recompute through the cache itself: damage the
/// on-disk entry every way at once, watch a fresh cache miss (never serve
/// the damage), then recompute and serve the fresh payload.
#[test]
fn damaged_disk_entries_miss_then_recompute() {
    let dir = TempDir::new("recompute");
    let mut writer = ResultCache::new(4).with_dir(&dir.0);
    writer.insert(KEY, PAYLOAD);
    let path = writer.path_for(KEY).expect("disk tier configured");

    for damage in ["flip", "truncate", "append"] {
        let mut bytes = std::fs::read(&path).expect("entry written");
        match damage {
            "flip" => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
            }
            "truncate" => bytes.truncate(bytes.len() - 3),
            _ => bytes.extend_from_slice(b"junk"),
        }
        std::fs::write(&path, &bytes).expect("plant damage");

        // A fresh cache (cold memory tier) must reject the damaged entry…
        let mut reader = ResultCache::new(4).with_dir(&dir.0);
        assert_eq!(reader.get(KEY), None, "{damage}: damaged entry served");
        assert_eq!(reader.stats().invalid, 1, "{damage}: rejection not counted");

        // …and recomputing through it must fully recover the key.
        reader.insert(KEY, PAYLOAD);
        assert_eq!(reader.get(KEY).as_deref(), Some(PAYLOAD), "{damage}: recompute lost");

        let mut again = ResultCache::new(4).with_dir(&dir.0);
        assert_eq!(again.get(KEY).as_deref(), Some(PAYLOAD), "{damage}: rewrite not durable");
    }
}
