//! CLI contract of the `repro` binary: exit codes and stderr behaviour
//! for good and bad invocations. Every failing case here must fail *fast*
//! (before any workload is simulated), so the suite stays cheap.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro spawns")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn good_target_exits_zero_with_output() {
    // table1 is purely analytic: no workloads, fast even in test builds.
    let out = repro(&["table1"]);
    assert!(out.status.success(), "table1 must succeed: {}", stderr_of(&out));
    assert!(!out.stdout.is_empty(), "a table must land on stdout");
}

#[test]
fn unknown_target_fails_and_lists_valid_targets_on_stderr() {
    let out = repro(&["table99"]);
    assert!(!out.status.success(), "unknown targets must exit nonzero");
    assert!(out.stdout.is_empty(), "nothing may land on stdout");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("unknown target `table99`"), "{stderr}");
    for target in ["sweep", "trace", "all", "table1", "figure11", "ext-speedup"] {
        assert!(stderr.contains(target), "valid-target list must include {target}: {stderr}");
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    let stderr = stderr_of(&out);
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("sweep"), "usage must advertise the sweep subcommand: {stderr}");
}

#[test]
fn bad_flag_values_fail_fast() {
    for args in [&["--workers", "0", "table1"][..], &["--workers", "many", "table1"][..]] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?}");
        assert!(stderr_of(&out).contains("positive integer"), "{args:?}");
    }
}

#[test]
fn trace_tool_requires_a_trace_dir() {
    let out = repro(&["trace", "stats"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--trace-dir"), "{}", stderr_of(&out));
}

#[test]
fn sweep_rejects_unknown_formats_and_arguments() {
    let out = repro(&["sweep", "--format", "xml"]);
    assert!(!out.status.success(), "an unknown format must exit nonzero");
    assert!(out.stdout.is_empty(), "nothing may land on stdout");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("unknown sweep format `xml`"), "{stderr}");
    for format in ["table", "csv", "json"] {
        assert!(stderr.contains(format), "valid-format list must include {format}: {stderr}");
    }

    let out = repro(&["sweep", "bogus"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("unknown sweep argument `bogus`"), "{}", stderr_of(&out));

    let out = repro(&["sweep", "--format"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--format expects"), "{}", stderr_of(&out));
}

#[test]
fn phases_rejects_unknown_benchmarks_and_lists_valid_names() {
    let out = repro(&["phases", "nosuchbench"]);
    assert!(!out.status.success(), "an unknown benchmark must exit nonzero");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("unknown phases benchmark `nosuchbench`"), "{stderr}");
    for name in ["compress", "m88k", "xlisp"] {
        assert!(stderr.contains(name), "valid-benchmark list must include {name}: {stderr}");
    }
}
