//! CLI contract of the `repro` binary: exit codes and stderr behaviour
//! for good and bad invocations. Every failing case here must fail *fast*
//! (before any workload is simulated), so the suite stays cheap.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro spawns")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn good_target_exits_zero_with_output() {
    // table1 is purely analytic: no workloads, fast even in test builds.
    let out = repro(&["table1"]);
    assert!(out.status.success(), "table1 must succeed: {}", stderr_of(&out));
    assert!(!out.stdout.is_empty(), "a table must land on stdout");
}

#[test]
fn unknown_target_fails_and_lists_valid_targets_on_stderr() {
    let out = repro(&["table99"]);
    assert!(!out.status.success(), "unknown targets must exit nonzero");
    assert!(out.stdout.is_empty(), "nothing may land on stdout");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("unknown target `table99`"), "{stderr}");
    for target in ["sweep", "trace", "all", "table1", "figure11", "ext-speedup"] {
        assert!(stderr.contains(target), "valid-target list must include {target}: {stderr}");
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = repro(&[]);
    assert!(!out.status.success());
    let stderr = stderr_of(&out);
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("sweep"), "usage must advertise the sweep subcommand: {stderr}");
}

#[test]
fn bad_flag_values_fail_fast() {
    for args in [&["--workers", "0", "table1"][..], &["--workers", "many", "table1"][..]] {
        let out = repro(args);
        assert!(!out.status.success(), "{args:?}");
        assert!(stderr_of(&out).contains("positive integer"), "{args:?}");
    }
}

#[test]
fn trace_tool_requires_a_trace_dir() {
    let out = repro(&["trace", "stats"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--trace-dir"), "{}", stderr_of(&out));
}

#[test]
fn sweep_rejects_unknown_formats_and_arguments() {
    let out = repro(&["sweep", "--format", "xml"]);
    assert!(!out.status.success(), "an unknown format must exit nonzero");
    assert!(out.stdout.is_empty(), "nothing may land on stdout");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("unknown sweep format `xml`"), "{stderr}");
    for format in ["table", "csv", "json"] {
        assert!(stderr.contains(format), "valid-format list must include {format}: {stderr}");
    }

    let out = repro(&["sweep", "bogus"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("unknown sweep argument `bogus`"), "{}", stderr_of(&out));

    let out = repro(&["sweep", "--format"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("--format expects"), "{}", stderr_of(&out));
}

#[test]
fn phases_rejects_unknown_benchmarks_and_lists_valid_names() {
    let out = repro(&["phases", "nosuchbench"]);
    assert!(!out.status.success(), "an unknown benchmark must exit nonzero");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("unknown phases benchmark `nosuchbench`"), "{stderr}");
    for name in ["compress", "m88k", "xlisp"] {
        assert!(stderr.contains(name), "valid-benchmark list must include {name}: {stderr}");
    }
}

#[test]
fn serve_rejects_bad_listen_addresses_fast() {
    let out = repro(&["serve", "--listen", "not-an-address"]);
    assert!(!out.status.success(), "a bad --listen must exit nonzero");
    assert!(out.stdout.is_empty(), "nothing may land on stdout");
    assert!(
        stderr_of(&out).contains("invalid --listen address `not-an-address`"),
        "{}",
        stderr_of(&out)
    );

    let out = repro(&["serve", "--bogus"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("unknown serve flag `--bogus`"), "{}", stderr_of(&out));
}

#[test]
fn serve_reports_a_busy_port_as_a_bind_failure() {
    // Hold the port ourselves, then ask the daemon to bind it.
    let holder = std::net::TcpListener::bind("127.0.0.1:0").expect("bind a port to occupy");
    let addr = holder.local_addr().expect("addr").to_string();
    let out = repro(&["serve", "--listen", &addr]);
    assert!(!out.status.success(), "a busy port must exit nonzero");
    assert!(stderr_of(&out).contains(&format!("cannot bind {addr}")), "{}", stderr_of(&out));
}

#[test]
fn client_reports_a_dead_server_as_a_structured_error() {
    // Bind an ephemeral port and drop it immediately: nothing listens
    // there, so the connection is refused (no panic, no hang).
    let addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let out = repro(&["client", &addr, "--ping"]);
    assert!(!out.status.success(), "a dead server must exit nonzero");
    assert!(stderr_of(&out).contains(&format!("cannot connect to {addr}")), "{}", stderr_of(&out));

    let out = repro(&["client"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("expects a server address"), "{}", stderr_of(&out));
}

#[test]
fn client_validates_job_specs_locally_before_connecting() {
    // The address is never dialed: the spec fails first. Prove it by
    // pointing at a port nothing listens on and checking the error is
    // about the spec, not the connection.
    let out = repro(&["client", "127.0.0.1:1", "--job", r#"{"bogus":true}"#]);
    assert!(!out.status.success());
    let stderr = stderr_of(&out);
    assert!(stderr.contains("invalid job spec: unknown job field `bogus`"), "{stderr}");
    assert!(!stderr.contains("cannot connect"), "spec validation must precede dialing: {stderr}");
}

#[test]
fn job_rejects_unknown_fields_and_missing_specs() {
    let out = repro(&[
        "job",
        "--json",
        r#"{"scenario":{"kind":"constant","pcs":1,"records_per_pc":8},"warp":9}"#,
    ]);
    assert!(!out.status.success(), "an unknown job field must exit nonzero");
    assert!(out.stdout.is_empty(), "nothing may land on stdout");
    assert!(
        stderr_of(&out).contains("invalid job spec: unknown job field `warp`"),
        "{}",
        stderr_of(&out)
    );

    let out = repro(&["job"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("repro job expects a spec"), "{}", stderr_of(&out));

    let out = repro(&["job", "--spec", "/nonexistent/spec.json"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("cannot read job spec"), "{}", stderr_of(&out));
}

#[test]
fn serve_router_flags_validate_fast() {
    let out = repro(&["serve", "--router", "127.0.0.1:1", "--worker"]);
    assert!(!out.status.success(), "conflicting roles must exit nonzero");
    assert!(
        stderr_of(&out).contains("--router and --worker are mutually exclusive"),
        "{}",
        stderr_of(&out)
    );

    // Worker-only flags are refused by name in router mode.
    let out = repro(&["serve", "--router", "127.0.0.1:1", "--queue", "4"]);
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("--queue is a worker flag and does not apply to --router mode"),
        "{}",
        stderr_of(&out)
    );

    let out = repro(&["serve", "--router", "not-an-address"]);
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("invalid --router backend `not-an-address` (expected host:port)"),
        "{}",
        stderr_of(&out)
    );

    let out = repro(&["serve", "--retries", "3"]);
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("--retries applies only to --router mode"),
        "{}",
        stderr_of(&out)
    );
}

#[test]
fn cache_tool_validates_arguments_fast() {
    let out = repro(&["cache"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("repro cache expects a command"), "{}", stderr_of(&out));

    let out = repro(&["cache", "stats"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("repro cache requires --result-dir"), "{}", stderr_of(&out));

    let out = repro(&["cache", "purge", "--result-dir", "/nonexistent"]);
    assert!(!out.status.success());
    assert!(
        stderr_of(&out)
            .contains("repro cache purge requires --stale (only staleness-based purging"),
        "{}",
        stderr_of(&out)
    );

    let out = repro(&["cache", "stats", "--stale", "--result-dir", "/nonexistent"]);
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("--stale applies only to `repro cache purge`"),
        "{}",
        stderr_of(&out)
    );

    let out = repro(&["cache", "frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("unknown cache argument `frobnicate`"), "{}", stderr_of(&out));
}

/// The epoch bug, end to end at the binary level: a daemon under epoch
/// 1001 persists a result; a binary under epoch 2002 classifies that
/// entry stale (`repro cache stats`) and `purge --stale` removes exactly
/// it — the injection hook (`DVP_ENGINE_EPOCH`) is the same one CI uses.
#[test]
fn cache_tool_classifies_and_purges_across_an_epoch_flip() {
    use std::io::{BufRead, BufReader};

    let dir = std::env::temp_dir().join(format!("dvp-cli-epoch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_string_lossy().into_owned();

    // Epoch-1001 lifetime: compute one job and persist it.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_repro"))
        .env("DVP_ENGINE_EPOCH", "1001")
        .args(["serve", "--listen", "127.0.0.1:0", "--result-dir", &dir_arg])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let mut stdout = BufReader::new(daemon.stdout.take().expect("piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line.trim().strip_prefix("listening on ").expect("advertised address").to_owned();
    let job = r#"{"scenario":{"kind":"stride","pcs":2,"records_per_pc":32,"seed":4,"stride":2},"bank":["l"]}"#;
    let out = repro(&["client", &addr, "--job", job]);
    assert!(out.status.success(), "cold job: {}", stderr_of(&out));
    let bye = repro(&["client", &addr, "--shutdown"]);
    assert!(bye.status.success(), "shutdown: {}", stderr_of(&bye));
    assert!(daemon.wait().expect("daemon exits").success());

    // A binary at a different epoch must classify that entry stale…
    let stats = Command::new(env!("CARGO_BIN_EXE_repro"))
        .env("DVP_ENGINE_EPOCH", "2002")
        .args(["cache", "stats", "--result-dir", &dir_arg])
        .output()
        .expect("cache stats");
    assert!(stats.status.success(), "{}", stderr_of(&stats));
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("0 current, 1 stale, 0 unreadable"), "{text}");

    // …and purge exactly it, leaving an empty (but healthy) cache.
    let purge = Command::new(env!("CARGO_BIN_EXE_repro"))
        .env("DVP_ENGINE_EPOCH", "2002")
        .args(["cache", "purge", "--stale", "--result-dir", &dir_arg])
        .output()
        .expect("cache purge");
    assert!(purge.status.success(), "{}", stderr_of(&purge));
    let text = String::from_utf8_lossy(&purge.stdout);
    assert!(text.contains("purged 1 stale entry, kept 0 current"), "{text}");

    let again = Command::new(env!("CARGO_BIN_EXE_repro"))
        .env("DVP_ENGINE_EPOCH", "2002")
        .args(["cache", "stats", "--result-dir", &dir_arg])
        .output()
        .expect("cache stats");
    assert!(String::from_utf8_lossy(&again.stdout).contains("0 current, 0 stale, 0 unreadable"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full binary-level round trip: boot the daemon as a child process on an
/// ephemeral port, run two identical jobs through `repro client`, check
/// the second is served from cache with identical bytes, then shut the
/// daemon down cleanly and read its final stats line.
#[test]
fn serve_and_client_binaries_round_trip_with_a_cache_hit() {
    use std::io::{BufRead, BufReader};

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--listen", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    // The daemon prints `listening on ADDR` and flushes before accepting;
    // reading that line is the synchronization point (no sleeps).
    let mut stdout = BufReader::new(daemon.stdout.take().expect("piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("listening line");
    let addr = line.trim().strip_prefix("listening on ").expect("advertised address").to_owned();

    let job = r#"{"scenario":{"kind":"periodic","pcs":2,"records_per_pc":64,"seed":9,"period":4},"bank":["l","fcm2"]}"#;
    let cold = repro(&["client", &addr, "--job", job, "--payload-only"]);
    assert!(cold.status.success(), "cold job: {}", stderr_of(&cold));
    let warm = repro(&["client", &addr, "--job", job, "--payload-only", "--stats"]);
    assert!(warm.status.success(), "warm job: {}", stderr_of(&warm));

    // The warm run appends the stats frame after the payload; split it off
    // (strip the stats line's own trailing newline first).
    let warm_text = String::from_utf8_lossy(&warm.stdout).into_owned();
    let stripped = warm_text.strip_suffix('\n').expect("stats line ends in a newline");
    let (warm_payload, stats_line) = stripped.rsplit_once('\n').expect("payload then stats");
    let warm_payload = format!("{warm_payload}\n");
    assert_eq!(
        warm_payload.as_bytes(),
        cold.stdout,
        "cache hit must be byte-identical to the cold compute"
    );
    assert!(stats_line.contains("\"result_hits\":1"), "{stats_line}");

    let bye = repro(&["client", &addr, "--shutdown"]);
    assert!(bye.status.success(), "shutdown: {}", stderr_of(&bye));
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit zero after a client shutdown");
    let mut stderr = String::new();
    std::io::Read::read_to_string(&mut daemon.stderr.take().expect("piped"), &mut stderr)
        .expect("daemon stderr");
    assert!(stderr.contains("1 result hits, 1 misses"), "final stats line: {stderr}");
}
