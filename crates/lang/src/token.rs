//! Lexer for the Mini language.

use crate::CompileError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Integer literal (already folded to its 32-bit value).
    Int(i32),
    /// Identifier or keyword.
    Ident(String),
    /// `int`
    KwInt,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// Punctuation and operators.
    Punct(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::KwInt => write!(f, "int"),
            Token::KwIf => write!(f, "if"),
            Token::KwElse => write!(f, "else"),
            Token::KwWhile => write!(f, "while"),
            Token::KwFor => write!(f, "for"),
            Token::KwReturn => write!(f, "return"),
            Token::KwBreak => write!(f, "break"),
            Token::KwContinue => write!(f, "continue"),
            Token::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Multi-character operators, longest first.
const PUNCTS: [&str; 28] = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "{", "}", "[", "]", ";", ",", "=",
    "+", "-", "*", "/", "%", "<", ">", "&", "|", "^", "~",
];

/// Tokenizes Mini source text.
///
/// # Errors
///
/// Returns a [`CompileError`] on malformed literals or unexpected
/// characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments: // to end of line, /* ... */ nesting not supported.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut radix = 10;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                radix = 16;
                i += 2;
            }
            let digits_start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let text = &source[digits_start..i];
            let cleaned: String = text.chars().filter(|&c| c != '_').collect();
            let value = u32::from_str_radix(&cleaned, radix).map_err(|_| {
                CompileError::new(line, format!("invalid integer literal `{}`", &source[start..i]))
            })?;
            tokens.push(Spanned { token: Token::Int(value as i32), line });
            continue;
        }
        if c == '\'' {
            let (value, consumed) = lex_char(&source[i..], line)?;
            tokens.push(Spanned { token: Token::Int(value), line });
            i += consumed;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &source[start..i];
            let token = match word {
                "int" => Token::KwInt,
                "if" => Token::KwIf,
                "else" => Token::KwElse,
                "while" => Token::KwWhile,
                "for" => Token::KwFor,
                "return" => Token::KwReturn,
                "break" => Token::KwBreak,
                "continue" => Token::KwContinue,
                _ => Token::Ident(word.to_owned()),
            };
            tokens.push(Spanned { token, line });
            continue;
        }
        if let Some(p) = PUNCTS.iter().find(|p| source[i..].starts_with(**p)) {
            // `!` alone (vs `!=`) needs special care since `!` is not in the
            // table but `!=` is.
            tokens.push(Spanned { token: Token::Punct(p), line });
            i += p.len();
            continue;
        }
        if c == '!' {
            tokens.push(Spanned { token: Token::Punct("!"), line });
            i += 1;
            continue;
        }
        return Err(CompileError::new(line, format!("unexpected character `{c}`")));
    }
    Ok(tokens)
}

/// Lexes a char literal at the start of `rest`; returns (value, bytes consumed).
fn lex_char(rest: &str, line: usize) -> Result<(i32, usize), CompileError> {
    let bytes = rest.as_bytes();
    debug_assert_eq!(bytes[0], b'\'');
    let err = || CompileError::new(line, "malformed character literal");
    if bytes.len() < 3 {
        return Err(err());
    }
    if bytes[1] == b'\\' {
        if bytes.len() < 4 || bytes[3] != b'\'' {
            return Err(err());
        }
        let value = match bytes[2] {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            _ => return Err(err()),
        };
        Ok((i32::from(value), 4))
    } else {
        if bytes[2] != b'\'' {
            return Err(err());
        }
        Ok((i32::from(bytes[1]), 3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("int x while whilee"),
            vec![
                Token::KwInt,
                Token::Ident("x".into()),
                Token::KwWhile,
                Token::Ident("whilee".into())
            ]
        );
    }

    #[test]
    fn numbers_decimal_hex_char() {
        assert_eq!(
            toks("0 42 0x10 0xFF 'A' '\\n'"),
            vec![
                Token::Int(0),
                Token::Int(42),
                Token::Int(16),
                Token::Int(255),
                Token::Int(65),
                Token::Int(10)
            ]
        );
    }

    #[test]
    fn hex_wraps_to_i32() {
        assert_eq!(toks("0xFFFFFFFF"), vec![Token::Int(-1)]);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("a<<b <= == != && || < ! !="),
            vec![
                Token::Ident("a".into()),
                Token::Punct("<<"),
                Token::Ident("b".into()),
                Token::Punct("<="),
                Token::Punct("=="),
                Token::Punct("!="),
                Token::Punct("&&"),
                Token::Punct("||"),
                Token::Punct("<"),
                Token::Punct("!"),
                Token::Punct("!="),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line comment\nb /* block\ncomment */ c"),
            vec![Token::Ident("a".into()), Token::Ident("b".into()), Token::Ident("c".into())]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let spanned = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn bad_char_literal_errors() {
        assert!(lex("'ab'").is_err());
        assert!(lex("'").is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.to_string().contains('@'));
    }
}
