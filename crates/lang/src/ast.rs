//! Abstract syntax tree of the Mini language.

/// Binary operators, in Mini's (C-like) semantics on wrapping `i32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical and (yields 0/1).
    LAnd,
    /// Short-circuit logical or (yields 0/1).
    LOr,
}

impl BinOp {
    /// Constant-folds the operator on two values with Mini semantics
    /// (wrapping arithmetic; division/remainder by zero yield 0, matching
    /// the simulator).
    #[must_use]
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 31),
            BinOp::Shr => a.wrapping_shr(b as u32 & 31),
            BinOp::Eq => i32::from(a == b),
            BinOp::Ne => i32::from(a != b),
            BinOp::Lt => i32::from(a < b),
            BinOp::Le => i32::from(a <= b),
            BinOp::Gt => i32::from(a > b),
            BinOp::Ge => i32::from(a >= b),
            BinOp::LAnd => i32::from(a != 0 && b != 0),
            BinOp::LOr => i32::from(a != 0 || b != 0),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    BitNot,
    /// Logical not (yields 0/1).
    Not,
}

impl UnOp {
    /// Constant-folds the operator.
    #[must_use]
    pub fn eval(self, v: i32) -> i32 {
        match self {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::BitNot => !v,
            UnOp::Not => i32::from(v == 0),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer (or char) literal.
    Int(i32),
    /// Scalar variable reference.
    Var(String),
    /// Array element read: `name[index]`.
    Index(String, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    #[must_use]
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `int name = init;` (scalar local declaration).
    DeclScalar {
        /// Variable name.
        name: String,
        /// Optional initializer (defaults to 0).
        init: Option<Expr>,
    },
    /// `int name[size];` (local array declaration).
    DeclArray {
        /// Array name.
        name: String,
        /// Element count (constant).
        size: u32,
    },
    /// `name = value;`
    Assign {
        /// Target scalar.
        name: String,
        /// Value expression.
        value: Expr,
    },
    /// `name[index] = value;`
    AssignIndex {
        /// Target array.
        name: String,
        /// Element index.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Optional else branch.
        else_body: Vec<Stmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { … }` (kept structured so `continue` can
    /// target the step).
    For {
        /// Initialization statement (already desugared to a simple Stmt).
        init: Option<Box<Stmt>>,
        /// Condition; `None` means always true.
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return expr;` (missing expr returns 0).
    Return(Option<Expr>),
    /// Expression statement (usually a call).
    Expr(Expr),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Param {
    /// `int name` — a scalar passed by value.
    Scalar(String),
    /// `int name[]` — an array passed as its base address.
    Array(String),
}

impl Param {
    /// The parameter's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Param::Scalar(n) | Param::Array(n) => n,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition (for diagnostics).
    pub line: usize,
}

/// A global definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Global {
    /// `int name = value;`
    Scalar {
        /// Global name.
        name: String,
        /// Initial value.
        value: i32,
    },
    /// `int name[size] = { … };`
    Array {
        /// Global name.
        name: String,
        /// Element count.
        size: u32,
        /// Initializer values (padded with zeros to `size`).
        init: Vec<i32>,
    },
}

impl Global {
    /// The global's name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            Global::Scalar { name, .. } | Global::Array { name, .. } => name,
        }
    }
}

/// A whole Mini program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Global variables.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_matches_c_semantics() {
        assert_eq!(BinOp::Add.eval(i32::MAX, 1), i32::MIN);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Div.eval(-7, 2), -3, "truncates toward zero");
        assert_eq!(BinOp::Rem.eval(-7, 2), -1);
        assert_eq!(BinOp::Div.eval(5, 0), 0, "div by zero is 0 in Mini");
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
        assert_eq!(BinOp::Shr.eval(-8, 1), -4, "arithmetic shift");
        assert_eq!(BinOp::Lt.eval(-1, 0), 1);
        assert_eq!(BinOp::LAnd.eval(2, 3), 1);
        assert_eq!(BinOp::LOr.eval(0, 0), 0);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(i32::MIN), i32::MIN, "wrapping negation");
        assert_eq!(UnOp::BitNot.eval(0), -1);
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(42), 0);
    }

    #[test]
    fn shift_counts_mask_like_hardware() {
        assert_eq!(BinOp::Shl.eval(1, 33), 2, "shift count masked to 5 bits");
    }
}
