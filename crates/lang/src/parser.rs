//! Recursive-descent parser for Mini.

use crate::ast::{BinOp, Expr, Function, Global, Param, Program, Stmt, UnOp};
use crate::token::{lex, Spanned, Token};
use crate::CompileError;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).or_else(|| self.tokens.last()).map(|s| s.line).unwrap_or(1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn error(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        match self.peek() {
            Some(Token::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!(
                "expected `{p}`, found {}",
                other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
            ))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        matches!(self.peek(), Some(Token::Punct(q)) if *q == p) && {
            self.pos += 1;
            true
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(CompileError::new(
                self.tokens.get(self.pos.saturating_sub(1)).map_or(1, |s| s.line),
                format!(
                    "expected identifier, found {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<i32, CompileError> {
        // Allow a leading minus on constants in global initializers.
        let neg = self.eat_punct("-");
        match self.next() {
            Some(Token::Int(v)) => Ok(if neg { v.wrapping_neg() } else { v }),
            other => Err(CompileError::new(
                self.tokens.get(self.pos.saturating_sub(1)).map_or(1, |s| s.line),
                format!(
                    "expected integer literal, found {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }

    // ----- top level ---------------------------------------------------

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut program = Program::default();
        while self.peek().is_some() {
            match self.peek() {
                Some(Token::KwInt) => {
                    self.pos += 1;
                    let name = self.expect_ident()?;
                    match self.peek() {
                        Some(Token::Punct("(")) => {
                            program.functions.push(self.function(name)?);
                        }
                        _ => program.globals.push(self.global(name)?),
                    }
                }
                _ => return Err(self.error("expected `int` at top level")),
            }
        }
        Ok(program)
    }

    fn global(&mut self, name: String) -> Result<Global, CompileError> {
        if self.eat_punct("[") {
            let size = self.expect_int()?;
            let size = u32::try_from(size)
                .ok()
                .filter(|&s| s > 0)
                .ok_or_else(|| self.error(format!("bad array size {size}")))?;
            self.expect_punct("]")?;
            let mut init = Vec::new();
            if self.eat_punct("=") {
                self.expect_punct("{")?;
                if !self.eat_punct("}") {
                    loop {
                        init.push(self.expect_int()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct("}")?;
                }
                if init.len() > size as usize {
                    return Err(self.error(format!(
                        "array `{name}` has {} initializers but size {size}",
                        init.len()
                    )));
                }
            }
            self.expect_punct(";")?;
            Ok(Global::Array { name, size, init })
        } else {
            let value = if self.eat_punct("=") { self.expect_int()? } else { 0 };
            self.expect_punct(";")?;
            Ok(Global::Scalar { name, value })
        }
    }

    fn function(&mut self, name: String) -> Result<Function, CompileError> {
        let line = self.line();
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                match self.next() {
                    Some(Token::KwInt) => {}
                    _ => return Err(self.error("expected `int` in parameter list")),
                }
                let pname = self.expect_ident()?;
                if self.eat_punct("[") {
                    self.expect_punct("]")?;
                    params.push(Param::Array(pname));
                } else {
                    params.push(Param::Scalar(pname));
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let body = self.block()?;
        Ok(Function { name, params, body, line })
    }

    // ----- statements ---------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            Some(Token::KwInt) => {
                self.pos += 1;
                let name = self.expect_ident()?;
                if self.eat_punct("[") {
                    let size = self.expect_int()?;
                    let size = u32::try_from(size)
                        .ok()
                        .filter(|&s| s > 0)
                        .ok_or_else(|| self.error(format!("bad array size {size}")))?;
                    self.expect_punct("]")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::DeclArray { name, size })
                } else {
                    let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
                    self.expect_punct(";")?;
                    Ok(Stmt::DeclScalar { name, init })
                }
            }
            Some(Token::KwIf) => {
                self.pos += 1;
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then_body = self.block()?;
                let else_body = if matches!(self.peek(), Some(Token::KwElse)) {
                    self.pos += 1;
                    if matches!(self.peek(), Some(Token::KwIf)) {
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_body, else_body })
            }
            Some(Token::KwWhile) => {
                self.pos += 1;
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Token::KwFor) => {
                self.pos += 1;
                self.expect_punct("(")?;
                let init = if self.eat_punct(";") {
                    None
                } else {
                    let s = self.simple_statement()?;
                    self.expect_punct(";")?;
                    Some(Box::new(s))
                };
                let cond = if self.eat_punct(";") {
                    None
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Some(e)
                };
                let step = if self.eat_punct(")") {
                    None
                } else {
                    let s = self.simple_statement()?;
                    self.expect_punct(")")?;
                    Some(Box::new(s))
                };
                let body = self.block()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            Some(Token::KwReturn) => {
                self.pos += 1;
                let value = if self.eat_punct(";") {
                    None
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Some(e)
                };
                Ok(Stmt::Return(value))
            }
            Some(Token::KwBreak) => {
                self.pos += 1;
                self.expect_punct(";")?;
                Ok(Stmt::Break)
            }
            Some(Token::KwContinue) => {
                self.pos += 1;
                self.expect_punct(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let stmt = self.simple_statement()?;
                self.expect_punct(";")?;
                Ok(stmt)
            }
        }
    }

    /// A statement without trailing `;`: assignment, indexed assignment,
    /// declaration (in `for` init), or expression.
    fn simple_statement(&mut self) -> Result<Stmt, CompileError> {
        if matches!(self.peek(), Some(Token::KwInt)) {
            self.pos += 1;
            let name = self.expect_ident()?;
            self.expect_punct("=")?;
            let init = self.expr()?;
            return Ok(Stmt::DeclScalar { name, init: Some(init) });
        }
        // Lookahead: ident '=' / ident '[' expr ']' '=' are assignments.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            let save = self.pos;
            self.pos += 1;
            if self.eat_punct("=") {
                let value = self.expr()?;
                return Ok(Stmt::Assign { name, value });
            }
            if self.eat_punct("[") {
                let index = self.expr()?;
                self.expect_punct("]")?;
                if self.eat_punct("=") {
                    let value = self.expr()?;
                    return Ok(Stmt::AssignIndex { name, index, value });
                }
            }
            self.pos = save;
        }
        Ok(Stmt::Expr(self.expr()?))
    }

    // ----- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_expr(0)
    }

    /// Precedence-climbing over the binary operator table.
    fn binary_expr(&mut self, min_level: usize) -> Result<Expr, CompileError> {
        const LEVELS: [&[(&str, BinOp)]; 10] = [
            &[("||", BinOp::LOr)],
            &[("&&", BinOp::LAnd)],
            &[("|", BinOp::Or)],
            &[("^", BinOp::Xor)],
            &[("&", BinOp::And)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[("<=", BinOp::Le), (">=", BinOp::Ge), ("<", BinOp::Lt), (">", BinOp::Gt)],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Rem)],
        ];
        if min_level == LEVELS.len() {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(min_level + 1)?;
        loop {
            let op = match self.peek() {
                Some(Token::Punct(p)) => {
                    LEVELS[min_level].iter().find(|(sym, _)| sym == p).map(|&(_, op)| op)
                }
                _ => None,
            };
            let Some(op) = op else { return Ok(lhs) };
            self.pos += 1;
            let rhs = self.binary_expr(min_level + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let op = match self.peek() {
            Some(Token::Punct("-")) => Some(UnOp::Neg),
            Some(Token::Punct("~")) => Some(UnOp::BitNot),
            Some(Token::Punct("!")) => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(op, Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::Ident(name)) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat_punct("[") {
                    let index = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(index)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Token::Punct("(")) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(CompileError::new(
                self.tokens.get(self.pos.saturating_sub(1)).map_or(1, |s| s.line),
                format!(
                    "expected expression, found {}",
                    other.map_or("end of input".to_owned(), |t| format!("`{t}`"))
                ),
            )),
        }
    }
}

/// Parses Mini source text into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`CompileError`].
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("int main() { return 0; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert_eq!(p.functions[0].body, vec![Stmt::Return(Some(Expr::Int(0)))]);
    }

    #[test]
    fn parses_globals() {
        let p = parse("int x; int y = 5; int z = -3; int a[4]; int b[3] = {1, 2, 3}; int main() { return 0; }")
            .unwrap();
        assert_eq!(p.globals.len(), 5);
        assert_eq!(p.globals[1], Global::Scalar { name: "y".into(), value: 5 });
        assert_eq!(p.globals[2], Global::Scalar { name: "z".into(), value: -3 });
        assert_eq!(p.globals[4], Global::Array { name: "b".into(), size: 3, init: vec![1, 2, 3] });
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("int main() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(e)) = &p.functions[0].body[0] else { panic!() };
        assert_eq!(
            *e,
            Expr::binary(
                BinOp::Add,
                Expr::Int(1),
                Expr::binary(BinOp::Mul, Expr::Int(2), Expr::Int(3))
            )
        );
    }

    #[test]
    fn shift_binds_tighter_than_compare() {
        let p = parse("int main() { return 1 << 2 < 3; }").unwrap();
        let Stmt::Return(Some(e)) = &p.functions[0].body[0] else { panic!() };
        assert_eq!(
            *e,
            Expr::binary(
                BinOp::Lt,
                Expr::binary(BinOp::Shl, Expr::Int(1), Expr::Int(2)),
                Expr::Int(3)
            )
        );
    }

    #[test]
    fn unary_chains() {
        let p = parse("int main() { return - - ! ~ 0; }").unwrap();
        let Stmt::Return(Some(e)) = &p.functions[0].body[0] else { panic!() };
        let Expr::Unary(UnOp::Neg, inner) = e else { panic!("{e:?}") };
        let Expr::Unary(UnOp::Neg, inner) = &**inner else { panic!() };
        let Expr::Unary(UnOp::Not, inner) = &**inner else { panic!() };
        assert!(matches!(&**inner, Expr::Unary(UnOp::BitNot, _)));
    }

    #[test]
    fn if_else_chain() {
        let p = parse(
            "int main() { if (1) { return 1; } else if (2) { return 2; } else { return 3; } }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn for_loop_with_decl_init() {
        let p =
            parse("int main() { for (int i = 0; i < 10; i = i + 1) { print_int(i); } return 0; }")
                .unwrap();
        let Stmt::For { init, cond, step, body } = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(init.as_deref(), Some(Stmt::DeclScalar { .. })));
        assert!(cond.is_some());
        assert!(matches!(step.as_deref(), Some(Stmt::Assign { .. })));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn empty_for_clauses() {
        let p = parse("int main() { for (;;) { break; } return 0; }").unwrap();
        let Stmt::For { init, cond, step, .. } = &p.functions[0].body[0] else { panic!() };
        assert!(init.is_none() && cond.is_none() && step.is_none());
    }

    #[test]
    fn array_params_and_indexing() {
        let p = parse("int sum(int a[], int n) { int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }").unwrap();
        assert_eq!(
            p.functions[0].params,
            vec![Param::Array("a".into()), Param::Scalar("n".into())]
        );
    }

    #[test]
    fn indexed_assignment_vs_indexed_read() {
        let p = parse("int main() { int a[2]; a[0] = 1; a[1] = a[0]; return a[1]; }").unwrap();
        assert!(matches!(p.functions[0].body[1], Stmt::AssignIndex { .. }));
    }

    #[test]
    fn call_statement() {
        let p = parse("int main() { print_int(42); return 0; }").unwrap();
        assert!(
            matches!(&p.functions[0].body[0], Stmt::Expr(Expr::Call(n, _)) if n == "print_int")
        );
    }

    #[test]
    fn error_reports_line() {
        let err = parse("int main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse("int main() { return 0 }").is_err());
    }

    #[test]
    fn garbage_at_top_level_is_an_error() {
        assert!(parse("float main() {}").is_err());
    }

    #[test]
    fn too_many_initializers_rejected() {
        assert!(parse("int a[1] = {1, 2}; int main() { return 0; }").is_err());
    }
}
