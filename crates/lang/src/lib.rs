//! # dvp-lang — the Mini language compiler
//!
//! Mini is a small C-like language (32-bit integers, fixed-size arrays,
//! functions, the full C integer expression set) compiled to Sim32 assembly
//! for the `dvp-asm` assembler and `dvp-sim` simulator.
//!
//! The crate stands in for the optimizing C compiler the paper used to
//! build its SPEC95 binaries: the seven `dvp-workloads` benchmarks are Mini
//! programs, and the compiler's [`OptLevel`]s reproduce the paper's
//! "different compilation flags" sensitivity study (Table 7) — higher
//! levels fold constants, use immediate instruction forms, strength-reduce
//! multiplications and divisions into shifts, and promote hot scalars into
//! callee-saved registers, all of which change the value streams seen by
//! the predictors.
//!
//! # Examples
//!
//! ```
//! use dvp_lang::{compile, OptLevel};
//!
//! let asm = compile(
//!     "int main() {
//!          int total = 0;
//!          for (int i = 1; i <= 10; i = i + 1) { total = total + i; }
//!          print_int(total);
//!          return 0;
//!      }",
//!     OptLevel::O2,
//! )?;
//! assert!(asm.contains("main:"));
//! # Ok::<(), dvp_lang::CompileError>(())
//! ```
//!
//! # Language reference (abridged)
//!
//! ```text
//! int g = 3;                 // global scalar
//! int table[16] = {1, 2};    // global array (zero-padded)
//!
//! int add(int a, int b) { return a + b; }
//! int sum(int xs[], int n) {             // arrays pass by reference
//!     int s = 0;
//!     for (int i = 0; i < n; i = i + 1) { s = s + xs[i]; }
//!     return s;
//! }
//! int main() {
//!     int local[8];
//!     local[0] = add(g, 4);
//!     if (local[0] > 5 && g != 0) { print_int(local[0]); }
//!     while (g > 0) { g = g - 1; }
//!     print_char('\n');
//!     return 0;
//! }
//! ```
//!
//! Semantics notes: `int` is a wrapping 32-bit integer; `/` and `%`
//! truncate toward zero and yield 0 for a zero divisor (matching the
//! simulator's `div`/`rem`); `>>` is arithmetic; shift counts are masked to
//! five bits; `&&`/`||` short-circuit and yield 0/1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod codegen;
mod opt;
mod parser;
mod sema;
mod token;

pub use opt::{fold_expr, has_side_effects, optimize_program};
pub use parser::parse;
pub use sema::{check, FuncSig, VarKind, BUILTINS};

use std::fmt;

/// Optimization level of the Mini compiler (paper Table 7 studies the same
/// program under different flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// Naive code: every value through memory, no folding.
    O0,
    /// Constant folding, algebraic simplification, immediate instruction
    /// forms, strength reduction, fused compare-and-branch.
    O1,
    /// `O1` plus register promotion of hot scalars into `s0..s7`.
    O2,
}

impl OptLevel {
    /// All levels, lowest first.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
        }
    }
}

/// A compile-time error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line (0 when no specific line applies).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        CompileError { line, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles Mini source text to Sim32 assembly.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic [`CompileError`].
pub fn compile(source: &str, opt: OptLevel) -> Result<String, CompileError> {
    let mut program = parser::parse(source)?;
    sema::check(&program)?;
    if opt >= OptLevel::O1 {
        opt::optimize_program(&mut program);
    }
    codegen::Codegen::new(&program, opt).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_at_all_levels() {
        let src = "int main() { print_int(2 + 2); return 0; }";
        for level in OptLevel::ALL {
            let asm = compile(src, level).unwrap();
            assert!(asm.contains("main:"), "{level}");
            assert!(asm.contains("syscall 1"), "{level}");
        }
    }

    #[test]
    fn o1_folds_constants() {
        let asm = compile("int main() { return 6 * 7; }", OptLevel::O1).unwrap();
        assert!(asm.contains("li t0, 42"), "{asm}");
        let naive = compile("int main() { return 6 * 7; }", OptLevel::O0).unwrap();
        assert!(naive.contains("mul"), "{naive}");
    }

    #[test]
    fn o1_strength_reduces_mul_by_pow2() {
        let src = "int f(int x) { return x * 8; } int main() { return f(3); }";
        let o1 = compile(src, OptLevel::O1).unwrap();
        assert!(o1.contains("sll"), "{o1}");
        assert!(!o1.contains("mul"), "{o1}");
        let o0 = compile(src, OptLevel::O0).unwrap();
        assert!(o0.contains("mul"), "{o0}");
    }

    #[test]
    fn o2_promotes_hot_scalars() {
        let src = "int main() {
            int acc = 0;
            for (int i = 0; i < 100; i = i + 1) { acc = acc + i; }
            return acc;
        }";
        let o2 = compile(src, OptLevel::O2).unwrap();
        assert!(o2.contains("s0"), "{o2}");
        let o1 = compile(src, OptLevel::O1).unwrap();
        assert!(!o1.contains("move s0"), "{o1}");
    }

    #[test]
    fn errors_carry_lines() {
        // Parse errors carry the exact line; semantic errors carry the
        // enclosing function's line.
        let parse_err = compile("int main() {\n  int x = ;\n}", OptLevel::O0).unwrap_err();
        assert_eq!(parse_err.line, 2);
        let sema_err =
            compile("int main() {\n  oops();\n  return 0;\n}", OptLevel::O0).unwrap_err();
        assert_eq!(sema_err.line, 1);
        assert!(sema_err.to_string().contains("oops"));
    }

    #[test]
    fn display_of_levels() {
        let shown: Vec<String> = OptLevel::ALL.iter().map(|l| l.to_string()).collect();
        assert_eq!(shown, vec!["O0", "O1", "O2"]);
        assert!(OptLevel::O2 > OptLevel::O0);
    }
}
