//! Semantic analysis for Mini: name resolution, kind checking (scalar vs
//! array), arity checking, and structural rules.

use crate::ast::{Expr, Global, Param, Program, Stmt};
use crate::CompileError;
use std::collections::HashMap;

/// Kind of a variable binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// A scalar `int`.
    Scalar,
    /// An `int` array (local, global, or array parameter).
    Array,
}

/// Signature of a function: parameter kinds in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSig {
    /// Kind of each parameter.
    pub params: Vec<VarKind>,
}

/// Built-in functions: `(name, arity)`. All builtins take scalar arguments.
pub const BUILTINS: [(&str, usize); 2] = [("print_int", 1), ("print_char", 1)];

struct Scope {
    vars: HashMap<String, VarKind>,
}

struct Checker<'a> {
    sigs: &'a HashMap<String, FuncSig>,
    globals: &'a HashMap<String, VarKind>,
    scopes: Vec<Scope>,
    loop_depth: usize,
    line: usize,
}

impl Checker<'_> {
    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line, msg)
    }

    fn lookup(&self, name: &str) -> Option<VarKind> {
        for scope in self.scopes.iter().rev() {
            if let Some(&kind) = scope.vars.get(name) {
                return Some(kind);
            }
        }
        self.globals.get(name).copied()
    }

    fn declare(&mut self, name: &str, kind: VarKind) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack is never empty");
        if scope.vars.insert(name.to_owned(), kind).is_some() {
            return Err(CompileError::new(
                self.line,
                format!("`{name}` is declared twice in the same scope"),
            ));
        }
        Ok(())
    }

    /// Checks an expression in scalar (value) position.
    fn check_expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::Int(_) => Ok(()),
            Expr::Var(name) => match self.lookup(name) {
                Some(VarKind::Scalar) => Ok(()),
                Some(VarKind::Array) => Err(self.err(format!(
                    "array `{name}` used as a scalar (arrays may only be indexed or passed to array parameters)"
                ))),
                None => Err(self.err(format!("undeclared variable `{name}`"))),
            },
            Expr::Index(name, index) => {
                match self.lookup(name) {
                    Some(VarKind::Array) => {}
                    Some(VarKind::Scalar) => {
                        return Err(self.err(format!("scalar `{name}` cannot be indexed")));
                    }
                    None => return Err(self.err(format!("undeclared variable `{name}`"))),
                }
                self.check_expr(index)
            }
            Expr::Call(name, args) => self.check_call(name, args),
            Expr::Unary(_, inner) => self.check_expr(inner),
            Expr::Binary(_, lhs, rhs) => {
                self.check_expr(lhs)?;
                self.check_expr(rhs)
            }
        }
    }

    fn check_call(&mut self, name: &str, args: &[Expr]) -> Result<(), CompileError> {
        let param_kinds: Vec<VarKind> =
            if let Some((_, arity)) = BUILTINS.iter().find(|(b, _)| *b == name) {
                vec![VarKind::Scalar; *arity]
            } else if let Some(sig) = self.sigs.get(name) {
                sig.params.clone()
            } else {
                return Err(self.err(format!("call to undefined function `{name}`")));
            };
        if args.len() != param_kinds.len() {
            return Err(self.err(format!(
                "`{name}` expects {} argument(s), got {}",
                param_kinds.len(),
                args.len()
            )));
        }
        for (arg, kind) in args.iter().zip(&param_kinds) {
            match kind {
                VarKind::Array => match arg {
                    Expr::Var(arg_name) if self.lookup(arg_name) == Some(VarKind::Array) => {}
                    Expr::Var(arg_name) => {
                        return Err(
                            self.err(format!("argument `{arg_name}` to `{name}` must be an array"))
                        );
                    }
                    _ => {
                        return Err(self.err(format!(
                            "array parameter of `{name}` needs an array name as argument"
                        )));
                    }
                },
                VarKind::Scalar => self.check_expr(arg)?,
            }
        }
        Ok(())
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(Scope { vars: HashMap::new() });
        for stmt in stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::DeclScalar { name, init } => {
                if let Some(init) = init {
                    self.check_expr(init)?;
                }
                self.declare(name, VarKind::Scalar)
            }
            Stmt::DeclArray { name, .. } => self.declare(name, VarKind::Array),
            Stmt::Assign { name, value } => {
                match self.lookup(name) {
                    Some(VarKind::Scalar) => {}
                    Some(VarKind::Array) => {
                        return Err(self.err(format!("cannot assign to array `{name}`")));
                    }
                    None => return Err(self.err(format!("undeclared variable `{name}`"))),
                }
                self.check_expr(value)
            }
            Stmt::AssignIndex { name, index, value } => {
                match self.lookup(name) {
                    Some(VarKind::Array) => {}
                    Some(VarKind::Scalar) => {
                        return Err(self.err(format!("scalar `{name}` cannot be indexed")));
                    }
                    None => return Err(self.err(format!("undeclared variable `{name}`"))),
                }
                self.check_expr(index)?;
                self.check_expr(value)
            }
            Stmt::If { cond, then_body, else_body } => {
                self.check_expr(cond)?;
                self.check_stmts(then_body)?;
                self.check_stmts(else_body)
            }
            Stmt::While { cond, body } => {
                self.check_expr(cond)?;
                self.loop_depth += 1;
                let r = self.check_stmts(body);
                self.loop_depth -= 1;
                r
            }
            Stmt::For { init, cond, step, body } => {
                // The for header introduces its own scope (for `int i = …`).
                self.scopes.push(Scope { vars: HashMap::new() });
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    self.check_expr(cond)?;
                }
                self.loop_depth += 1;
                let mut result = self.check_stmts(body);
                if result.is_ok() {
                    if let Some(step) = step {
                        result = self.check_stmt(step);
                    }
                }
                self.loop_depth -= 1;
                self.scopes.pop();
                result
            }
            Stmt::Break | Stmt::Continue => {
                if self.loop_depth == 0 {
                    Err(self.err("`break`/`continue` outside of a loop"))
                } else {
                    Ok(())
                }
            }
            Stmt::Return(value) => {
                if let Some(value) = value {
                    self.check_expr(value)?;
                }
                Ok(())
            }
            Stmt::Expr(expr) => self.check_expr(expr),
        }
    }
}

/// Collects function signatures (for forward references) and checks the
/// whole program.
///
/// # Errors
///
/// Returns the first semantic [`CompileError`] found.
pub fn check(program: &Program) -> Result<HashMap<String, FuncSig>, CompileError> {
    let mut globals = HashMap::new();
    for global in &program.globals {
        let kind = match global {
            Global::Scalar { .. } => VarKind::Scalar,
            Global::Array { .. } => VarKind::Array,
        };
        if globals.insert(global.name().to_owned(), kind).is_some() {
            return Err(CompileError::new(
                1,
                format!("global `{}` is declared twice", global.name()),
            ));
        }
    }

    let mut sigs: HashMap<String, FuncSig> = HashMap::new();
    for function in &program.functions {
        if BUILTINS.iter().any(|(b, _)| *b == function.name) {
            return Err(CompileError::new(
                function.line,
                format!("`{}` shadows a builtin function", function.name),
            ));
        }
        if globals.contains_key(&function.name) {
            return Err(CompileError::new(
                function.line,
                format!("`{}` is both a global and a function", function.name),
            ));
        }
        let sig = FuncSig {
            params: function
                .params
                .iter()
                .map(|p| match p {
                    Param::Scalar(_) => VarKind::Scalar,
                    Param::Array(_) => VarKind::Array,
                })
                .collect(),
        };
        if sigs.insert(function.name.clone(), sig).is_some() {
            return Err(CompileError::new(
                function.line,
                format!("function `{}` is defined twice", function.name),
            ));
        }
    }

    match sigs.get("main") {
        Some(sig) if sig.params.is_empty() => {}
        Some(_) => return Err(CompileError::new(1, "`main` must take no parameters")),
        None => return Err(CompileError::new(1, "program has no `main` function")),
    }

    for function in &program.functions {
        let mut checker = Checker {
            sigs: &sigs,
            globals: &globals,
            scopes: vec![Scope { vars: HashMap::new() }],
            loop_depth: 0,
            line: function.line,
        };
        // Parameters live in the outermost function scope.
        for param in &function.params {
            let kind = match param {
                Param::Scalar(_) => VarKind::Scalar,
                Param::Array(_) => VarKind::Array,
            };
            checker.declare(param.name(), kind)?;
        }
        checker.check_stmts(&function.body)?;
    }
    Ok(sigs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(), CompileError> {
        check(&parse(src).unwrap()).map(|_| ())
    }

    #[test]
    fn accepts_well_formed_program() {
        check_src(
            "int g = 1; int a[4];
             int sum(int xs[], int n) {
                 int s = 0;
                 for (int i = 0; i < n; i = i + 1) { s = s + xs[i]; }
                 return s;
             }
             int main() { a[0] = g; return sum(a, 4); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_missing_main() {
        let err = check_src("int f() { return 0; }").unwrap_err();
        assert!(err.message.contains("main"));
    }

    #[test]
    fn rejects_main_with_params() {
        assert!(check_src("int main(int x) { return x; }").is_err());
    }

    #[test]
    fn rejects_undeclared_variable() {
        let err = check_src("int main() { return x; }").unwrap_err();
        assert!(err.message.contains('x'));
    }

    #[test]
    fn rejects_double_declaration_in_scope() {
        assert!(check_src("int main() { int x = 1; int x = 2; return x; }").is_err());
    }

    #[test]
    fn allows_shadowing_in_nested_scope() {
        check_src("int main() { int x = 1; if (x) { int x = 2; print_int(x); } return x; }")
            .unwrap();
    }

    #[test]
    fn rejects_indexing_scalar() {
        assert!(check_src("int main() { int x = 1; return x[0]; }").is_err());
    }

    #[test]
    fn rejects_array_in_scalar_position() {
        assert!(check_src("int a[2]; int main() { return a; }").is_err());
        assert!(check_src("int a[2]; int main() { return a + 1; }").is_err());
    }

    #[test]
    fn rejects_assigning_whole_array() {
        assert!(check_src("int a[2]; int main() { a = 1; return 0; }").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(check_src("int f(int x) { return x; } int main() { return f(1, 2); }").is_err());
        assert!(check_src("int main() { print_int(1, 2); return 0; }").is_err());
    }

    #[test]
    fn rejects_undefined_function() {
        assert!(check_src("int main() { return mystery(); }").is_err());
    }

    #[test]
    fn array_param_requires_array_argument() {
        assert!(check_src("int f(int a[]) { return a[0]; } int main() { return f(3); }").is_err());
        assert!(check_src(
            "int f(int a[]) { return a[0]; } int main() { int x = 0; return f(x); }"
        )
        .is_err());
    }

    #[test]
    fn scalar_param_rejects_array_argument() {
        assert!(
            check_src("int g[2]; int f(int x) { return x; } int main() { return f(g); }").is_err()
        );
    }

    #[test]
    fn array_params_forward_to_array_params() {
        check_src(
            "int inner(int a[]) { return a[0]; }
             int outer(int b[]) { return inner(b); }
             int g[3];
             int main() { return outer(g); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_break_outside_loop() {
        assert!(check_src("int main() { break; return 0; }").is_err());
    }

    #[test]
    fn accepts_break_in_loop() {
        check_src("int main() { while (1) { break; } return 0; }").unwrap();
    }

    #[test]
    fn continue_targets_for_step() {
        check_src("int main() { for (int i = 0; i < 4; i = i + 1) { continue; } return 0; }")
            .unwrap();
    }

    #[test]
    fn rejects_duplicate_functions_and_globals() {
        assert!(check_src("int f() { return 0; } int f() { return 1; } int main() { return 0; }")
            .is_err());
        assert!(check_src("int g; int g; int main() { return 0; }").is_err());
        assert!(check_src("int f; int f() { return 0; } int main() { return 0; }").is_err());
    }

    #[test]
    fn rejects_shadowing_builtins() {
        assert!(check_src("int print_int(int x) { return x; } int main() { return 0; }").is_err());
    }

    #[test]
    fn for_header_scope_is_separate() {
        check_src(
            "int main() {
                 for (int i = 0; i < 2; i = i + 1) { print_int(i); }
                 for (int i = 9; i > 0; i = i - 1) { print_int(i); }
                 return 0;
             }",
        )
        .unwrap();
    }
}
