//! AST-level optimizations, applied at `O1` and above: constant folding,
//! algebraic simplification, short-circuit simplification, and dead-branch
//! elimination.
//!
//! Machine-level strength reduction (multiply/divide by powers of two into
//! shifts) happens in codegen, where the target cost model lives.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp};

/// Whether evaluating the expression could have side effects (calls are the
/// only side-effecting expressions in Mini).
#[must_use]
pub fn has_side_effects(expr: &Expr) -> bool {
    match expr {
        Expr::Int(_) | Expr::Var(_) => false,
        Expr::Index(_, index) => has_side_effects(index),
        Expr::Call(..) => true,
        Expr::Unary(_, inner) => has_side_effects(inner),
        Expr::Binary(_, lhs, rhs) => has_side_effects(lhs) || has_side_effects(rhs),
    }
}

/// Folds and simplifies an expression.
#[must_use]
pub fn fold_expr(expr: Expr) -> Expr {
    match expr {
        Expr::Int(_) | Expr::Var(_) => expr,
        Expr::Index(name, index) => Expr::Index(name, Box::new(fold_expr(*index))),
        Expr::Call(name, args) => Expr::Call(name, args.into_iter().map(fold_expr).collect()),
        Expr::Unary(op, inner) => {
            let inner = fold_expr(*inner);
            match (&op, &inner) {
                (_, Expr::Int(v)) => Expr::Int(op.eval(*v)),
                // --x == x ; ~~x == x ; !!x stays (it normalizes to 0/1).
                (UnOp::Neg, Expr::Unary(UnOp::Neg, x)) => (**x).clone(),
                (UnOp::BitNot, Expr::Unary(UnOp::BitNot, x)) => (**x).clone(),
                _ => Expr::Unary(op, Box::new(inner)),
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let lhs = fold_expr(*lhs);
            let rhs = fold_expr(*rhs);
            fold_binary(op, lhs, rhs)
        }
    }
}

fn fold_binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    use BinOp::{Add, And, Div, LAnd, LOr, Mul, Or, Rem, Shl, Shr, Sub, Xor};

    if let (Expr::Int(a), Expr::Int(b)) = (&lhs, &rhs) {
        return Expr::Int(op.eval(*a, *b));
    }

    // Short-circuit operators with a constant left side never evaluate the
    // right side, so the right side can be dropped even with side effects.
    if let Expr::Int(a) = lhs {
        match op {
            LAnd if a == 0 => return Expr::Int(0),
            LAnd => return normalize_bool(rhs),
            LOr if a != 0 => return Expr::Int(1),
            LOr => return normalize_bool(rhs),
            _ => {}
        }
        // Canonicalize: constant on the right for commutative operators.
        if matches!(op, Add | Mul | And | Or | Xor) {
            return fold_binary(op, rhs, Expr::Int(a));
        }
        return Expr::binary(op, Expr::Int(a), rhs);
    }

    if let Expr::Int(b) = rhs {
        let pure = !has_side_effects(&lhs);
        match (op, b) {
            (Add | Sub | Or | Xor | Shl | Shr, 0) => return lhs,
            (Mul, 0) | (And, 0) if pure => return Expr::Int(0),
            (Mul | Div, 1) => return lhs,
            (Rem, 1) if pure => return Expr::Int(0),
            (Mul, -1) => return fold_expr(Expr::Unary(UnOp::Neg, Box::new(lhs))),
            (And, -1) => return lhs,
            _ => {}
        }
        return Expr::binary(op, lhs, Expr::Int(b));
    }

    // x - x == 0 and x ^ x == 0 for pure x.
    if matches!(op, Sub | Xor) && lhs == rhs && !has_side_effects(&lhs) {
        return Expr::Int(0);
    }

    Expr::binary(op, lhs, rhs)
}

/// `e` in boolean position: rewrites to `e != 0` unless it is already 0/1
/// valued (comparisons and logical ops produce 0/1).
fn normalize_bool(expr: Expr) -> Expr {
    if produces_bool(&expr) {
        expr
    } else {
        Expr::binary(BinOp::Ne, expr, Expr::Int(0))
    }
}

fn produces_bool(expr: &Expr) -> bool {
    match expr {
        Expr::Binary(op, ..) => matches!(
            op,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::LAnd
                | BinOp::LOr
        ),
        Expr::Unary(UnOp::Not, _) => true,
        Expr::Int(v) => *v == 0 || *v == 1,
        _ => false,
    }
}

/// Optimizes all statements of a program in place.
pub fn optimize_program(program: &mut Program) {
    for function in &mut program.functions {
        optimize_stmts(&mut function.body);
    }
}

fn optimize_stmts(stmts: &mut Vec<Stmt>) {
    let old = std::mem::take(stmts);
    for stmt in old {
        if let Some(folded) = fold_stmt(stmt) {
            stmts.push(folded);
        }
    }
}

/// Folds one statement; returns `None` if the statement is dead.
fn fold_stmt(stmt: Stmt) -> Option<Stmt> {
    Some(match stmt {
        Stmt::DeclScalar { name, init } => Stmt::DeclScalar { name, init: init.map(fold_expr) },
        Stmt::DeclArray { .. } | Stmt::Break | Stmt::Continue => stmt,
        Stmt::Assign { name, value } => Stmt::Assign { name, value: fold_expr(value) },
        Stmt::AssignIndex { name, index, value } => {
            Stmt::AssignIndex { name, index: fold_expr(index), value: fold_expr(value) }
        }
        Stmt::If { cond, mut then_body, mut else_body } => {
            let cond = fold_expr(cond);
            optimize_stmts(&mut then_body);
            optimize_stmts(&mut else_body);
            if let Expr::Int(c) = cond {
                let chosen = if c != 0 { then_body } else { else_body };
                // Splice the chosen branch in place of the `if`. A block
                // introduces a scope, but Mini scoping only affects name
                // lookup, which sema has already validated; declarations
                // inside the branch stay inside their statements.
                return match chosen.len() {
                    0 => None,
                    _ => Some(Stmt::If {
                        cond: Expr::Int(1),
                        then_body: chosen,
                        else_body: Vec::new(),
                    }),
                };
            }
            Stmt::If { cond, then_body, else_body }
        }
        Stmt::While { cond, mut body } => {
            let cond = fold_expr(cond);
            if matches!(cond, Expr::Int(0)) {
                return None;
            }
            optimize_stmts(&mut body);
            Stmt::While { cond, body }
        }
        Stmt::For { init, cond, step, mut body } => {
            let init = init.and_then(|s| fold_stmt(*s).map(Box::new));
            let cond = cond.map(fold_expr);
            let step = step.and_then(|s| fold_stmt(*s).map(Box::new));
            if let Some(Expr::Int(0)) = cond {
                // The loop never runs; only the init matters.
                return init.map(|b| *b);
            }
            optimize_stmts(&mut body);
            Stmt::For { init, cond, step, body }
        }
        Stmt::Return(value) => Stmt::Return(value.map(fold_expr)),
        Stmt::Expr(expr) => {
            let folded = fold_expr(expr);
            if has_side_effects(&folded) {
                Stmt::Expr(folded)
            } else {
                // A pure expression statement is dead.
                return None;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i32) -> Expr {
        Expr::Int(v)
    }

    fn var(n: &str) -> Expr {
        Expr::Var(n.to_owned())
    }

    fn call() -> Expr {
        Expr::Call("f".to_owned(), vec![])
    }

    #[test]
    fn folds_constant_arithmetic() {
        assert_eq!(fold_expr(Expr::binary(BinOp::Add, int(2), int(3))), int(5));
        assert_eq!(
            fold_expr(Expr::binary(BinOp::Mul, Expr::binary(BinOp::Add, int(1), int(2)), int(4))),
            int(12)
        );
    }

    #[test]
    fn folds_unary() {
        assert_eq!(fold_expr(Expr::Unary(UnOp::Neg, Box::new(int(5)))), int(-5));
        assert_eq!(
            fold_expr(Expr::Unary(UnOp::Neg, Box::new(Expr::Unary(UnOp::Neg, Box::new(var("x")))))),
            var("x")
        );
    }

    #[test]
    fn identity_elements_are_removed() {
        assert_eq!(fold_expr(Expr::binary(BinOp::Add, var("x"), int(0))), var("x"));
        assert_eq!(fold_expr(Expr::binary(BinOp::Add, int(0), var("x"))), var("x"));
        assert_eq!(fold_expr(Expr::binary(BinOp::Mul, var("x"), int(1))), var("x"));
        assert_eq!(fold_expr(Expr::binary(BinOp::Shl, var("x"), int(0))), var("x"));
        assert_eq!(fold_expr(Expr::binary(BinOp::And, var("x"), int(-1))), var("x"));
    }

    #[test]
    fn annihilators_require_purity() {
        assert_eq!(fold_expr(Expr::binary(BinOp::Mul, var("x"), int(0))), int(0));
        // A call on the left cannot be dropped.
        let kept = fold_expr(Expr::binary(BinOp::Mul, call(), int(0)));
        assert!(matches!(kept, Expr::Binary(BinOp::Mul, ..)), "{kept:?}");
    }

    #[test]
    fn x_minus_x_is_zero() {
        assert_eq!(fold_expr(Expr::binary(BinOp::Sub, var("x"), var("x"))), int(0));
        assert_eq!(fold_expr(Expr::binary(BinOp::Xor, var("x"), var("x"))), int(0));
        // But not for calls.
        let kept = fold_expr(Expr::binary(BinOp::Sub, call(), call()));
        assert!(matches!(kept, Expr::Binary(BinOp::Sub, ..)));
    }

    #[test]
    fn short_circuit_with_constant_lhs() {
        assert_eq!(fold_expr(Expr::binary(BinOp::LAnd, int(0), call())), int(0));
        assert_eq!(fold_expr(Expr::binary(BinOp::LOr, int(7), call())), int(1));
        // 1 && x normalizes x to 0/1.
        let folded = fold_expr(Expr::binary(BinOp::LAnd, int(1), var("x")));
        assert_eq!(folded, Expr::binary(BinOp::Ne, var("x"), int(0)));
        // 1 && (x < y) keeps the comparison as-is.
        let cmp = Expr::binary(BinOp::Lt, var("x"), var("y"));
        assert_eq!(fold_expr(Expr::binary(BinOp::LAnd, int(1), cmp.clone())), cmp);
    }

    #[test]
    fn commutative_constants_move_right() {
        let folded = fold_expr(Expr::binary(BinOp::Add, int(3), var("x")));
        assert_eq!(folded, Expr::binary(BinOp::Add, var("x"), int(3)));
    }

    #[test]
    fn dead_if_branches_are_selected() {
        let stmt = Stmt::If {
            cond: Expr::binary(BinOp::Lt, int(1), int(2)),
            then_body: vec![Stmt::Return(Some(int(1)))],
            else_body: vec![Stmt::Return(Some(int(2)))],
        };
        let folded = fold_stmt(stmt).unwrap();
        let Stmt::If { cond, then_body, else_body } = folded else { panic!("{folded:?}") };
        assert_eq!(cond, int(1));
        assert_eq!(then_body, vec![Stmt::Return(Some(int(1)))]);
        assert!(else_body.is_empty());
    }

    #[test]
    fn while_false_is_removed() {
        assert_eq!(fold_stmt(Stmt::While { cond: int(0), body: vec![Stmt::Break] }), None);
    }

    #[test]
    fn for_with_false_cond_keeps_init() {
        let stmt = Stmt::For {
            init: Some(Box::new(Stmt::Assign { name: "x".into(), value: int(1) })),
            cond: Some(int(0)),
            step: None,
            body: vec![Stmt::Break],
        };
        let folded = fold_stmt(stmt).unwrap();
        assert_eq!(folded, Stmt::Assign { name: "x".into(), value: int(1) });
    }

    #[test]
    fn pure_expression_statements_are_dropped() {
        assert_eq!(fold_stmt(Stmt::Expr(Expr::binary(BinOp::Add, var("x"), int(1)))), None);
        assert!(fold_stmt(Stmt::Expr(call())).is_some());
    }

    #[test]
    fn division_by_zero_folds_to_zero() {
        // Mini defines x/0 == 0 (matching the simulator), so folding is safe.
        assert_eq!(fold_expr(Expr::binary(BinOp::Div, int(5), int(0))), int(0));
    }
}
