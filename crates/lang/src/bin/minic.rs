//! `minic` — compile a Mini source file to Sim32 assembly on stdout.
//!
//! ```text
//! minic program.mini           # default -O1
//! minic -O2 program.mini
//! minic -O0 program.mini
//! ```

use dvp_lang::{compile, OptLevel};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opt = OptLevel::O1;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "-O0" => opt = OptLevel::O0,
            "-O1" => opt = OptLevel::O1,
            "-O2" => opt = OptLevel::O2,
            other if !other.starts_with('-') => path = Some(other.to_owned()),
            other => {
                eprintln!("minic: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: minic [-O0|-O1|-O2] <file.mini>");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("minic: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match compile(&source, opt) {
        Ok(asm) => {
            print!("{asm}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}:{e}");
            ExitCode::FAILURE
        }
    }
}
