//! End-to-end tests: compile Mini, assemble, execute, check output — at
//! every optimization level. A compiler bug that produces different output
//! at different levels fails here.

use dvp_asm::assemble;
use dvp_lang::{compile, OptLevel};
use dvp_sim::Machine;

/// Compiles and runs `src` at `opt`; returns the program output.
fn run_at(src: &str, opt: OptLevel) -> String {
    let asm = compile(src, opt).unwrap_or_else(|e| panic!("compile ({opt}): {e}"));
    let image = assemble(&asm).unwrap_or_else(|e| panic!("assemble ({opt}): {e}\n{asm}"));
    let mut machine = Machine::load(&image);
    machine.run(50_000_000).unwrap_or_else(|e| panic!("run ({opt}): {e}"));
    assert!(machine.halted(), "program did not halt at {opt}");
    machine.output_string()
}

/// Runs at all three levels and checks they agree with `expected`.
fn expect_output(src: &str, expected: &str) {
    for opt in OptLevel::ALL {
        let out = run_at(src, opt);
        assert_eq!(out, expected, "wrong output at {opt}");
    }
}

#[test]
fn arithmetic_and_printing() {
    expect_output("int main() { print_int(6 * 7); return 0; }", "42");
}

#[test]
fn operator_semantics_match_host() {
    // Each sub-expression is chosen to exercise signedness and wrapping.
    let src = "int main() {
        print_int(-7 / 2); print_char(' ');
        print_int(-7 % 2); print_char(' ');
        print_int(7 / -2); print_char(' ');
        print_int(2147483647 + 1); print_char(' ');
        print_int(-8 >> 1); print_char(' ');
        print_int(5 & 3); print_char(' ');
        print_int(5 | 3); print_char(' ');
        print_int(5 ^ 3); print_char(' ');
        print_int(1 << 10); print_char(' ');
        print_int(~0);
        return 0;
    }";
    expect_output(src, "-3 -1 -3 -2147483648 -4 1 7 6 1024 -1");
}

#[test]
fn runtime_operands_not_just_folding() {
    // Same operations, but on values the folder cannot see.
    let src = "int id(int x) { return x; }
    int main() {
        int a = id(-7); int b = id(2);
        print_int(a / b); print_char(' ');
        print_int(a % b); print_char(' ');
        print_int(a * b); print_char(' ');
        print_int(a >> 1); print_char(' ');
        print_int(id(1) << id(33));
        return 0;
    }";
    // 1 << 33 masks the count to 1 -> 2.
    expect_output(src, "-3 -1 -14 -4 2");
}

#[test]
fn division_by_zero_yields_zero() {
    let src = "int id(int x) { return x; }
    int main() {
        print_int(id(9) / id(0)); print_char(' ');
        print_int(id(9) % id(0));
        return 0;
    }";
    expect_output(src, "0 0");
}

#[test]
fn strength_reduced_division_is_exact() {
    // Negative dividends are where sra-based division goes wrong.
    let src = "int id(int x) { return x; }
    int main() {
        int i = -20;
        while (i <= 20) {
            print_int(id(i) / 4); print_char(',');
            print_int(id(i) % 4); print_char(' ');
            i = i + 1;
        }
        return 0;
    }";
    let expected: String = (-20..=20).map(|i: i32| format!("{},{} ", i / 4, i % 4)).collect();
    expect_output(src, &expected);
}

#[test]
fn comparisons_and_logic() {
    let src = "int id(int x) { return x; }
    int main() {
        print_int(id(3) < 4); print_int(id(4) < 4); print_int(id(5) < 4);
        print_int(id(3) <= 3); print_int(id(3) >= 4); print_int(id(3) > 2);
        print_int(id(3) == 3); print_int(id(3) != 3);
        print_int(id(2) && id(0)); print_int(id(2) && id(5));
        print_int(id(0) || id(0)); print_int(id(0) || id(9));
        print_int(!id(7)); print_int(!id(0));
        return 0;
    }";
    expect_output(src, "10010110010101");
}

#[test]
fn short_circuit_side_effects() {
    // The right side must not run when the left side decides.
    let src = "int hits = 0;
    int bump() { hits = hits + 1; return 1; }
    int main() {
        int a = 0 && bump();
        int b = 1 || bump();
        print_int(hits);
        int c = 1 && bump();
        int d = 0 || bump();
        print_int(hits);
        print_int(a + b + c + d);    // 0 + 1 + 1 + 1
        return 0;
    }";
    expect_output(src, "023");
}

#[test]
fn while_and_for_loops() {
    let src = "int main() {
        int total = 0;
        for (int i = 1; i <= 10; i = i + 1) { total = total + i; }
        print_int(total);
        print_char(' ');
        int n = 1;
        while (n < 100) { n = n * 2; }
        print_int(n);
        return 0;
    }";
    expect_output(src, "55 128");
}

#[test]
fn break_and_continue() {
    let src = "int main() {
        int sum = 0;
        for (int i = 0; i < 100; i = i + 1) {
            if (i % 2 == 0) { continue; }
            if (i > 10) { break; }
            sum = sum + i;    // 1+3+5+7+9
        }
        print_int(sum);
        return 0;
    }";
    expect_output(src, "25");
}

#[test]
fn nested_loops_with_break() {
    let src = "int main() {
        int count = 0;
        for (int i = 0; i < 5; i = i + 1) {
            for (int j = 0; j < 5; j = j + 1) {
                if (j > i) { break; }
                count = count + 1;
            }
        }
        print_int(count);    // 1+2+3+4+5
        return 0;
    }";
    expect_output(src, "15");
}

#[test]
fn recursion_fibonacci() {
    let src = "int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() { print_int(fib(15)); return 0; }";
    expect_output(src, "610");
}

#[test]
fn recursion_with_two_calls_in_expression() {
    // Exercises live-register save/restore around calls.
    let src = "int f(int n) { if (n == 0) { return 1; } return n * f(n - 1); }
    int main() { print_int(f(3) + 10 * f(4)); return 0; }";
    expect_output(src, "246");
}

#[test]
fn global_scalars_and_arrays() {
    let src = "int counter = 100;
    int table[5] = {10, 20, 30, 40, 50};
    int main() {
        counter = counter + table[2];
        table[4] = counter;
        print_int(table[4]);
        print_char(' ');
        print_int(table[0] + table[1]);
        return 0;
    }";
    expect_output(src, "130 30");
}

#[test]
fn local_arrays() {
    let src = "int main() {
        int squares[10];
        for (int i = 0; i < 10; i = i + 1) { squares[i] = i * i; }
        int sum = 0;
        for (int i = 0; i < 10; i = i + 1) { sum = sum + squares[i]; }
        print_int(sum);    // 285
        return 0;
    }";
    expect_output(src, "285");
}

#[test]
fn arrays_passed_by_reference() {
    let src = "int fill(int a[], int n) {
        for (int i = 0; i < n; i = i + 1) { a[i] = i + 1; }
        return 0;
    }
    int sum(int a[], int n) {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) { s = s + a[i]; }
        return s;
    }
    int main() {
        int data[8];
        fill(data, 8);
        print_int(sum(data, 8));
        return 0;
    }";
    expect_output(src, "36");
}

#[test]
fn global_array_passed_through_layers() {
    let src = "int g[4] = {1, 2, 3, 4};
    int inner(int a[]) { return a[3]; }
    int outer(int a[]) { return inner(a) * 10; }
    int main() { print_int(outer(g)); return 0; }";
    expect_output(src, "40");
}

#[test]
fn many_parameters_on_stack() {
    let src = "int sum6(int a, int b, int c, int d, int e, int f) {
        return a + b * 10 + c * 100 + d * 1000 + e * 10000 + f * 100000;
    }
    int main() { print_int(sum6(1, 2, 3, 4, 5, 6)); return 0; }";
    expect_output(src, "654321");
}

#[test]
fn shadowing_scopes() {
    let src = "int x = 1;
    int main() {
        print_int(x);
        int x = 2;
        print_int(x);
        if (x == 2) {
            int x = 3;
            print_int(x);
        }
        print_int(x);
        return 0;
    }";
    expect_output(src, "1232");
}

#[test]
fn for_scope_reuse() {
    let src = "int main() {
        for (int i = 0; i < 3; i = i + 1) { print_int(i); }
        for (int i = 9; i > 6; i = i - 1) { print_int(i); }
        return 0;
    }";
    expect_output(src, "012987");
}

#[test]
fn fall_off_end_returns_zero() {
    let src = "int f() { } int main() { print_int(f() + 7); return 0; }";
    expect_output(src, "7");
}

#[test]
fn return_value_of_main_ignored_but_halts() {
    expect_output("int main() { return 42; }", "");
}

#[test]
fn char_literals() {
    let src = "int main() {
        print_char('H'); print_char('i'); print_char('\\n');
        print_int('A');
        return 0;
    }";
    expect_output(src, "Hi\n65");
}

#[test]
fn deep_expression_nesting() {
    let src = "int id(int x) { return x; }
    int main() {
        print_int(id(1) + (id(2) + (id(3) + (id(4) + id(5)))));
        return 0;
    }";
    expect_output(src, "15");
}

#[test]
fn hash_function_workout() {
    // A miniature of what the workloads do: iterated hashing with mixed
    // operators. Checked against the same computation in Rust.
    let src = "int main() {
        int h = 2166136261;
        for (int i = 0; i < 32; i = i + 1) {
            h = (h ^ i) * 16777619;
            h = h ^ (h >> 7);
        }
        print_int(h);
        return 0;
    }";
    let mut h: i32 = 2166136261u32 as i32;
    for i in 0..32 {
        h = (h ^ i).wrapping_mul(16777619);
        h ^= h >> 7;
    }
    expect_output(src, &h.to_string());
}

#[test]
fn o2_promotion_does_not_break_recursion() {
    // Promoted s-registers must be saved/restored across recursive calls.
    let src = "int depth(int n, int acc) {
        int local = acc + n;
        if (n == 0) { return local; }
        int below = depth(n - 1, local);
        return below + local - local;    // forces `local` live across call
    }
    int main() { print_int(depth(10, 0)); return 0; }";
    expect_output(src, "55");
}

#[test]
fn sixty_four_locals() {
    // More locals than promotable registers.
    let mut decls = String::new();
    let mut sum = String::from("0");
    for i in 0..64 {
        decls.push_str(&format!("int v{i} = {i};\n"));
        sum.push_str(&format!(" + v{i}"));
    }
    let src = format!("int main() {{ {decls} print_int({sum}); return 0; }}");
    expect_output(&src, &(0..64).sum::<i32>().to_string());
}
