//! Property test: for random expression programs, the compiled output at
//! every optimization level matches a direct Rust evaluation with Mini
//! semantics. This pins the folder, the strength reducer, and the register
//! promoter to the language definition.

use dvp_asm::assemble;
use dvp_lang::ast::{BinOp, UnOp};
use dvp_lang::{compile, OptLevel};
use dvp_sim::Machine;
use proptest::prelude::*;

/// A tiny expression tree we can both render to Mini source and evaluate.
#[derive(Debug, Clone)]
enum E {
    Const(i32),
    Var(usize),
    Un(UnOp, Box<E>),
    Bin(BinOp, Box<E>, Box<E>),
}

const VAR_NAMES: [&str; 3] = ["a", "b", "c"];

impl E {
    fn eval(&self, vars: &[i32; 3]) -> i32 {
        match self {
            E::Const(v) => *v,
            E::Var(i) => vars[*i],
            E::Un(op, inner) => op.eval(inner.eval(vars)),
            E::Bin(op, lhs, rhs) => {
                // Mini's && and || short-circuit, but both sides here are
                // pure, so direct evaluation is equivalent.
                op.eval(lhs.eval(vars), rhs.eval(vars))
            }
        }
    }

    fn to_source(&self) -> String {
        match self {
            E::Const(v) => {
                if *v < 0 {
                    // Parenthesize negatives to avoid `--` ambiguities.
                    format!("(0 - {})", i64::from(*v).abs())
                } else {
                    v.to_string()
                }
            }
            E::Var(i) => VAR_NAMES[*i].to_owned(),
            E::Un(op, inner) => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::BitNot => "~",
                    UnOp::Not => "!",
                };
                format!("({sym}{})", inner.to_source())
            }
            E::Bin(op, lhs, rhs) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::LAnd => "&&",
                    BinOp::LOr => "||",
                };
                format!("({} {sym} {})", lhs.to_source(), rhs.to_source())
            }
        }
    }
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::LAnd),
        Just(BinOp::LOr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::BitNot), Just(UnOp::Not)]
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        // Mix small constants (immediate forms), powers of two (strength
        // reduction), and full-range values.
        (-40i32..40).prop_map(E::Const),
        prop_oneof![Just(2i32), Just(4), Just(8), Just(64), Just(1024)].prop_map(E::Const),
        any::<i32>().prop_map(E::Const),
        (0usize..3).prop_map(E::Var),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (arb_unop(), inner.clone()).prop_map(|(op, e)| E::Un(op, Box::new(e))),
            (arb_binop(), inner.clone(), inner).prop_map(|(op, l, r)| E::Bin(
                op,
                Box::new(l),
                Box::new(r)
            )),
        ]
    })
}

fn run_program(src: &str, opt: OptLevel) -> String {
    let asm = compile(src, opt).unwrap_or_else(|e| panic!("compile ({opt}): {e}\n{src}"));
    let image = assemble(&asm).unwrap_or_else(|e| panic!("assemble ({opt}): {e}"));
    let mut machine = Machine::load(&image);
    machine.run(5_000_000).unwrap_or_else(|e| panic!("run ({opt}): {e}"));
    machine.output_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_opt_levels_match_reference(
        expr in arb_expr(),
        vars in [any::<i32>(), any::<i32>(), any::<i32>()],
    ) {
        let expected = expr.eval(&vars).to_string();
        // `id()` keeps variable values opaque to the constant folder.
        let src = format!(
            "int id(int x) {{ return x; }}
             int main() {{
                 int a = id({});
                 int b = id({});
                 int c = id({});
                 print_int({});
                 return 0;
             }}",
            vars[0], vars[1], vars[2],
            expr.to_source(),
        );
        for opt in OptLevel::ALL {
            let out = run_program(&src, opt);
            prop_assert_eq!(&out, &expected, "opt level {} on {}", opt, expr.to_source());
        }
    }
}
