//! The realizable hybrid: finite stride + finite context + finite chooser.
//!
//! Section 4.2 of the paper argues for a hybrid — *"one should try to use a
//! stride predictor for most predictions, and use fcm prediction to get the
//! remaining 20%"* — because context prediction "is the more expensive
//! approach". The cost argument only bites once tables are finite, so this
//! module provides the hybrid at its natural design point: every structure
//! (both components and the chooser) is a fixed-size direct-mapped table.
//!
//! This is the destination of the paper's whole Section 4: measured
//! accuracy close to the idealized fcm at a fraction of its storage,
//! because the stride component covers the strides cheaply and the
//! context component's tables only need to win on the hard 20%.

use crate::finite::{FiniteFcmPredictor, FiniteStridePredictor, TableSpec};
use crate::Predictor;
use dvp_trace::{Pc, Value};

/// A fixed-size stride + context hybrid with a saturating-counter chooser.
///
/// All three structures are direct-mapped tables; the chooser is untagged
/// (chooser aliasing is benign — it only sways which component is asked
/// first). Components predict and update on every observation, exactly like
/// the unbounded [`HybridPredictor`](crate::HybridPredictor); the chooser
/// counter moves toward the component that was correct when the other was
/// wrong.
///
/// # Examples
///
/// ```
/// use dvp_core::{FiniteHybridPredictor, Predictor, TableSpec};
/// use dvp_trace::Pc;
///
/// let mut p = FiniteHybridPredictor::paper_geometry(10);
/// let pc = Pc(0x44);
/// // A stride run followed by a repeating non-stride: the hybrid rides the
/// // stride component first, then the chooser migrates to the context side.
/// for v in (0..20u64).map(|i| 4 * i) {
///     p.observe(pc, v);
/// }
/// assert_eq!(p.predict(pc), Some(80));
/// ```
#[derive(Debug, Clone)]
pub struct FiniteHybridPredictor {
    stride: FiniteStridePredictor,
    fcm: FiniteFcmPredictor,
    name: String,
    chooser_spec: TableSpec,
    chooser: Vec<i8>,
    chooser_max: i8,
}

impl FiniteHybridPredictor {
    /// Builds the hybrid with explicit geometries for the stride table, the
    /// FCM (VHT and VPT), and the chooser.
    #[must_use]
    pub fn new(
        stride_spec: TableSpec,
        order: usize,
        vht_spec: TableSpec,
        vpt_spec: TableSpec,
        chooser_spec: TableSpec,
    ) -> Self {
        let stride = FiniteStridePredictor::new(stride_spec);
        let fcm = FiniteFcmPredictor::new(order, vht_spec, vpt_spec);
        let name = format!("hybrid-{}+{}", stride.name(), fcm.name());
        FiniteHybridPredictor {
            stride,
            fcm,
            name,
            chooser_spec,
            chooser: vec![0; chooser_spec.slots()],
            chooser_max: 3,
        }
    }

    /// The balanced geometry used by the `table_sizing` example: stride,
    /// VHT and chooser tables of `2^index_bits` entries, an order-2 FCM,
    /// and a VPT four bits larger.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is outside `1..=24` (the VPT adds 4 bits and
    /// [`TableSpec::new`] caps at 28).
    #[must_use]
    pub fn paper_geometry(index_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits {index_bits} outside the sensible range 1..=24"
        );
        let spec = TableSpec::new(index_bits);
        FiniteHybridPredictor::new(spec, 2, spec, TableSpec::new(index_bits + 4), spec)
    }

    /// The stride component.
    #[must_use]
    pub fn stride(&self) -> &FiniteStridePredictor {
        &self.stride
    }

    /// The context (FCM) component.
    #[must_use]
    pub fn fcm(&self) -> &FiniteFcmPredictor {
        &self.fcm
    }

    /// Whether the chooser currently favours the context component for
    /// `pc`. Fresh slots favour the (cheaper, faster-learning) stride side.
    #[must_use]
    pub fn favours_fcm(&self, pc: Pc) -> bool {
        self.chooser[self.chooser_spec.index_of(pc)] > 0
    }

    /// Total storage in bits: both components plus the 2-bit-equivalent
    /// chooser counters.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.stride.storage_bits() + self.fcm.storage_bits() + self.chooser_spec.slots() as u64 * 2
    }
}

impl Predictor for FiniteHybridPredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        let (s, f) = (self.stride.predict(pc), self.fcm.predict(pc));
        if self.favours_fcm(pc) {
            f.or(s)
        } else {
            s.or(f)
        }
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let _ = self.step(pc, actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        // The fused feed loop: each component predicts and trains in one
        // table walk (its own fused step), and the chooser slot is indexed
        // once for both the arbitration read and the training write.
        let s_pred = self.stride.step(pc, actual);
        let f_pred = self.fcm.step(pc, actual);
        let slot = &mut self.chooser[self.chooser_spec.index_of(pc)];
        let prediction = if *slot > 0 { f_pred.or(s_pred) } else { s_pred.or(f_pred) };
        let s_correct = s_pred == Some(actual);
        let f_correct = f_pred == Some(actual);
        if s_correct != f_correct {
            *slot = if f_correct {
                (*slot + 1).min(self.chooser_max)
            } else {
                (*slot - 1).max(-self.chooser_max)
            };
        }
        prediction
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.stride.static_entries().max(self.fcm.static_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: Pc = Pc(0x400100);

    #[test]
    fn rides_stride_component_on_affine_sequences() {
        let mut p = FiniteHybridPredictor::paper_geometry(8);
        let mut correct = 0;
        for v in (0..50u64).map(|i| 10 + 7 * i) {
            correct += u32::from(p.observe(PC, v));
        }
        assert!(correct >= 46, "stride side must carry affine runs: {correct}");
        assert!(!p.favours_fcm(PC), "no reason to leave the stride side");
    }

    #[test]
    fn chooser_migrates_to_fcm_on_repeated_non_strides() {
        let mut p = FiniteHybridPredictor::paper_geometry(8);
        let period = [11u64, 3, 99, 20];
        for _ in 0..12 {
            for &v in &period {
                p.observe(PC, v);
            }
        }
        assert!(p.favours_fcm(PC), "context side wins repeated non-strides");
        // And in steady state predictions are correct.
        let mut correct = 0;
        for _ in 0..3 {
            for &v in &period {
                correct += u32::from(p.observe(PC, v));
            }
        }
        assert_eq!(correct, 12);
    }

    #[test]
    fn beats_both_components_on_mixed_pcs() {
        // One PC strides (fcm cannot extrapolate), another rotates a
        // non-stride period (stride cannot follow): the hybrid must beat
        // either component alone on the combined trace.
        let stride_pc = Pc(0x100);
        let rotate_pc = Pc(0x104);
        let period = [5u64, 77, 13];
        let feed = |p: &mut dyn Predictor| {
            let mut correct = 0u32;
            for i in 0..300u64 {
                correct += u32::from(p.observe(stride_pc, 3 * i));
                correct += u32::from(p.observe(rotate_pc, period[(i % 3) as usize]));
            }
            correct
        };
        let hybrid = feed(&mut FiniteHybridPredictor::paper_geometry(10));
        let stride_only = feed(&mut FiniteStridePredictor::new(TableSpec::new(10)));
        let fcm_only =
            feed(&mut FiniteFcmPredictor::new(2, TableSpec::new(10), TableSpec::new(14)));
        assert!(hybrid > stride_only, "hybrid {hybrid} vs stride {stride_only}");
        assert!(hybrid > fcm_only, "hybrid {hybrid} vs fcm {fcm_only}");
    }

    #[test]
    fn falls_back_across_components_when_one_has_no_prediction() {
        let mut p = FiniteHybridPredictor::paper_geometry(6);
        // One observation: the stride side already predicts (last + 0), the
        // fcm side has no full history. The hybrid must still predict.
        p.update(PC, 42);
        assert_eq!(p.predict(PC), Some(42));
    }

    #[test]
    fn storage_accounts_for_all_three_structures() {
        let p = FiniteHybridPredictor::paper_geometry(8);
        let sum = p.stride().storage_bits() + p.fcm().storage_bits() + 256 * 2;
        assert_eq!(p.storage_bits(), sum);
    }

    #[test]
    fn name_is_composed() {
        let p = FiniteHybridPredictor::paper_geometry(4);
        assert_eq!(p.name(), "hybrid-s2-16+fcm2-vht16-vpt256");
    }

    #[test]
    #[should_panic(expected = "sensible range")]
    fn rejects_oversized_geometry() {
        let _ = FiniteHybridPredictor::paper_geometry(25);
    }
}
