//! Per-instruction-type hybrid prediction.
//!
//! Section 4.1 of the paper observes that computational predictability
//! varies with instruction type ("its performance can be further improved
//! if the prediction function matches the functionality of the predicted
//! instruction") and Section 4.2 adds that "for non-add/subtract
//! instructions the contribution of stride prediction is smaller... this
//! suggests a hybrid predictor based on instruction types". This module
//! provides that design.

use crate::{FcmPredictor, Predictor, ShiftPredictor, StridePredictor};
use dvp_trace::{InstrCategory, PcId, TraceRecord, Value};

/// A predictor that may use the full trace record (including the
/// instruction category), not just the PC.
///
/// Every plain [`Predictor`] is a `RecordPredictor` that ignores the
/// category, so the two kinds compose freely in experiment harnesses.
pub trait RecordPredictor {
    /// Predicts the record's value before it is revealed.
    fn predict_record(&self, rec: &TraceRecord) -> Option<Value>;

    /// Updates tables with the record's actual value.
    fn update_record(&mut self, rec: &TraceRecord);

    /// Predict-then-update; returns whether the prediction was correct.
    ///
    /// The default is the slow path (a full predict and a full update);
    /// implementations route it through their fused step.
    fn observe_record(&mut self, rec: &TraceRecord) -> bool {
        let correct = self.predict_record(rec) == Some(rec.value);
        self.update_record(rec);
        correct
    }

    /// [`observe_record`](RecordPredictor::observe_record) on the dense
    /// surface: `id` is `rec.pc`'s dense id under the caller's interner.
    fn observe_record_id(&mut self, id: PcId, rec: &TraceRecord) -> bool {
        let _ = id;
        self.observe_record(rec)
    }

    /// Short display name.
    fn record_name(&self) -> String;
}

impl<P: Predictor> RecordPredictor for P {
    fn predict_record(&self, rec: &TraceRecord) -> Option<Value> {
        self.predict(rec.pc)
    }

    fn update_record(&mut self, rec: &TraceRecord) {
        self.update(rec.pc, rec.value);
    }

    fn observe_record(&mut self, rec: &TraceRecord) -> bool {
        self.observe(rec.pc, rec.value)
    }

    fn observe_record_id(&mut self, id: PcId, rec: &TraceRecord) -> bool {
        self.observe_id(id, rec.pc, rec.value)
    }

    fn record_name(&self) -> String {
        self.name().to_owned()
    }
}

/// A hybrid that routes each instruction to a component chosen by its
/// category: the prediction function matches the instruction's
/// functionality.
///
/// The default configuration implements the paper's suggestions directly:
/// stride prediction for add/subtract results, a shift-matched
/// computational predictor for shifts, and context-based (FCM) prediction
/// for everything else.
///
/// # Examples
///
/// ```
/// use dvp_core::{RecordPredictor, TypedHybridPredictor};
/// use dvp_trace::{InstrCategory, Pc, TraceRecord};
///
/// let mut hybrid = TypedHybridPredictor::paper_suggestion(2);
/// let mut correct = 0;
/// for i in 0..50u64 {
///     // An induction variable: routed to the stride component.
///     let rec = TraceRecord::new(Pc(0x10), InstrCategory::AddSub, 4 * i);
///     correct += u32::from(hybrid.observe_record(&rec));
/// }
/// assert!(correct >= 45);
/// ```
pub struct TypedHybridPredictor {
    components: [Box<dyn Predictor>; InstrCategory::ALL.len()],
}

impl std::fmt::Debug for TypedHybridPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.components.iter().map(|c| c.name().to_owned()).collect();
        f.debug_struct("TypedHybridPredictor").field("components", &names).finish()
    }
}

impl TypedHybridPredictor {
    /// Builds a typed hybrid from one component per category, in
    /// [`InstrCategory::ALL`] order.
    #[must_use]
    pub fn from_components(components: [Box<dyn Predictor>; 8]) -> Self {
        TypedHybridPredictor { components }
    }

    /// The configuration the paper's Section 4.1 discussion implies:
    ///
    /// | category | component |
    /// |---|---|
    /// | AddSub | two-delta stride (operation matches) |
    /// | Shift | shift-matched computational predictor |
    /// | everything else | order-`fcm_order` FCM |
    #[must_use]
    pub fn paper_suggestion(fcm_order: usize) -> Self {
        let component = |cat: InstrCategory| -> Box<dyn Predictor> {
            match cat {
                InstrCategory::AddSub => Box::new(StridePredictor::two_delta()),
                InstrCategory::Shift => Box::new(ShiftPredictor::new()),
                _ => Box::new(FcmPredictor::new(fcm_order)),
            }
        };
        TypedHybridPredictor { components: InstrCategory::ALL.map(component) }
    }

    /// The component serving `category`.
    #[must_use]
    pub fn component(&self, category: InstrCategory) -> &dyn Predictor {
        self.components[category.index()].as_ref()
    }
}

impl RecordPredictor for TypedHybridPredictor {
    fn predict_record(&self, rec: &TraceRecord) -> Option<Value> {
        self.components[rec.category.index()].predict(rec.pc)
    }

    fn update_record(&mut self, rec: &TraceRecord) {
        self.components[rec.category.index()].update(rec.pc, rec.value);
    }

    fn observe_record(&mut self, rec: &TraceRecord) -> bool {
        self.components[rec.category.index()].observe(rec.pc, rec.value)
    }

    fn observe_record_id(&mut self, id: PcId, rec: &TraceRecord) -> bool {
        // Components never share a PC across categories (a static
        // instruction has one category), so trace-wide dense ids are
        // consistent within each component's slot vector.
        self.components[rec.category.index()].observe_id(id, rec.pc, rec.value)
    }

    fn record_name(&self) -> String {
        "typed-hybrid".to_owned()
    }
}

/// Runs a whole trace through a [`RecordPredictor`]; returns
/// `(correct, total)`.
pub fn run_trace_records<'a, P, I>(predictor: &mut P, records: I) -> (u64, u64)
where
    P: RecordPredictor + ?Sized,
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut correct = 0u64;
    let mut total = 0u64;
    for rec in records {
        if predictor.observe_record(rec) {
            correct += 1;
        }
        total += 1;
    }
    (correct, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LastValuePredictor;
    use dvp_trace::Pc;

    fn rec(pc: u64, cat: InstrCategory, value: Value) -> TraceRecord {
        TraceRecord::new(Pc(pc), cat, value)
    }

    #[test]
    fn plain_predictors_are_record_predictors() {
        let mut p = LastValuePredictor::new();
        let r = rec(4, InstrCategory::Loads, 9);
        assert!(!p.observe_record(&r));
        assert!(p.observe_record(&r));
        assert_eq!(p.record_name(), "l");
    }

    #[test]
    fn routes_by_category() {
        let mut hybrid = TypedHybridPredictor::paper_suggestion(2);
        // Same PC appears under two categories (cannot happen in a real
        // trace, but isolates the routing): each component sees only its
        // own stream.
        for i in 0..10u64 {
            hybrid.update_record(&rec(4, InstrCategory::AddSub, i));
            hybrid.update_record(&rec(4, InstrCategory::Logic, 77));
        }
        assert_eq!(hybrid.predict_record(&rec(4, InstrCategory::AddSub, 0)), Some(10));
        assert_eq!(hybrid.predict_record(&rec(4, InstrCategory::Logic, 0)), Some(77));
    }

    #[test]
    fn shift_component_handles_geometric_shift_results() {
        let mut hybrid = TypedHybridPredictor::paper_suggestion(1);
        let mut correct = 0;
        for i in 0..20u64 {
            let r = rec(8, InstrCategory::Shift, 1u64 << (i % 16));
            correct += u64::from(hybrid.observe_record(&r));
        }
        // The shift component learns doubling quickly; the wrap back to 1
        // after 1<<15 costs at most a couple of misses.
        assert!(correct >= 12, "{correct}");
    }

    #[test]
    fn beats_uniform_stride_on_mixed_streams() {
        // A stream where AddSub strides, Logic repeats a small set, and
        // Shift doubles: the typed hybrid should beat uniform stride.
        let mut records = Vec::new();
        for i in 0..300u64 {
            records.push(rec(0x10, InstrCategory::AddSub, 3 * i));
            records.push(rec(0x20, InstrCategory::Logic, [5u64, 9, 12][i as usize % 3]));
            records.push(rec(0x30, InstrCategory::Shift, 1u64 << (i % 12)));
        }
        let mut typed = TypedHybridPredictor::paper_suggestion(2);
        let (typed_correct, total) = run_trace_records(&mut typed, records.iter());
        let mut stride = StridePredictor::two_delta();
        let (stride_correct, _) = run_trace_records(&mut stride, records.iter());
        assert!(
            typed_correct > stride_correct,
            "typed {typed_correct} vs stride {stride_correct} of {total}"
        );
    }

    #[test]
    fn component_accessor_and_debug() {
        let hybrid = TypedHybridPredictor::paper_suggestion(3);
        assert_eq!(hybrid.component(InstrCategory::AddSub).name(), "s2");
        assert_eq!(hybrid.component(InstrCategory::Shift).name(), "shift");
        assert_eq!(hybrid.component(InstrCategory::Loads).name(), "fcm3");
        assert!(format!("{hybrid:?}").contains("typed") || format!("{hybrid:?}").contains("s2"));
        assert_eq!(hybrid.record_name(), "typed-hybrid");
    }

    #[test]
    fn from_components_preserves_order() {
        let components: [Box<dyn Predictor>; 8] =
            InstrCategory::ALL.map(|_| Box::new(LastValuePredictor::new()) as Box<dyn Predictor>);
        let hybrid = TypedHybridPredictor::from_components(components);
        for cat in InstrCategory::ALL {
            assert_eq!(hybrid.component(cat).name(), "l");
        }
    }
}
