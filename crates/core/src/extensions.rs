//! Computational predictors beyond last-value and stride — the directions
//! the paper sketches in Sections 2.1 and 4.1 but does not evaluate:
//!
//! * [`ShiftPredictor`] — "for shifts a computational predictor might shift
//!   the last value according to the last shift distance to arrive at a
//!   prediction" (Section 4.1);
//! * [`TwoLevelStridePredictor`] — "one could use two different strides, an
//!   'inner' one and an 'outer' one – typically corresponding to loop nests
//!   – to eliminate the mispredictions that occur at the beginning of
//!   repeating stride sequences" (Section 2.1).

use crate::table::PcTable;
use crate::Predictor;
use dvp_trace::{Pc, PcId, Value};

/// Finds the shift distance `k` (`-63..=63`, negative = right shift) such
/// that shifting `from` by `k` yields `to`, if any. Zero inputs and the
/// identity are excluded (they carry no shift information).
fn shift_distance(from: Value, to: Value) -> Option<i8> {
    if from == 0 || to == 0 || from == to {
        return None;
    }
    for k in 1..64u32 {
        if from << k == to {
            return Some(k as i8);
        }
        if from >> k == to {
            return Some(-(k as i8));
        }
    }
    None
}

fn apply_shift(value: Value, k: i8) -> Value {
    if k >= 0 {
        value.wrapping_shl(u32::from(k.unsigned_abs()))
    } else {
        value.wrapping_shr(u32::from(k.unsigned_abs()))
    }
}

#[derive(Debug, Clone)]
struct ShiftEntry {
    last: Value,
    /// The shift used for predictions (adopted after two sightings, like
    /// the two-delta stride rule).
    shift: Option<i8>,
    /// Most recently observed shift.
    last_shift: Option<i8>,
}

/// A computational predictor whose operation matches shift instructions:
/// it predicts `last << k` (or `>>`), where `k` is the shift distance
/// relating the two most recent values.
///
/// Like the two-delta stride predictor, the prediction shift is replaced
/// only when the same new distance is observed twice in a row. When no
/// shift relation is present, it degenerates to last-value prediction —
/// matching how the stride predictor degenerates on constants.
///
/// # Examples
///
/// ```
/// use dvp_core::{Predictor, ShiftPredictor};
/// use dvp_trace::Pc;
///
/// let mut p = ShiftPredictor::new();
/// let pc = Pc(0x44);
/// for v in [1u64, 2, 4, 8] {
///     p.update(pc, v);
/// }
/// assert_eq!(p.predict(pc), Some(16));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShiftPredictor {
    table: PcTable<ShiftEntry>,
}

impl ShiftPredictor {
    /// Creates an empty shift predictor.
    #[must_use]
    pub fn new() -> Self {
        ShiftPredictor::default()
    }

    fn predict_entry(entry: &ShiftEntry) -> Value {
        match entry.shift {
            Some(k) => apply_shift(entry.last, k),
            None => entry.last,
        }
    }

    fn update_entry(e: &mut ShiftEntry, actual: Value) {
        let observed = shift_distance(e.last, actual);
        if observed.is_some() && observed == e.last_shift {
            e.shift = observed;
        } else if observed.is_none() && e.last_shift.is_none() {
            // Two consecutive non-shift transitions: fall back to
            // last-value behaviour.
            e.shift = None;
        }
        e.last_shift = observed;
        e.last = actual;
    }

    /// The fused slot step: one state access for predict + update.
    fn step_slot(slot: &mut Option<ShiftEntry>, actual: Value) -> Option<Value> {
        match slot {
            Some(entry) => {
                let prediction = Self::predict_entry(entry);
                Self::update_entry(entry, actual);
                Some(prediction)
            }
            None => {
                *slot = Some(ShiftEntry { last: actual, shift: None, last_shift: None });
                None
            }
        }
    }
}

impl Predictor for ShiftPredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        self.table.get(pc).map(Self::predict_entry)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let _ = Self::step_slot(self.table.slot_mut(pc), actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.table.slot_mut(pc), actual)
    }

    fn name(&self) -> &str {
        "shift"
    }

    fn static_entries(&self) -> usize {
        self.table.len()
    }

    fn reserve_ids(&mut self, n: usize) {
        self.table.reserve(n);
    }

    #[inline]
    fn predict_id(&self, id: PcId, _pc: Pc) -> Option<Value> {
        self.table.get_dense(id).map(Self::predict_entry)
    }

    #[inline]
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let _ = Self::step_slot(self.table.dense_slot_mut(id, pc), actual);
    }

    #[inline]
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.table.dense_slot_mut(id, pc), actual)
    }
}

#[derive(Debug, Clone)]
struct TwoLevelEntry {
    last: Value,
    // Inner stride, two-delta style.
    inner: Value,
    inner_last: Value,
    // Learned period: values per inner run.
    period: Option<u64>,
    last_period: Option<u64>,
    steps_in_run: u64,
    // Outer stride: delta between successive run starts, two-delta style.
    run_start: Value,
    outer: Option<Value>,
    outer_last: Option<Value>,
}

/// A two-level (inner/outer) stride predictor for nested-loop value
/// patterns such as `0 1 2 3, 100 101 102 103, 200 …`.
///
/// The inner stride behaves exactly like the two-delta stride predictor.
/// In addition, the predictor learns the *period* (run length) and the
/// *outer stride* (delta between run start values); once both have been
/// confirmed twice, the wrap-around value is predicted too — eliminating
/// the one-miss-per-iteration floor of plain stride prediction on repeated
/// stride sequences.
///
/// # Examples
///
/// ```
/// use dvp_core::{Predictor, TwoLevelStridePredictor};
/// use dvp_trace::Pc;
///
/// let mut p = TwoLevelStridePredictor::new();
/// let pc = Pc(0x88);
/// // Four runs of 0..4 stepped by 100 teach the period and outer stride
/// // (each needs two confirming run boundaries)...
/// for run in 0..4u64 {
///     for i in 0..4u64 {
///         p.update(pc, 100 * run + i);
///     }
/// }
/// // ...so the *start of the next run* is predicted correctly.
/// assert_eq!(p.predict(pc), Some(400));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TwoLevelStridePredictor {
    table: PcTable<TwoLevelEntry>,
}

impl TwoLevelStridePredictor {
    /// Creates an empty two-level stride predictor.
    #[must_use]
    pub fn new() -> Self {
        TwoLevelStridePredictor::default()
    }

    fn predict_entry(e: &TwoLevelEntry) -> Value {
        if let (Some(period), Some(outer)) = (e.period, e.outer) {
            // At the end of a confirmed run, predict the next run's start.
            if e.steps_in_run + 1 >= period {
                return e.run_start.wrapping_add(outer);
            }
        }
        e.last.wrapping_add(e.inner)
    }

    /// The fused slot step: one state access for predict + update.
    fn step_slot(slot: &mut Option<TwoLevelEntry>, actual: Value) -> Option<Value> {
        let prediction = slot.as_ref().map(Self::predict_entry);
        let entry = slot.get_or_insert(TwoLevelEntry {
            last: actual,
            inner: 0,
            inner_last: 0,
            period: None,
            last_period: None,
            steps_in_run: 0,
            run_start: actual,
            outer: None,
            outer_last: None,
        });
        Self::update_entry(entry, actual);
        prediction
    }

    fn update_entry(entry: &mut TwoLevelEntry, actual: Value) {
        if entry.steps_in_run == 0 && entry.last == actual && entry.inner == 0 {
            // Freshly inserted entry (or a constant start): nothing to
            // learn yet.
            return;
        }
        let delta = actual.wrapping_sub(entry.last);
        if delta == entry.inner || entry.inner == 0 && delta == entry.inner_last {
            // Continuing the inner run (or confirming a new inner stride).
            if delta == entry.inner_last {
                entry.inner = delta;
            }
            entry.inner_last = delta;
            entry.steps_in_run += 1;
        } else {
            // Run boundary: learn period and outer stride two-delta style.
            let run_len = entry.steps_in_run + 1;
            if Some(run_len) == entry.last_period {
                entry.period = Some(run_len);
            }
            entry.last_period = Some(run_len);

            let outer_delta = actual.wrapping_sub(entry.run_start);
            if Some(outer_delta) == entry.outer_last {
                entry.outer = Some(outer_delta);
            }
            entry.outer_last = Some(outer_delta);

            entry.run_start = actual;
            entry.steps_in_run = 0;
            entry.inner_last = delta;
        }
        entry.last = actual;
    }
}

impl Predictor for TwoLevelStridePredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        self.table.get(pc).map(Self::predict_entry)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let _ = Self::step_slot(self.table.slot_mut(pc), actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.table.slot_mut(pc), actual)
    }

    fn name(&self) -> &str {
        "s2level"
    }

    fn static_entries(&self) -> usize {
        self.table.len()
    }

    fn reserve_ids(&mut self, n: usize) {
        self.table.reserve(n);
    }

    #[inline]
    fn predict_id(&self, id: PcId, _pc: Pc) -> Option<Value> {
        self.table.get_dense(id).map(Self::predict_entry)
    }

    #[inline]
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let _ = Self::step_slot(self.table.dense_slot_mut(id, pc), actual);
    }

    #[inline]
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.table.dense_slot_mut(id, pc), actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequences::{measure_learning, repeated_stride};
    use crate::StridePredictor;

    const PC: Pc = Pc(0x700);

    #[test]
    fn shift_distance_finds_left_and_right() {
        assert_eq!(shift_distance(1, 8), Some(3));
        assert_eq!(shift_distance(8, 1), Some(-3));
        assert_eq!(shift_distance(3, 48), Some(4));
        assert_eq!(shift_distance(5, 7), None);
        assert_eq!(shift_distance(0, 8), None);
        assert_eq!(shift_distance(4, 4), None);
    }

    #[test]
    fn shift_predictor_learns_doubling() {
        let mut p = ShiftPredictor::new();
        let seq: Vec<Value> = (0..20).map(|i| 1u64 << i).collect();
        let learning = measure_learning(&mut p, &seq);
        // Two values set last_shift, the third confirms: correct from then.
        assert!(learning.learning_time.unwrap() <= 3);
        assert!(learning.learning_degree > 0.99);
    }

    #[test]
    fn shift_predictor_learns_halving() {
        let mut p = ShiftPredictor::new();
        for v in [4096u64, 1024, 256, 64] {
            p.update(PC, v);
        }
        assert_eq!(p.predict(PC), Some(16));
    }

    #[test]
    fn shift_predictor_beats_stride_on_geometric_sequences() {
        let seq: Vec<Value> = (0..30).map(|i| 3u64 << i).collect();
        let shift = measure_learning(&mut ShiftPredictor::new(), &seq);
        let stride = measure_learning(&mut StridePredictor::two_delta(), &seq);
        assert!(shift.accuracy() > 0.8, "{}", shift.accuracy());
        assert!(stride.accuracy() < 0.1, "{}", stride.accuracy());
    }

    #[test]
    fn shift_predictor_degenerates_to_last_value_on_constants() {
        let mut p = ShiftPredictor::new();
        for _ in 0..5 {
            p.update(PC, 42);
        }
        assert_eq!(p.predict(PC), Some(42));
    }

    #[test]
    fn shift_predictor_does_not_adopt_single_outlier() {
        let mut p = ShiftPredictor::new();
        for v in [7u64, 7, 7, 14, 7, 7] {
            p.update(PC, v);
        }
        // One doubling among constants must not switch it to shifting.
        assert_eq!(p.predict(PC), Some(7));
    }

    #[test]
    fn two_level_eliminates_wrap_misses() {
        // Plain stride gets one miss per period on repeated strides; the
        // two-level predictor should reach (nearly) zero in steady state.
        let seq = repeated_stride(1, 1, 6, 240);
        let two_level = measure_learning(&mut TwoLevelStridePredictor::new(), &seq);
        let plain = measure_learning(&mut StridePredictor::two_delta(), &seq);
        assert!(two_level.learning_degree > 0.97, "two-level LD {}", two_level.learning_degree);
        assert!(plain.learning_degree < 0.90, "plain LD {}", plain.learning_degree);
    }

    #[test]
    fn two_level_learns_outer_stride() {
        let mut p = TwoLevelStridePredictor::new();
        let mut seq = Vec::new();
        for run in 0..8u64 {
            for i in 0..5u64 {
                seq.push(1000 * run + i);
            }
        }
        let learning = measure_learning(&mut p, &seq);
        // Period and outer stride each need two boundaries to confirm;
        // after that every value, including wrap-arounds, predicts.
        assert!(learning.learning_degree > 0.9, "{learning:?}");
    }

    #[test]
    fn two_level_still_handles_plain_strides() {
        let mut p = TwoLevelStridePredictor::new();
        let seq: Vec<Value> = (0..50).map(|i| 10 + 3 * i).collect();
        let learning = measure_learning(&mut p, &seq);
        assert!(learning.learning_degree > 0.99);
    }

    #[test]
    fn two_level_handles_constants() {
        let mut p = TwoLevelStridePredictor::new();
        for _ in 0..10 {
            p.update(PC, 5);
        }
        assert_eq!(p.predict(PC), Some(5));
    }

    #[test]
    fn names_and_entries() {
        let mut s = ShiftPredictor::new();
        let mut t = TwoLevelStridePredictor::new();
        s.update(PC, 1);
        t.update(PC, 1);
        assert_eq!(s.name(), "shift");
        assert_eq!(t.name(), "s2level");
        assert_eq!(s.static_entries(), 1);
        assert_eq!(t.static_entries(), 1);
    }
}
