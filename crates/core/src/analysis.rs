//! Accuracy accounting and value-characteristic analyses (Sections 4.1–4.3).

use crate::set::PcTally;
use dvp_trace::{InstrCategory, Pc, TraceRecord, Value};
use std::collections::{HashMap, HashSet};

const N_CATEGORIES: usize = InstrCategory::ALL.len();

/// Per-category and overall prediction accuracy accounting.
///
/// The paper's accuracy metric is *correct predictions / all predicted
/// instructions*; an instruction for which the predictor had no basis
/// (returned `None`) counts against accuracy.
///
/// # Examples
///
/// ```
/// use dvp_core::AccuracyTracker;
/// use dvp_trace::InstrCategory;
///
/// let mut acc = AccuracyTracker::new();
/// acc.record(InstrCategory::AddSub, true);
/// acc.record(InstrCategory::AddSub, false);
/// assert_eq!(acc.accuracy(Some(InstrCategory::AddSub)), 0.5);
/// assert_eq!(acc.total(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AccuracyTracker {
    predicted: [u64; N_CATEGORIES],
    correct: [u64; N_CATEGORIES],
}

impl AccuracyTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        AccuracyTracker::default()
    }

    /// Records the outcome of one prediction.
    pub fn record(&mut self, category: InstrCategory, correct: bool) {
        self.predicted[category.index()] += 1;
        if correct {
            self.correct[category.index()] += 1;
        }
    }

    /// Number of predictions in `category` (or overall with `None`).
    #[must_use]
    pub fn predicted(&self, category: Option<InstrCategory>) -> u64 {
        match category {
            Some(c) => self.predicted[c.index()],
            None => self.predicted.iter().sum(),
        }
    }

    /// Number of correct predictions in `category` (or overall).
    #[must_use]
    pub fn correct(&self, category: Option<InstrCategory>) -> u64 {
        match category {
            Some(c) => self.correct[c.index()],
            None => self.correct.iter().sum(),
        }
    }

    /// Accuracy in `[0, 1]` for `category` (or overall with `None`);
    /// 0 when nothing was predicted.
    #[must_use]
    pub fn accuracy(&self, category: Option<InstrCategory>) -> f64 {
        let denom = self.predicted(category);
        if denom == 0 {
            0.0
        } else {
            self.correct(category) as f64 / denom as f64
        }
    }

    /// Total predictions across all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.predicted(None)
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &AccuracyTracker) {
        for i in 0..N_CATEGORIES {
            self.predicted[i] += other.predicted[i];
            self.correct[i] += other.correct[i];
        }
    }
}

/// The unique-value buckets of Figure 10: 1, 4, 16, …, 65536, >65536.
pub const VALUE_BUCKETS: [u64; 9] = [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536];

/// Per-static-instruction unique-value profile (Section 4.3, Figure 10).
///
/// Tracks, for every static instruction, the set of distinct values it has
/// produced and its dynamic execution count, then buckets static
/// instructions (and, weighted, dynamic instructions) by how many unique
/// values they generate.
///
/// # Examples
///
/// ```
/// use dvp_core::ValueProfile;
/// use dvp_trace::{InstrCategory, Pc, TraceRecord};
///
/// let mut profile = ValueProfile::new();
/// for i in 0..10 {
///     profile.record(&TraceRecord::new(Pc(0), InstrCategory::AddSub, i % 2));
/// }
/// // PC 0 produced 2 unique values over 10 dynamic executions.
/// let (static_hist, dynamic_hist) = profile.histograms(None);
/// assert_eq!(static_hist[1], 1); // bucket "≤4 values" holds the one PC
/// assert_eq!(dynamic_hist[1], 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ValueProfile {
    entries: HashMap<Pc, (InstrCategory, HashSet<Value>, u64)>,
}

impl ValueProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        ValueProfile::default()
    }

    /// Folds one trace record into the profile.
    pub fn record(&mut self, rec: &TraceRecord) {
        let entry = self.entries.entry(rec.pc).or_insert_with(|| (rec.category, HashSet::new(), 0));
        entry.1.insert(rec.value);
        entry.2 += 1;
    }

    /// Number of distinct static instructions profiled.
    #[must_use]
    pub fn static_count(&self) -> usize {
        self.entries.len()
    }

    /// Bucket index in [`VALUE_BUCKETS`] for a unique-value count
    /// (`VALUE_BUCKETS.len()` = the ">65536" overflow bucket).
    #[must_use]
    pub fn bucket_of(unique: u64) -> usize {
        VALUE_BUCKETS.iter().position(|&b| unique <= b).unwrap_or(VALUE_BUCKETS.len())
    }

    /// Histograms over the buckets of [`VALUE_BUCKETS`] plus the overflow
    /// bucket: `(static counts, dynamic-weighted counts)`, restricted to
    /// `category` (or everything with `None`).
    #[must_use]
    pub fn histograms(&self, category: Option<InstrCategory>) -> (Vec<u64>, Vec<u64>) {
        let n = VALUE_BUCKETS.len() + 1;
        let mut static_hist = vec![0u64; n];
        let mut dynamic_hist = vec![0u64; n];
        for (cat, values, dyn_count) in self.entries.values() {
            if category.is_some_and(|c| c != *cat) {
                continue;
            }
            let bucket = Self::bucket_of(values.len() as u64);
            static_hist[bucket] += 1;
            dynamic_hist[bucket] += *dyn_count;
        }
        (static_hist, dynamic_hist)
    }

    /// Fraction of static instructions generating exactly one value
    /// (the paper reports > 50%).
    #[must_use]
    pub fn single_value_static_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let ones = self.entries.values().filter(|(_, v, _)| v.len() == 1).count();
        ones as f64 / self.entries.len() as f64
    }
}

impl Extend<TraceRecord> for ValueProfile {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        for rec in iter {
            self.record(&rec);
        }
    }
}

/// One point of the Figure 9 curve: after including the best `static_pct`
/// percent of static instructions, `improvement_pct` percent of the total
/// FCM-over-stride improvement is covered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImprovementPoint {
    /// Percent (0–100) of the improving static instructions included.
    pub static_pct: f64,
    /// Percent (0–100) of the total improvement covered.
    pub improvement_pct: f64,
}

/// Builds the Figure 9 cumulative-improvement curve from per-PC tallies.
///
/// `better` and `worse` index into each [`PcTally::correct`] vector (for the
/// paper: FCM = index 2, stride = index 1 of the
/// [`PredictorSet::paper_trio`](crate::PredictorSet::paper_trio)).
/// Only static instructions where `better` strictly beats `worse`
/// participate, mirroring the paper's construction ("a list of static
/// instructions for which the fcm predictor gives better performance...
/// sorted in descending order of improvement").
///
/// Tallies are keyed by dense ids upstream; the curve needs neither PCs
/// nor ids — any slice of per-static-instruction tallies works.
///
/// Returns points at each integer percent of static instructions, plus the
/// exact endpoint.
#[must_use]
pub fn improvement_curve(
    tallies: &[PcTally],
    better: usize,
    worse: usize,
    category: Option<InstrCategory>,
) -> Vec<ImprovementPoint> {
    let mut gains: Vec<u64> = tallies
        .iter()
        .filter(|t| category.is_none() || t.category == category)
        .filter_map(|t| {
            let b = t.correct.get(better).copied().unwrap_or(0);
            let w = t.correct.get(worse).copied().unwrap_or(0);
            (b > w).then(|| b - w)
        })
        .collect();
    gains.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = gains.iter().sum();
    if total == 0 || gains.is_empty() {
        return vec![ImprovementPoint { static_pct: 0.0, improvement_pct: 0.0 }];
    }
    let n = gains.len();
    let mut points = Vec::with_capacity(101);
    let mut cum = 0u64;
    let mut next_pct = 0.0f64;
    for (i, gain) in gains.iter().enumerate() {
        cum += gain;
        let static_pct = (i + 1) as f64 / n as f64 * 100.0;
        if static_pct >= next_pct || i + 1 == n {
            points.push(ImprovementPoint {
                static_pct,
                improvement_pct: cum as f64 / total as f64 * 100.0,
            });
            next_pct = static_pct.floor() + 1.0;
        }
    }
    points
}

/// Interpolates the improvement percentage at a given static-instruction
/// percentage on a Figure 9 curve.
#[must_use]
pub fn improvement_at(points: &[ImprovementPoint], static_pct: f64) -> f64 {
    let mut best = 0.0f64;
    for p in points {
        if p.static_pct <= static_pct {
            best = best.max(p.improvement_pct);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_counts_per_category_and_overall() {
        let mut acc = AccuracyTracker::new();
        for i in 0..10 {
            acc.record(InstrCategory::Loads, i % 2 == 0);
        }
        for _ in 0..5 {
            acc.record(InstrCategory::Shift, false);
        }
        assert_eq!(acc.predicted(Some(InstrCategory::Loads)), 10);
        assert_eq!(acc.correct(Some(InstrCategory::Loads)), 5);
        assert_eq!(acc.accuracy(Some(InstrCategory::Loads)), 0.5);
        assert_eq!(acc.accuracy(Some(InstrCategory::Shift)), 0.0);
        assert_eq!(acc.total(), 15);
        assert!((acc.accuracy(None) - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_merge_adds_counts() {
        let mut a = AccuracyTracker::new();
        a.record(InstrCategory::Set, true);
        let mut b = AccuracyTracker::new();
        b.record(InstrCategory::Set, false);
        a.merge(&b);
        assert_eq!(a.predicted(Some(InstrCategory::Set)), 2);
        assert_eq!(a.correct(Some(InstrCategory::Set)), 1);
    }

    #[test]
    fn empty_tracker_accuracy_is_zero() {
        let acc = AccuracyTracker::new();
        assert_eq!(acc.accuracy(None), 0.0);
        assert_eq!(acc.accuracy(Some(InstrCategory::Lui)), 0.0);
    }

    #[test]
    fn bucket_boundaries_match_figure10() {
        assert_eq!(ValueProfile::bucket_of(1), 0);
        assert_eq!(ValueProfile::bucket_of(2), 1);
        assert_eq!(ValueProfile::bucket_of(4), 1);
        assert_eq!(ValueProfile::bucket_of(5), 2);
        assert_eq!(ValueProfile::bucket_of(65536), 8);
        assert_eq!(ValueProfile::bucket_of(65537), 9);
    }

    #[test]
    fn profile_separates_categories() {
        let mut profile = ValueProfile::new();
        profile.record(&TraceRecord::new(Pc(0), InstrCategory::AddSub, 1));
        profile.record(&TraceRecord::new(Pc(4), InstrCategory::Loads, 2));
        let (s_add, _) = profile.histograms(Some(InstrCategory::AddSub));
        let (s_all, _) = profile.histograms(None);
        assert_eq!(s_add.iter().sum::<u64>(), 1);
        assert_eq!(s_all.iter().sum::<u64>(), 2);
    }

    #[test]
    fn single_value_fraction() {
        let mut profile = ValueProfile::new();
        for i in 0..4u64 {
            profile.record(&TraceRecord::new(Pc(0), InstrCategory::AddSub, 9));
            profile.record(&TraceRecord::new(Pc(4), InstrCategory::AddSub, i));
        }
        assert_eq!(profile.single_value_static_fraction(), 0.5);
        assert_eq!(profile.static_count(), 2);
    }

    #[test]
    fn empty_profile_is_safe() {
        let profile = ValueProfile::new();
        assert_eq!(profile.single_value_static_fraction(), 0.0);
        let (s, d) = profile.histograms(None);
        assert!(s.iter().all(|&x| x == 0) && d.iter().all(|&x| x == 0));
    }

    fn tally(total: u64, correct: Vec<u64>) -> PcTally {
        PcTally { total, correct, category: Some(InstrCategory::AddSub) }
    }

    #[test]
    fn improvement_curve_is_monotone_and_reaches_100() {
        // Three improving statics with gains 50, 30, 20 and one regressing.
        let tallies = vec![
            tally(100, vec![0, 10, 60]),
            tally(100, vec![0, 20, 50]),
            tally(100, vec![0, 30, 50]),
            tally(100, vec![0, 90, 40]),
        ];
        let points = improvement_curve(&tallies, 2, 1, None);
        let last = points.last().unwrap();
        assert!((last.improvement_pct - 100.0).abs() < 1e-9);
        assert!((last.static_pct - 100.0).abs() < 1e-9);
        for w in points.windows(2) {
            assert!(w[1].improvement_pct >= w[0].improvement_pct);
            assert!(w[1].static_pct >= w[0].static_pct);
        }
        // The single best PC (1/3 of improving statics) covers 50% of the gain.
        let at_34 = improvement_at(&points, 34.0);
        assert!((at_34 - 50.0).abs() < 1e-9, "{at_34}");
    }

    #[test]
    fn improvement_curve_empty_when_no_gain() {
        let tallies = vec![tally(10, vec![5, 5, 5])];
        let points = improvement_curve(&tallies, 2, 1, None);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].improvement_pct, 0.0);
    }

    #[test]
    fn improvement_curve_respects_category_filter() {
        let mut other = tally(10, vec![0, 0, 10]);
        other.category = Some(InstrCategory::Shift);
        let tallies = vec![tally(10, vec![0, 0, 10]), other];
        let points = improvement_curve(&tallies, 2, 1, Some(InstrCategory::Shift));
        // Only one improving PC in Shift: the curve jumps straight to 100%.
        assert!((points[0].improvement_pct - 100.0).abs() < 1e-9);
    }
}
