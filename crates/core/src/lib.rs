//! # dvp-core — data value predictors
//!
//! This crate implements the value-prediction models studied in
//! *The Predictability of Data Values* (Y. Sazeides and J. E. Smith,
//! MICRO-30, 1997), in the paper's idealized setting: per-static-instruction
//! (per-PC) tables of unbounded size, updated immediately with correct
//! values.
//!
//! Two families of predictors are provided:
//!
//! * **Computational** predictors compute the next value from previous
//!   values: [`LastValuePredictor`] (the identity function, with optional
//!   hysteresis) and [`StridePredictor`] (adds a delta; the paper's "s2"
//!   two-delta variant is the default).
//! * **Context-based** predictors learn which values follow a particular
//!   history: [`FcmPredictor`], a finite-context-method predictor with
//!   blending and lazy exclusion, derived from text-compression models.
//!
//! [`HybridPredictor`] combines a computational and a context-based
//! component with a per-PC chooser, following the hybrid scheme the paper
//! motivates in its Section 4.2.
//!
//! Evaluation scaffolding lives alongside the predictors:
//! [`PredictorSet`] correlates the correct-prediction sets of several
//! predictors (Figure 8/9 of the paper), [`AccuracyTracker`] and
//! [`ValueProfile`] implement the Section 4 accounting, and
//! [`sequences`] generates and measures the Section 1.1 sequence taxonomy
//! (Table 1, Figure 2).
//!
//! # Quickstart
//!
//! ```
//! use dvp_core::{FcmPredictor, Predictor, StridePredictor};
//! use dvp_trace::Pc;
//!
//! // A repeating non-stride sequence, the kind only context-based
//! // prediction captures (paper Section 1.1).
//! let sequence = [1u64, 42, 7, 1, 42, 7, 1, 42, 7];
//! let pc = Pc(0x400100);
//!
//! let mut stride = StridePredictor::two_delta();
//! let mut fcm = FcmPredictor::new(2);
//! let mut stride_correct = 0;
//! let mut fcm_correct = 0;
//! for &v in &sequence {
//!     stride_correct += u32::from(stride.observe(pc, v));
//!     fcm_correct += u32::from(fcm.observe(pc, v));
//! }
//! assert!(fcm_correct > stride_correct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// This crate's version — part of the predictor-semantics surface folded
/// into the engine epoch (`dvp_engine::engine_epoch`), which versions
/// every persisted result-cache entry.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

mod analysis;
mod confidence;
mod config;
mod dataflow;
mod delayed;
mod entropy;
mod extensions;
mod fcm;
mod finite;
mod finite_hybrid;
mod hybrid;
mod last_value;
mod locality;
mod predictor;
pub mod sequences;
mod set;
mod stride;
mod table;
mod typed;

pub use analysis::{
    improvement_at, improvement_curve, AccuracyTracker, ImprovementPoint, ValueProfile,
    VALUE_BUCKETS,
};
pub use confidence::{ConfidentPredictor, SpeculationOutcome};
pub use config::PredictorConfig;
pub use dataflow::{dataflow_height, oracle_height, value_predicted_height, SpeedupReport};
pub use delayed::DelayedPredictor;
pub use entropy::{shannon_entropy, EntropyProfile, ENTROPY_BUCKETS};
pub use extensions::{ShiftPredictor, TwoLevelStridePredictor};
pub use fcm::{Blending, CounterMode, FcmPredictor};
pub use finite::{
    hash_history, FiniteFcmPredictor, FiniteLastValuePredictor, FiniteStridePredictor, TableSpec,
};
pub use finite_hybrid::FiniteHybridPredictor;
pub use hybrid::HybridPredictor;
pub use last_value::{LastValuePolicy, LastValuePredictor};
pub use locality::LocalityProfile;
pub use predictor::Predictor;
pub use set::{run_trace, CorrectMask, PcTally, PredictorSet, SetBatch};
pub use stride::{StridePolicy, StridePredictor};
pub use typed::{run_trace_records, RecordPredictor, TypedHybridPredictor};
