//! Dataflow-limit analysis: what value prediction buys in execution time.
//!
//! The paper's introduction motivates value prediction as an attack on
//! *"data dependences [that] are often thought to present a fundamental
//! performance barrier"*, and its Section 5 concludes that *"value
//! prediction has significant potential for performance improvement"*. This
//! module quantifies that potential with the classic dataflow-limit model
//! of Lipasti & Shen (reference [2] of the paper):
//!
//! * Execution is constrained **only** by data dependences (perfect control
//!   prediction, unlimited fetch/issue width, unit-latency operations).
//! * The **dataflow height** of a trace is the longest dependence chain —
//!   the minimum number of cycles any machine obeying true dependences
//!   needs.
//! * A **correctly predicted** value breaks the dependence edges leaving
//!   its producer: consumers issue immediately instead of waiting.
//! * A **mispredicted** value (when speculating on every prediction) costs
//!   its consumers a recovery `penalty` on top of the true completion time.
//!
//! Speedup is the ratio of unpredicted to predicted dataflow height. This
//! is a limit study in exactly the paper's spirit: it bounds what any real
//! pipeline could get from the studied predictors.

use crate::Predictor;
use dvp_trace::DepNode;

/// The longest data-dependence chain in `nodes`, in unit-latency cycles.
///
/// Every node costs one cycle and can start only after all of its producers
/// have finished. An empty trace has height 0.
///
/// # Examples
///
/// ```
/// use dvp_core::dataflow_height;
/// use dvp_trace::{DepNode, InstrCategory, Pc, TraceRecord};
///
/// let rec = |v| Some(TraceRecord::new(Pc(0x100), InstrCategory::AddSub, v));
/// let chain = vec![
///     DepNode::new(rec(1), [None, None, None]),
///     DepNode::new(rec(2), [Some(0), None, None]),
///     DepNode::new(rec(3), [Some(1), None, None]),
/// ];
/// assert_eq!(dataflow_height(&chain), 3);
/// ```
#[must_use]
pub fn dataflow_height(nodes: &[DepNode]) -> u64 {
    let mut finish = vec![0u64; nodes.len()];
    let mut height = 0;
    for (i, node) in nodes.iter().enumerate() {
        let ready = node.deps().map(|d| finish[d as usize]).max().unwrap_or(0);
        finish[i] = ready + 1;
        height = height.max(finish[i]);
    }
    height
}

/// Outcome of a value-predicted dataflow-limit run (see
/// [`value_predicted_height`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeedupReport {
    /// Dataflow height without prediction.
    pub base_height: u64,
    /// Dataflow height with the predictor breaking dependences.
    pub vp_height: u64,
    /// Total nodes in the trace (including stores).
    pub nodes: u64,
    /// Predictable (register-writing) nodes.
    pub predictable: u64,
    /// Nodes for which the predictor ventured a prediction.
    pub predicted: u64,
    /// Nodes predicted correctly.
    pub correct: u64,
}

impl SpeedupReport {
    /// `base_height / vp_height` — the dataflow-limit speedup.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.vp_height == 0 {
            1.0
        } else {
            self.base_height as f64 / self.vp_height as f64
        }
    }

    /// Prediction accuracy over predictable nodes (the paper's metric).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictable == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictable as f64
        }
    }

    /// Dataflow-limit instructions per cycle without prediction.
    #[must_use]
    pub fn base_ipc(&self) -> f64 {
        if self.base_height == 0 {
            0.0
        } else {
            self.nodes as f64 / self.base_height as f64
        }
    }
}

/// Computes the dataflow height when `predictor` speculates on values, and
/// the baseline height, in one pass.
///
/// For every predictable node the predictor is consulted (and immediately
/// updated, the paper's idealization). The value a consumer waits for
/// becomes available at:
///
/// * time 0 — producer predicted correctly (the dependence is broken);
/// * producer finish + `penalty` — predicted but wrong (mis-speculation
///   recovery);
/// * producer finish — no prediction was made (no speculation attempted).
///
/// With `penalty == 0` mis-speculation is free and the result is the pure
/// oracle-gated relaxation: `vp_height <= base_height` always holds.
///
/// # Examples
///
/// ```
/// use dvp_core::{value_predicted_height, LastValuePredictor};
/// use dvp_trace::{DepNode, InstrCategory, Pc, TraceRecord};
///
/// // A dependence chain of constant values: last-value prediction breaks
/// // every edge after its first observation.
/// let rec = |v| Some(TraceRecord::new(Pc(0x100), InstrCategory::AddSub, v));
/// let nodes: Vec<DepNode> = (0..10u64)
///     .map(|i| DepNode::new(rec(7), [i.checked_sub(1), None, None]))
///     .collect();
/// let report = value_predicted_height(&nodes, &mut LastValuePredictor::new(), 0);
/// assert_eq!(report.base_height, 10);
/// assert!(report.vp_height < report.base_height);
/// assert!(report.speedup() > 1.0);
/// ```
#[must_use]
pub fn value_predicted_height(
    nodes: &[DepNode],
    predictor: &mut dyn Predictor,
    penalty: u64,
) -> SpeedupReport {
    let mut base_finish = vec![0u64; nodes.len()];
    let mut vp_finish = vec![0u64; nodes.len()];
    // When a consumer may use node i's value: 0 if predicted correctly,
    // vp_finish + penalty if mispredicted, vp_finish if unpredicted.
    let mut avail = vec![0u64; nodes.len()];
    let mut report = SpeedupReport {
        base_height: 0,
        vp_height: 0,
        nodes: nodes.len() as u64,
        predictable: 0,
        predicted: 0,
        correct: 0,
    };
    for (i, node) in nodes.iter().enumerate() {
        let base_ready = node.deps().map(|d| base_finish[d as usize]).max().unwrap_or(0);
        base_finish[i] = base_ready + 1;
        report.base_height = report.base_height.max(base_finish[i]);

        let vp_ready = node.deps().map(|d| avail[d as usize]).max().unwrap_or(0);
        vp_finish[i] = vp_ready + 1;
        report.vp_height = report.vp_height.max(vp_finish[i]);

        avail[i] = match node.record {
            Some(rec) => {
                report.predictable += 1;
                let prediction = predictor.predict(rec.pc);
                predictor.update(rec.pc, rec.value);
                match prediction {
                    Some(v) if v == rec.value => {
                        report.predicted += 1;
                        report.correct += 1;
                        0
                    }
                    Some(_) => {
                        report.predicted += 1;
                        vp_finish[i].saturating_add(penalty)
                    }
                    None => vp_finish[i],
                }
            }
            // Stores cannot be predicted; their consumers always wait.
            None => vp_finish[i],
        };
    }
    report
}

/// The dataflow height with a perfect (oracle) value predictor: every
/// register value is known at dispatch, so only store-to-load forwarding
/// chains remain.
///
/// This is the absolute floor of [`value_predicted_height`] over all
/// possible predictors and the dataflow analog of the paper's "data values
/// are very predictable" headline.
///
/// # Examples
///
/// ```
/// use dvp_core::{dataflow_height, oracle_height};
/// use dvp_trace::{DepNode, InstrCategory, Pc, TraceRecord};
///
/// let rec = |v| Some(TraceRecord::new(Pc(0x100), InstrCategory::AddSub, v));
/// let chain: Vec<DepNode> = (0..8u64)
///     .map(|i| DepNode::new(rec(i * i), [i.checked_sub(1), None, None]))
///     .collect();
/// assert_eq!(dataflow_height(&chain), 8);
/// assert_eq!(oracle_height(&chain), 1); // every edge breaks
/// ```
#[must_use]
pub fn oracle_height(nodes: &[DepNode]) -> u64 {
    let mut avail = vec![0u64; nodes.len()];
    let mut height = 0;
    for (i, node) in nodes.iter().enumerate() {
        let ready = node.deps().map(|d| avail[d as usize]).max().unwrap_or(0);
        let finish = ready + 1;
        height = height.max(finish);
        avail[i] = if node.is_predictable() { 0 } else { finish };
    }
    height
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FcmPredictor, LastValuePredictor, StridePredictor};
    use dvp_trace::{InstrCategory, Pc, TraceRecord};

    fn rec(pc: u64, value: u64) -> Option<TraceRecord> {
        Some(TraceRecord::new(Pc(pc), InstrCategory::AddSub, value))
    }

    fn chain(values: &[u64]) -> Vec<DepNode> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                DepNode::new(rec(0x100, v), [i.checked_sub(1).map(|p| p as u64), None, None])
            })
            .collect()
    }

    #[test]
    fn empty_trace_has_zero_height() {
        assert_eq!(dataflow_height(&[]), 0);
        assert_eq!(oracle_height(&[]), 0);
    }

    #[test]
    fn independent_nodes_have_height_one() {
        let nodes: Vec<DepNode> =
            (0..50).map(|i| DepNode::new(rec(0x100 + i * 4, i), [None, None, None])).collect();
        assert_eq!(dataflow_height(&nodes), 1);
    }

    #[test]
    fn chain_height_equals_length() {
        let nodes = chain(&[1, 2, 3, 4, 5]);
        assert_eq!(dataflow_height(&nodes), 5);
    }

    #[test]
    fn diamond_takes_longest_path() {
        // 0 -> {1, 2} -> 3, with an extra hop under 2.
        let nodes = vec![
            DepNode::new(rec(0x0, 1), [None, None, None]),
            DepNode::new(rec(0x4, 2), [Some(0), None, None]),
            DepNode::new(rec(0x8, 3), [Some(0), None, None]),
            DepNode::new(rec(0xc, 4), [Some(2), None, None]),
            DepNode::new(rec(0x10, 5), [Some(1), Some(3), None]),
        ];
        assert_eq!(dataflow_height(&nodes), 4);
    }

    #[test]
    fn oracle_reduces_all_register_chains_to_unit_height() {
        let nodes = chain(&[5, 9, 2, 8, 4]);
        assert_eq!(oracle_height(&nodes), 1);
    }

    #[test]
    fn oracle_cannot_break_store_chains() {
        // store -> load -> store -> load (alternating, all linked).
        let nodes = vec![
            DepNode::new(None, [None, None, None]),
            DepNode::new(rec(0x4, 1), [Some(0), None, None]),
            DepNode::new(None, [Some(1), None, None]),
            DepNode::new(rec(0xc, 2), [Some(2), None, None]),
        ];
        // Loads are predicted (avail 0) but stores still wait for loads'
        // finish via their own register inputs... here store 2 waits on
        // load 1? No: load 1 is predictable, so its avail is 0. Store 2
        // finishes at 1; load 3 waits for store 2: finish 2.
        assert_eq!(oracle_height(&nodes), 2);
    }

    #[test]
    fn perfect_last_value_prediction_collapses_constant_chain() {
        let nodes = chain(&[7; 20]);
        let report = value_predicted_height(&nodes, &mut LastValuePredictor::new(), 0);
        assert_eq!(report.base_height, 20);
        // First node unpredicted (cold), afterwards every edge breaks.
        assert!(report.vp_height <= 3, "{report:?}");
        assert!(report.speedup() > 6.0);
        assert_eq!(report.correct, 19);
    }

    #[test]
    fn stride_prediction_collapses_induction_chain() {
        let values: Vec<u64> = (0..32).map(|i| 100 + 4 * i).collect();
        let nodes = chain(&values);
        let report = value_predicted_height(&nodes, &mut StridePredictor::two_delta(), 0);
        assert_eq!(report.base_height, 32);
        assert!(report.vp_height < 8, "{report:?}");
    }

    #[test]
    fn random_values_get_no_speedup() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let values: Vec<u64> = (0..64)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        let nodes = chain(&values);
        let report = value_predicted_height(&nodes, &mut FcmPredictor::new(2), 0);
        assert_eq!(report.base_height, report.vp_height, "{report:?}");
        assert!((report.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_penalty_never_hurts() {
        // Anti-correlated values: stride predicts but is always wrong.
        let values: Vec<u64> = (0..40).map(|i| if i % 2 == 0 { 0 } else { u64::MAX / 2 }).collect();
        let nodes = chain(&values);
        let report = value_predicted_height(&nodes, &mut StridePredictor::two_delta(), 0);
        assert!(report.vp_height <= report.base_height, "{report:?}");
    }

    #[test]
    fn penalty_makes_reckless_speculation_costly() {
        let values: Vec<u64> = (0..40).map(|i| (i * i) ^ 0x55).collect();
        let nodes = chain(&values);
        let free = value_predicted_height(&nodes, &mut StridePredictor::two_delta(), 0);
        let costly = value_predicted_height(&nodes, &mut StridePredictor::two_delta(), 10);
        assert!(costly.vp_height > free.vp_height, "{costly:?} vs {free:?}");
        assert!(costly.vp_height > costly.base_height, "penalty can exceed the baseline");
    }

    #[test]
    fn report_counters_are_consistent() {
        let nodes = chain(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let report = value_predicted_height(&nodes, &mut FcmPredictor::new(2), 0);
        assert_eq!(report.nodes, 9);
        assert_eq!(report.predictable, 9);
        assert!(report.correct <= report.predicted);
        assert!(report.predicted <= report.predictable);
        assert!((0.0..=1.0).contains(&report.accuracy()));
        assert!(report.base_ipc() > 0.0);
    }

    #[test]
    fn oracle_is_a_lower_bound_for_any_predictor() {
        let values: Vec<u64> = (0..64).map(|i| (i % 5) * 3).collect();
        let nodes = chain(&values);
        let oracle = oracle_height(&nodes);
        for mut p in [
            Box::new(LastValuePredictor::new()) as Box<dyn Predictor>,
            Box::new(StridePredictor::two_delta()),
            Box::new(FcmPredictor::new(3)),
        ] {
            let report = value_predicted_height(&nodes, p.as_mut(), 0);
            assert!(report.vp_height >= oracle, "{} beat the oracle", p.name());
        }
    }
}
