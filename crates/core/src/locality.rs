//! History-depth value locality (the metric of Lipasti, Wilkerson & Shen).
//!
//! The paper's Section 1.2 frames its related work in terms of *value
//! locality*: *"The potential for value predictability was reported in terms
//! of 'history depth', that is, how many times a value produced by an
//! instruction repeats when checked against the most recent n values. A
//! pronounced difference is observed between the locality with history depth
//! 1 and history depth 16."* Last-value prediction exploits exactly depth-1
//! locality.
//!
//! [`LocalityProfile`] measures that metric on a value trace: for each
//! dynamic instruction, whether its result matches one of the `n` most
//! recent **distinct** values produced by the same static instruction, for
//! every depth `n` up to a configured maximum. The distinct-value history is
//! kept in most-recently-used order, which is what a depth-`n` value file
//! would store. Depth-1 locality is an exact upper bound on last-value
//! prediction accuracy; the depth-16 vs depth-1 gap is the headroom that
//! motivates context-based prediction.

use dvp_trace::{InstrCategory, Pc, TraceRecord, Value};
use std::collections::HashMap;

const N_CATEGORIES: usize = InstrCategory::ALL.len();

#[derive(Debug, Clone)]
struct LocalityEntry {
    /// Distinct recent values, most recent first, at most `max_depth` long.
    recent: Vec<Value>,
}

/// Measures value locality at every history depth `1..=max_depth`.
///
/// # Examples
///
/// ```
/// use dvp_core::LocalityProfile;
/// use dvp_trace::{InstrCategory, Pc, TraceRecord};
///
/// let mut profile = LocalityProfile::new(4);
/// // An alternating value stream: never equal to the previous value, always
/// // equal to one of the previous two.
/// for i in 0..100u64 {
///     profile.record(&TraceRecord::new(Pc(0), InstrCategory::AddSub, i % 2));
/// }
/// assert_eq!(profile.locality(1, None), 0.0);
/// assert!(profile.locality(2, None) > 0.95);
/// ```
#[derive(Debug, Clone)]
pub struct LocalityProfile {
    max_depth: usize,
    entries: HashMap<Pc, LocalityEntry>,
    /// `hits[d][c]`: dynamic instructions of category `c` whose value matched
    /// at depth exactly `d + 1` (i.e. position `d` in the MRU list).
    hits: Vec<[u64; N_CATEGORIES]>,
    total: [u64; N_CATEGORIES],
}

impl LocalityProfile {
    /// Creates a profile measuring depths `1..=max_depth`.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0 or greater than 1024.
    #[must_use]
    pub fn new(max_depth: usize) -> Self {
        assert!(
            (1..=1024).contains(&max_depth),
            "max_depth {max_depth} outside the sensible range 1..=1024"
        );
        LocalityProfile {
            max_depth,
            entries: HashMap::new(),
            hits: vec![[0; N_CATEGORIES]; max_depth],
            total: [0; N_CATEGORIES],
        }
    }

    /// The deepest history depth measured.
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Folds one trace record into the profile.
    pub fn record(&mut self, rec: &TraceRecord) {
        let cat = rec.category.index();
        self.total[cat] += 1;
        let entry = self
            .entries
            .entry(rec.pc)
            .or_insert_with(|| LocalityEntry { recent: Vec::with_capacity(self.max_depth) });
        let position = entry.recent.iter().position(|&v| v == rec.value);
        if let Some(depth) = position {
            self.hits[depth][cat] += 1;
            entry.recent.remove(depth);
        } else if entry.recent.len() == self.max_depth {
            entry.recent.pop();
        }
        entry.recent.insert(0, rec.value);
    }

    /// Value locality at history `depth` for `category` (or overall with
    /// `None`): the fraction of dynamic instructions whose value matched one
    /// of the `depth` most recent distinct values of the same static
    /// instruction. 0 when nothing was recorded.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or exceeds [`max_depth`](Self::max_depth).
    #[must_use]
    pub fn locality(&self, depth: usize, category: Option<InstrCategory>) -> f64 {
        assert!(
            (1..=self.max_depth).contains(&depth),
            "depth {depth} outside 1..={}",
            self.max_depth
        );
        let total = match category {
            Some(c) => self.total[c.index()],
            None => self.total.iter().sum(),
        };
        if total == 0 {
            return 0.0;
        }
        let hits: u64 = self.hits[..depth]
            .iter()
            .map(|by_cat| match category {
                Some(c) => by_cat[c.index()],
                None => by_cat.iter().sum(),
            })
            .sum();
        hits as f64 / total as f64
    }

    /// The locality series for depths `1..=max_depth`.
    #[must_use]
    pub fn series(&self, category: Option<InstrCategory>) -> Vec<f64> {
        (1..=self.max_depth).map(|d| self.locality(d, category)).collect()
    }

    /// Total dynamic instructions recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total.iter().sum()
    }

    /// Number of distinct static instructions seen.
    #[must_use]
    pub fn static_count(&self) -> usize {
        self.entries.len()
    }
}

impl Extend<TraceRecord> for LocalityProfile {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        for rec in iter {
            self.record(&rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LastValuePredictor, Predictor};

    fn rec(pc: u64, value: Value) -> TraceRecord {
        TraceRecord::new(Pc(pc), InstrCategory::AddSub, value)
    }

    #[test]
    fn constant_stream_has_full_depth1_locality() {
        let mut p = LocalityProfile::new(4);
        for _ in 0..100 {
            p.record(&rec(0, 42));
        }
        // 99 of 100 hits (the first observation has no history).
        assert!((p.locality(1, None) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn locality_is_monotone_in_depth() {
        let mut p = LocalityProfile::new(8);
        let mut state = 7u64;
        for i in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.record(&rec((i % 13) * 4, state >> 59)); // values in 0..32: many repeats
        }
        let series = p.series(None);
        for w in series.windows(2) {
            assert!(w[1] >= w[0], "locality must be monotone: {series:?}");
        }
        assert!(series[7] > series[0], "depth-8 should see strictly more hits here");
    }

    #[test]
    fn depth1_locality_bounds_last_value_accuracy() {
        // Last-value prediction can be correct only when the value equals
        // the most recent one, so depth-1 locality is an upper bound (equal,
        // for the always-update policy and MRU bookkeeping, on streams
        // where the last value is the MRU head — e.g. any stream).
        let mut profile = LocalityProfile::new(1);
        let mut lvp = LastValuePredictor::new();
        let mut correct = 0u64;
        let mut total = 0u64;
        let mut state = 3u64;
        for i in 0..2000 {
            state = state.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(0x14057b7ef767814f);
            let r = rec((i % 7) * 4, state >> 60);
            profile.record(&r);
            correct += u64::from(lvp.observe(r.pc, r.value));
            total += 1;
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            profile.locality(1, None) >= accuracy - 1e-12,
            "locality {} < accuracy {accuracy}",
            profile.locality(1, None)
        );
    }

    #[test]
    fn alternating_stream_needs_depth_two() {
        let mut p = LocalityProfile::new(2);
        for i in 0..1000u64 {
            p.record(&rec(0, i % 2));
        }
        assert_eq!(p.locality(1, None), 0.0);
        assert!(p.locality(2, None) > 0.99);
    }

    #[test]
    fn mru_reordering_keeps_hot_values_shallow() {
        // Stream: a a a b a a a b ... — "a" stays at MRU head except right
        // after each "b".
        let mut p = LocalityProfile::new(2);
        for i in 0..400u64 {
            p.record(&rec(0, if i % 4 == 3 { 1 } else { 0 }));
        }
        // Depth 1 catches the a-after-a repeats: roughly half the stream.
        assert!(p.locality(1, None) > 0.45);
        // Depth 2 catches everything after warmup.
        assert!(p.locality(2, None) > 0.98);
    }

    #[test]
    fn per_category_accounting_is_disjoint() {
        let mut p = LocalityProfile::new(2);
        for _ in 0..10 {
            p.record(&TraceRecord::new(Pc(0), InstrCategory::Loads, 5));
            p.record(&TraceRecord::new(Pc(4), InstrCategory::Shift, 6));
        }
        assert!(p.locality(1, Some(InstrCategory::Loads)) > 0.8);
        assert!(p.locality(1, Some(InstrCategory::Shift)) > 0.8);
        assert_eq!(p.locality(1, Some(InstrCategory::MultDiv)), 0.0);
        assert_eq!(p.total(), 20);
        assert_eq!(p.static_count(), 2);
    }

    #[test]
    fn distinct_history_is_bounded_by_depth() {
        // With max_depth 2, a 3-value rotation overflows the history: every
        // access misses because the needed value was just evicted.
        let mut p = LocalityProfile::new(2);
        for i in 0..999u64 {
            p.record(&rec(0, i % 3));
        }
        assert_eq!(p.locality(2, None), 0.0, "LRU of 2 thrashes on period-3 rotation");

        // Depth 3 captures it fully.
        let mut deep = LocalityProfile::new(3);
        for i in 0..999u64 {
            deep.record(&rec(0, i % 3));
        }
        assert!(deep.locality(3, None) > 0.99);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = LocalityProfile::new(16);
        assert_eq!(p.locality(1, None), 0.0);
        assert_eq!(p.locality(16, None), 0.0);
        assert_eq!(p.total(), 0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=4")]
    fn rejects_depth_beyond_max() {
        let p = LocalityProfile::new(4);
        let _ = p.locality(5, None);
    }

    #[test]
    #[should_panic(expected = "sensible range")]
    fn rejects_zero_max_depth() {
        let _ = LocalityProfile::new(0);
    }

    #[test]
    fn extend_accepts_record_iterators() {
        let mut p = LocalityProfile::new(2);
        p.extend((0..10u64).map(|_| rec(0, 1)));
        assert_eq!(p.total(), 10);
        assert!(p.locality(1, None) > 0.8);
    }
}
