//! Finite context method (FCM) prediction (Section 2.2 of the paper).

use crate::table::PcTable;
use crate::Predictor;
use dvp_trace::{Pc, PcId, Value};
use std::collections::HashMap;

/// How the per-order models of an [`FcmPredictor`] are combined.
///
/// An order-*k* FCM predictor is built from models of orders *k* down to 0
/// (an order-0 model is an unconditional value-frequency table). The paper
/// uses *blending* (Bell, Cleary & Witten) to combine them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Blending {
    /// The prediction comes from the longest matching context, and only the
    /// models at that order **and higher** are updated. This is the variant
    /// the paper evaluates ("the blending algorithm with lazy exclusion").
    #[default]
    LazyExclusion,
    /// The prediction comes from the longest matching context, but the
    /// models at **every** order are updated on every value.
    Full,
    /// Only the order-*k* model exists; if its context has never been seen,
    /// no prediction is made. (Not used by the paper; provided for
    /// ablation.)
    SingleOrder,
}

/// How value occurrences are counted inside each context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CounterMode {
    /// Exact, unbounded counts. This is what the paper simulates
    /// ("maintains exact counts for each value that follows a particular
    /// context").
    #[default]
    Exact,
    /// Small saturating counters: when any count reaches `max`, all counts
    /// for that context are halved. The paper notes this weights recent
    /// history more heavily, as in text compression practice.
    Saturating {
        /// Count at which all counters of the context are halved.
        max: u32,
    },
}

/// Frequency table for a single context: counts per following value, plus a
/// recency stamp used to break count ties toward the most recent value.
#[derive(Debug, Clone, Default)]
struct ContextCounts {
    counts: HashMap<Value, (u64, u64)>,
    tick: u64,
}

impl ContextCounts {
    fn bump(&mut self, value: Value, mode: CounterMode) {
        self.tick += 1;
        let entry = self.counts.entry(value).or_insert((0, 0));
        entry.0 += 1;
        entry.1 = self.tick;
        if let CounterMode::Saturating { max } = mode {
            if entry.0 >= u64::from(max) {
                for (count, _) in self.counts.values_mut() {
                    *count /= 2;
                }
                self.counts.retain(|_, (count, _)| *count > 0);
            }
        }
    }

    /// The value with the maximum count; ties broken toward the most
    /// recently observed value (the deterministic choice closest in spirit
    /// to the paper's recency argument).
    fn argmax(&self) -> Option<Value> {
        self.counts
            .iter()
            .max_by_key(|(_, &(count, stamp))| (count, stamp))
            .map(|(&value, _)| value)
    }

    fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Per-order model: full-concatenation context -> counts (no aliasing, as in
/// the paper: "we use full concatenation of history values so there is no
/// aliasing when matching contexts").
#[derive(Debug, Clone, Default)]
struct OrderModel {
    contexts: HashMap<Box<[Value]>, ContextCounts>,
}

#[derive(Debug, Clone)]
struct FcmEntry {
    /// Most recent values, newest last; at most `order` long.
    history: Vec<Value>,
    /// Models for orders 0..=order.
    orders: Vec<OrderModel>,
}

impl FcmEntry {
    fn new(order: usize) -> Self {
        FcmEntry {
            history: Vec::with_capacity(order),
            orders: vec![OrderModel::default(); order + 1],
        }
    }

    /// Context of length `ord` taken from the most recent history, if enough
    /// history exists.
    fn context(&self, ord: usize) -> Option<&[Value]> {
        self.history.len().checked_sub(ord).map(|start| &self.history[start..])
    }

    /// The longest order whose current context exists (with at least one
    /// count) in its model.
    fn longest_match(&self, max_order: usize) -> Option<usize> {
        (0..=max_order).rev().find(|&ord| {
            self.context(ord)
                .and_then(|ctx| self.orders[ord].contexts.get(ctx))
                .is_some_and(|c| !c.is_empty())
        })
    }

    fn push_history(&mut self, value: Value, order: usize) {
        if order == 0 {
            return;
        }
        if self.history.len() == order {
            self.history.remove(0);
        }
        self.history.push(value);
    }
}

/// A finite context method value predictor with blending.
///
/// For every static instruction the predictor keeps the last *k* values
/// (the *context*) and, per order 0..=k, a table mapping each historical
/// context to the frequency of each value that followed it. The predicted
/// value is the most frequent follower of the longest matching context.
///
/// This enables prediction of *any* repeating sequence — stride or
/// non-stride — which is exactly the flexibility the paper identifies as the
/// strong point of context-based prediction.
///
/// # Examples
///
/// ```
/// use dvp_core::{FcmPredictor, Predictor};
/// use dvp_trace::Pc;
///
/// let mut p = FcmPredictor::new(2);
/// let pc = Pc(0x10);
/// // A repeating non-stride sequence: 1 -13 99 1 -13 99 ...
/// let seq = [1u64, (-13i64) as u64, 99];
/// for _ in 0..2 {
///     for &v in &seq {
///         p.update(pc, v);
///     }
/// }
/// // Context (-13, 99) was followed by 1 last time around.
/// assert_eq!(p.predict(pc), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct FcmPredictor {
    order: usize,
    blending: Blending,
    counter_mode: CounterMode,
    name: String,
    table: PcTable<FcmEntry>,
}

impl FcmPredictor {
    /// Creates an order-`order` FCM predictor with lazy-exclusion blending
    /// and exact counters — the configuration evaluated in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `order > 64` (a guard against accidentally unbounded
    /// contexts; the paper studies orders 1..=8).
    #[must_use]
    pub fn new(order: usize) -> Self {
        FcmPredictor::with_config(order, Blending::LazyExclusion, CounterMode::Exact)
    }

    /// Creates an FCM predictor with full control over blending and counter
    /// handling.
    ///
    /// # Panics
    ///
    /// Panics if `order > 64`.
    #[must_use]
    pub fn with_config(order: usize, blending: Blending, counter_mode: CounterMode) -> Self {
        assert!(order <= 64, "FCM order {order} is unreasonably large");
        let blend = match blending {
            Blending::LazyExclusion => "",
            Blending::Full => "-full",
            Blending::SingleOrder => "-single",
        };
        let ctr = match counter_mode {
            CounterMode::Exact => String::new(),
            CounterMode::Saturating { max } => format!("-sat{max}"),
        };
        let name = format!("fcm{order}{blend}{ctr}");
        FcmPredictor { order, blending, counter_mode, name, table: PcTable::new() }
    }

    /// The predictor's order (context length).
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The blending policy in use.
    #[must_use]
    pub fn blending(&self) -> Blending {
        self.blending
    }

    /// The counter mode in use.
    #[must_use]
    pub fn counter_mode(&self) -> CounterMode {
        self.counter_mode
    }

    /// Total number of distinct (order, context) pairs stored across all
    /// static instructions — a proxy for the unbounded-table cost the paper
    /// discusses in Section 4.3.
    #[must_use]
    pub fn context_entries(&self) -> usize {
        self.table.values().map(|e| e.orders.iter().map(|m| m.contexts.len()).sum::<usize>()).sum()
    }

    /// The model configuration as a copyable value (lets slot mutations
    /// and configuration reads coexist without borrow conflicts).
    fn config(&self) -> FcmConfig {
        FcmConfig { order: self.order, blending: self.blending, counter_mode: self.counter_mode }
    }
}

/// The cheap, copyable part of an [`FcmPredictor`]: everything the
/// per-entry model operations need besides the entry itself.
#[derive(Debug, Clone, Copy)]
struct FcmConfig {
    order: usize,
    blending: Blending,
    counter_mode: CounterMode,
}

impl FcmConfig {
    /// The pre-update prediction of `entry`, plus the longest matched
    /// order (for blended configurations — the update reuses it).
    fn predict_entry(self, entry: &FcmEntry) -> (Option<Value>, Option<usize>) {
        match self.blending {
            Blending::SingleOrder => {
                let prediction = entry
                    .context(self.order)
                    .and_then(|ctx| entry.orders[self.order].contexts.get(ctx))
                    .and_then(ContextCounts::argmax);
                (prediction, None)
            }
            Blending::LazyExclusion | Blending::Full => {
                let matched = entry.longest_match(self.order);
                let prediction = matched.and_then(|ord| {
                    entry
                        .context(ord)
                        .and_then(|ctx| entry.orders[ord].contexts.get(ctx))
                        .and_then(ContextCounts::argmax)
                });
                (prediction, matched)
            }
        }
    }

    /// Applies the model update, reusing an already-computed longest match
    /// (the blended predict and the lazy-exclusion update walk the same
    /// contexts; fusing them does the walk once per record).
    fn update_entry(self, entry: &mut FcmEntry, matched: Option<usize>, actual: Value) {
        let order = self.order;
        let lowest_updated = match self.blending {
            Blending::SingleOrder => order,
            Blending::Full => 0,
            // Lazy exclusion: update the matched order and higher. On a
            // complete miss (no context matched anywhere) every order is
            // seeded.
            Blending::LazyExclusion => matched.unwrap_or(0),
        };
        for ord in lowest_updated..=order {
            if let Some(ctx) = entry.context(ord) {
                let ctx: Box<[Value]> = ctx.into();
                entry.orders[ord].contexts.entry(ctx).or_default().bump(actual, self.counter_mode);
            }
        }
        entry.push_history(actual, order);
    }

    /// Update-only path: computes the longest match itself when lazy
    /// exclusion needs it.
    fn update_slot(self, slot: &mut Option<FcmEntry>, actual: Value) {
        let entry = slot.get_or_insert_with(|| FcmEntry::new(self.order));
        let matched = match self.blending {
            Blending::LazyExclusion => entry.longest_match(self.order),
            _ => None,
        };
        self.update_entry(entry, matched, actual);
    }

    /// The fused slot step: one entry access and one context walk serve
    /// both the prediction and the update.
    fn step_slot(self, slot: &mut Option<FcmEntry>, actual: Value) -> Option<Value> {
        let entry = slot.get_or_insert_with(|| FcmEntry::new(self.order));
        let (prediction, matched) = self.predict_entry(entry);
        self.update_entry(entry, matched, actual);
        prediction
    }
}

impl Predictor for FcmPredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        let entry = self.table.get(pc)?;
        self.config().predict_entry(entry).0
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let config = self.config();
        config.update_slot(self.table.slot_mut(pc), actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        let config = self.config();
        config.step_slot(self.table.slot_mut(pc), actual)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.table.len()
    }

    fn reserve_ids(&mut self, n: usize) {
        self.table.reserve(n);
    }

    fn predict_id(&self, id: PcId, _pc: Pc) -> Option<Value> {
        let entry = self.table.get_dense(id)?;
        self.config().predict_entry(entry).0
    }

    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let config = self.config();
        config.update_slot(self.table.dense_slot_mut(id, pc), actual);
    }

    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        let config = self.config();
        config.step_slot(self.table.dense_slot_mut(id, pc), actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: Pc = Pc(0x300);

    fn feed(p: &mut FcmPredictor, seq: &[Value]) -> Vec<Option<Value>> {
        seq.iter()
            .map(|&v| {
                let pred = p.predict(PC);
                p.update(PC, v);
                pred
            })
            .collect()
    }

    #[test]
    fn predicts_repeated_non_stride_sequence_after_one_period() {
        let mut p = FcmPredictor::new(2);
        let period = [1u64, u64::MAX - 12, 99, 7];
        let seq: Vec<Value> = period.iter().copied().cycle().take(16).collect();
        let preds = feed(&mut p, &seq);
        // After the first period + order values the order-2 contexts repeat,
        // and everything is predicted correctly (paper: LD = 100%).
        for (i, (&pred, &actual)) in preds.iter().zip(&seq).enumerate().skip(period.len() + 2) {
            assert_eq!(pred, Some(actual), "index {i}");
        }
    }

    #[test]
    fn predicts_repeated_stride_sequence() {
        let mut p = FcmPredictor::new(2);
        let seq: Vec<Value> = (0..24).map(|i| 1 + (i % 4)).collect();
        let preds = feed(&mut p, &seq);
        for (i, (&pred, &actual)) in preds.iter().zip(&seq).enumerate().skip(6) {
            assert_eq!(pred, Some(actual), "index {i}");
        }
    }

    #[test]
    fn cannot_predict_novel_stride_sequence() {
        // A pure (non-repeating) stride sequence never repeats a context, so
        // the high orders never match; the low orders predict stale values.
        let mut p = FcmPredictor::new(3);
        let seq: Vec<Value> = (0..32).map(|i| 10 + 3 * i).collect();
        let preds = feed(&mut p, &seq);
        let correct = preds.iter().zip(&seq).filter(|(&p, &a)| p == Some(a)).count();
        assert_eq!(correct, 0, "fcm cannot extrapolate strides (paper Table 1, row S)");
    }

    #[test]
    fn figure1_worked_example_order_by_order() {
        // The sequence from the paper's Figure 1: a a a b c a a a b c a a a ?
        let (a, b, c) = (1u64, 2u64, 3u64);
        let seq = [a, a, a, b, c, a, a, a, b, c, a, a, a];
        // Single-order models exactly as drawn in the figure.
        for (order, expected) in [(0, a), (1, a), (2, a), (3, b)] {
            let mut p = FcmPredictor::with_config(order, Blending::SingleOrder, CounterMode::Exact);
            for &v in &seq {
                p.update(PC, v);
            }
            assert_eq!(p.predict(PC), Some(expected), "order {order}");
        }
    }

    #[test]
    fn order_zero_is_a_frequency_table() {
        let mut p = FcmPredictor::new(0);
        for &v in &[5u64, 5, 5, 9, 9] {
            p.update(PC, v);
        }
        assert_eq!(p.predict(PC), Some(5));
        for _ in 0..3 {
            p.update(PC, 9);
        }
        assert_eq!(p.predict(PC), Some(9));
    }

    #[test]
    fn ties_break_toward_most_recent_value() {
        let mut p = FcmPredictor::new(0);
        p.update(PC, 1);
        p.update(PC, 2);
        // Both values have count 1; 2 is more recent.
        assert_eq!(p.predict(PC), Some(2));
        p.update(PC, 1);
        // Now 1 has count 2.
        assert_eq!(p.predict(PC), Some(1));
    }

    #[test]
    fn blending_falls_back_to_lower_orders() {
        let mut p = FcmPredictor::new(3);
        // Only two values seen: order-3 context cannot exist yet, but lower
        // orders still predict.
        p.update(PC, 4);
        p.update(PC, 4);
        assert_eq!(p.predict(PC), Some(4));
    }

    #[test]
    fn single_order_makes_no_prediction_without_full_context_match() {
        let mut p = FcmPredictor::with_config(2, Blending::SingleOrder, CounterMode::Exact);
        p.update(PC, 1);
        p.update(PC, 2);
        p.update(PC, 3);
        // Context is now (2, 3), never seen before.
        assert_eq!(p.predict(PC), None);
    }

    #[test]
    fn lazy_exclusion_does_not_update_lower_orders_on_high_match() {
        // Construct a case where lazy exclusion and full blending diverge.
        let mut lazy = FcmPredictor::with_config(1, Blending::LazyExclusion, CounterMode::Exact);
        let mut full = FcmPredictor::with_config(1, Blending::Full, CounterMode::Exact);
        // Sequence: 1 2 1 2 1 2 ... then suddenly a fresh context.
        for &v in &[1u64, 2, 1, 2, 1, 2] {
            lazy.update(PC, v);
            full.update(PC, v);
        }
        // Under full blending the order-0 model has counts for both 1 and 2;
        // under lazy exclusion order-0 stopped being updated once order-1
        // matched, so its counts differ.
        let novel = Pc(0x999);
        assert_eq!(lazy.predict(novel), None);
        assert_eq!(full.predict(novel), None);
        // Probe the internal divergence through context_entries: both have
        // the same contexts, but the counts differ. Verify via behaviour:
        // feed a value that only order 0 can predict.
        // (1,2) alternation: after the run, history = [2]; context (2) -> 1.
        assert_eq!(lazy.predict(PC), Some(1));
        assert_eq!(full.predict(PC), Some(1));
    }

    #[test]
    fn saturating_counters_halve_and_adapt_faster() {
        let mode = CounterMode::Saturating { max: 4 };
        let mut p = FcmPredictor::with_config(0, Blending::SingleOrder, mode);
        // Value 7 is seen many times; counts saturate around max.
        for _ in 0..100 {
            p.update(PC, 7);
        }
        // A short burst of 9s now overtakes quickly because 7's count was
        // halved rather than reaching 100.
        for _ in 0..4 {
            p.update(PC, 9);
        }
        assert_eq!(p.predict(PC), Some(9), "saturating counters favour recent history");

        // With exact counters the same burst cannot overtake.
        let mut exact = FcmPredictor::with_config(0, Blending::SingleOrder, CounterMode::Exact);
        for _ in 0..100 {
            exact.update(PC, 7);
        }
        for _ in 0..4 {
            exact.update(PC, 9);
        }
        assert_eq!(exact.predict(PC), Some(7));
    }

    #[test]
    fn no_aliasing_between_pcs() {
        let mut p = FcmPredictor::new(1);
        for i in 0..4 {
            p.update(Pc(0), 10);
            p.update(Pc(4), 20);
            let _ = i;
        }
        assert_eq!(p.predict(Pc(0)), Some(10));
        assert_eq!(p.predict(Pc(4)), Some(20));
        assert_eq!(p.static_entries(), 2);
    }

    #[test]
    fn context_entries_grow_with_distinct_contexts() {
        let mut p = FcmPredictor::new(1);
        assert_eq!(p.context_entries(), 0);
        p.update(PC, 1);
        p.update(PC, 2);
        p.update(PC, 3);
        // Order 0 has one (empty) context; order 1 has contexts (1,) and (2,).
        assert_eq!(p.context_entries(), 3);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(FcmPredictor::new(3).name(), "fcm3");
        let single = FcmPredictor::with_config(2, Blending::SingleOrder, CounterMode::Exact);
        assert_eq!(single.name(), "fcm2-single");
        let sat = FcmPredictor::with_config(1, Blending::Full, CounterMode::Saturating { max: 16 });
        assert_eq!(sat.name(), "fcm1-full-sat16");
    }

    #[test]
    #[should_panic(expected = "unreasonably large")]
    fn rejects_absurd_order() {
        let _ = FcmPredictor::new(65);
    }
}
