//! Finite context method (FCM) prediction (Section 2.2 of the paper).
//!
//! # Flat value-history table
//!
//! Logically the model is the paper's: per static instruction, per order
//! `0..=k`, a map from the full concatenated context to a frequency table
//! of following values. Physically all of that state lives in one flat,
//! arena-backed, open-addressed **value-history table** ([`Vht`]) shared
//! by every (instruction, order) pair:
//!
//! - **Inline context keys.** A context of up to three values is stored
//!   inline in its entry (`[Value; 3]` + length); longer contexts spill to
//!   a shared key arena. Probes always compare the full key — the hash is
//!   only an accelerator, so matching semantics are identical to the old
//!   `HashMap<Box<[Value]>, _>` ("full concatenation ... no aliasing").
//! - **Rolling context hashes.** Each slot maintains `H_j = mix(v) + B·H_{j-1}`
//!   for `j = 1..=k` incrementally per record, so an order-k blended
//!   predictor derives all of its probe hashes from one shared rolling
//!   state instead of rehashing `j` boxed slices per record.
//! - **Inline follower counts with a spill arena.** The per-context
//!   `(value, count, stamp)` frequency table starts as a two-element
//!   inline array; high-fanout contexts relocate to a geometric spill
//!   arena. The entry's first follower is always the current argmax, so a
//!   prediction is one read.
//! - **Fused multi-order probe.** One descending walk locates the longest
//!   matching context and caches every probed entry index; the update
//!   phase reuses those hits instead of re-probing.

use crate::table::PcIndex;
use crate::Predictor;
use dvp_trace::{Pc, PcId, Value};

/// How the per-order models of an [`FcmPredictor`] are combined.
///
/// An order-*k* FCM predictor is built from models of orders *k* down to 0
/// (an order-0 model is an unconditional value-frequency table). The paper
/// uses *blending* (Bell, Cleary & Witten) to combine them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Blending {
    /// The prediction comes from the longest matching context, and only the
    /// models at that order **and higher** are updated. This is the variant
    /// the paper evaluates ("the blending algorithm with lazy exclusion").
    #[default]
    LazyExclusion,
    /// The prediction comes from the longest matching context, but the
    /// models at **every** order are updated on every value.
    Full,
    /// Only the order-*k* model exists; if its context has never been seen,
    /// no prediction is made. (Not used by the paper; provided for
    /// ablation.)
    SingleOrder,
}

/// How value occurrences are counted inside each context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CounterMode {
    /// Exact, unbounded counts. This is what the paper simulates
    /// ("maintains exact counts for each value that follows a particular
    /// context").
    #[default]
    Exact,
    /// Small saturating counters: when any count reaches `max`, all counts
    /// for that context are halved. The paper notes this weights recent
    /// history more heavily, as in text compression practice.
    Saturating {
        /// Count at which all counters of the context are halved.
        max: u32,
    },
}

/// Hard ceiling on the order (a guard against accidentally unbounded
/// contexts; the paper studies orders 1..=8).
const MAX_ORDER: usize = 64;

/// Context values stored inline in a [`CtxEntry`]; longer keys spill.
const INLINE_KEY: usize = 3;

/// Followers stored inline in a [`CtxEntry`]; higher fanout spills.
const INLINE_FOLLOWERS: usize = 2;

/// Probe-cache sentinel: "this (slot, order, context) has no entry".
const NO_ENTRY: u32 = u32::MAX;

/// Rolling-hash base (odd, so multiplication is a bijection on `u64`).
const HASH_B: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixes the slot id into the bucket hash.
const SLOT_SALT: u64 = 0xA24B_AED4_963E_E407;

/// Mixes the order into the bucket hash.
const ORDER_SALT: u64 = 0x9FB2_1C65_1E98_DF25;

/// `splitmix64` finalizer: full-avalanche 64-bit mixer.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x;
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One `(value, count, stamp)` row of a context's frequency table. Stamps
/// are per-context ticks, so they are unique within an entry — count ties
/// always break deterministically toward the most recent value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Follower {
    value: Value,
    count: u64,
    stamp: u64,
}

/// One (slot, order, context) entry of the flat table.
///
/// Invariant: while `len > 0`, the first follower (inline or spilled) is
/// the argmax by `(count, stamp)` — predictions never scan.
#[derive(Debug, Clone)]
struct CtxEntry {
    /// Full bucket hash (cached for rehashing and as a probe accelerator).
    hash: u64,
    /// Per-context recency clock; incremented by every bump.
    tick: u64,
    /// The context itself when `key_len <= INLINE_KEY`.
    key: [Value; INLINE_KEY],
    /// Offset into the key arena when `key_len > INLINE_KEY`.
    key_spill: u32,
    /// Owning dense slot (per-instruction isolation is part of the key).
    slot: u32,
    /// Context length == the model order this entry belongs to.
    key_len: u16,
    /// Live followers.
    len: u32,
    /// Follower capacity; `<= INLINE_FOLLOWERS` means inline storage.
    cap: u32,
    /// Offset into the follower spill arena when not inline.
    spill_pos: u32,
    /// Inline follower storage (the common case: most contexts are
    /// followed by one or two distinct values).
    inline: [Follower; INLINE_FOLLOWERS],
}

/// Bumps `value` inside an existing follower list, maintaining the
/// front-is-argmax invariant. Returns the new count, or `None` when the
/// value is not present (the caller appends it).
#[inline]
fn bump_existing(fs: &mut [Follower], value: Value, tick: u64) -> Option<u64> {
    let i = fs.iter().position(|f| f.value == value)?;
    fs[i].count += 1;
    fs[i].stamp = tick;
    let count = fs[i].count;
    // The bumped follower holds the globally newest stamp, so it is the new
    // argmax exactly when its count reaches the front's.
    if count >= fs[0].count {
        fs.swap(0, i);
    }
    Some(count)
}

/// Halves every count, drops zeros, and re-seats the argmax at the front
/// (halving can flip ties toward newer stamps). Returns the live length.
fn halve_followers(fs: &mut [Follower]) -> u32 {
    let mut keep = 0;
    for i in 0..fs.len() {
        let count = fs[i].count / 2;
        if count > 0 {
            fs[keep] = Follower { count, ..fs[i] };
            keep += 1;
        }
    }
    let live = &mut fs[..keep];
    if let Some(best) =
        live.iter().enumerate().max_by_key(|(_, f)| (f.count, f.stamp)).map(|(i, _)| i)
    {
        live.swap(0, best);
    }
    u32::try_from(keep).expect("follower list fits u32")
}

/// The flat open-addressed value-history table: every (slot, order,
/// context) entry of the predictor, plus the key and follower spill
/// arenas. Entries are never removed (matching the unbounded paper
/// model), so entry indices are stable across bucket growth — the fused
/// probe caches them safely.
#[derive(Debug, Clone, Default)]
struct Vht {
    /// Power-of-two open-addressed index: `1 + entry index`, 0 = empty.
    buckets: Vec<u32>,
    /// Entry arena, append-only.
    entries: Vec<CtxEntry>,
    /// Spilled context keys (orders above `INLINE_KEY`), append-only.
    keys: Vec<Value>,
    /// Spilled follower lists; relocation leaves old regions behind
    /// (bounded ≤2x waste, no per-context allocations).
    spill: Vec<Follower>,
}

impl Vht {
    /// Number of distinct (slot, order, context) entries ever created.
    fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn key_matches(&self, e: &CtxEntry, slot: u32, ctx: &[Value]) -> bool {
        e.slot == slot
            && e.key_len as usize == ctx.len()
            && if ctx.len() <= INLINE_KEY {
                e.key[..ctx.len()] == *ctx
            } else {
                self.keys[e.key_spill as usize..][..ctx.len()] == *ctx
            }
    }

    /// Finds the entry for `(slot, ctx)` under `hash`, or [`NO_ENTRY`].
    #[inline]
    fn probe(&self, hash: u64, slot: u32, ctx: &[Value]) -> u32 {
        if self.buckets.is_empty() {
            return NO_ENTRY;
        }
        let mask = self.buckets.len() - 1;
        let mut b = (hash as usize) & mask;
        loop {
            let bucket = self.buckets[b];
            if bucket == 0 {
                return NO_ENTRY;
            }
            let idx = bucket - 1;
            let e = &self.entries[idx as usize];
            if e.hash == hash && self.key_matches(e, slot, ctx) {
                return idx;
            }
            b = (b + 1) & mask;
        }
    }

    /// Inserts a fresh empty entry for `(slot, ctx)` (which must not be
    /// present) and returns its index.
    fn insert(&mut self, hash: u64, slot: u32, ctx: &[Value]) -> u32 {
        if self.buckets.is_empty() {
            self.buckets = vec![0; 64];
        } else if (self.entries.len() + 1) * 8 > self.buckets.len() * 7 {
            self.grow();
        }
        let idx = u32::try_from(self.entries.len()).expect("context entries fit u32");
        let mut key = [0; INLINE_KEY];
        let mut key_spill = 0;
        if ctx.len() <= INLINE_KEY {
            key[..ctx.len()].copy_from_slice(ctx);
        } else {
            key_spill = u32::try_from(self.keys.len()).expect("key arena fits u32");
            self.keys.extend_from_slice(ctx);
        }
        self.entries.push(CtxEntry {
            hash,
            tick: 0,
            key,
            key_spill,
            slot,
            key_len: ctx.len() as u16,
            len: 0,
            cap: INLINE_FOLLOWERS as u32,
            spill_pos: 0,
            inline: [Follower::default(); INLINE_FOLLOWERS],
        });
        let mask = self.buckets.len() - 1;
        let mut b = (hash as usize) & mask;
        while self.buckets[b] != 0 {
            b = (b + 1) & mask;
        }
        self.buckets[b] = idx + 1;
        idx
    }

    /// Doubles the bucket index and reseats every entry by its cached hash.
    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![0u32; new_len];
        for (i, e) in self.entries.iter().enumerate() {
            let mut b = (e.hash as usize) & mask;
            while buckets[b] != 0 {
                b = (b + 1) & mask;
            }
            buckets[b] = i as u32 + 1;
        }
        self.buckets = buckets;
    }

    /// The entry's current argmax value, or `None` while it has no
    /// followers (an emptied context stops matching but keeps its tick,
    /// exactly like an empty `ContextCounts` in the nested-map model).
    #[inline]
    fn top_value(&self, idx: u32) -> Option<Value> {
        let e = &self.entries[idx as usize];
        if e.len == 0 {
            return None;
        }
        Some(if e.cap as usize <= INLINE_FOLLOWERS {
            e.inline[0].value
        } else {
            self.spill[e.spill_pos as usize].value
        })
    }

    /// Counts one occurrence of `value` after this entry's context:
    /// `count += 1`, stamp = fresh tick, with saturating-mode halving.
    fn bump(&mut self, idx: u32, value: Value, mode: CounterMode) {
        let i = idx as usize;
        let (tick, inline_now, pos, len) = {
            let e = &mut self.entries[i];
            e.tick += 1;
            (e.tick, e.cap as usize <= INLINE_FOLLOWERS, e.spill_pos as usize, e.len as usize)
        };
        let bumped = if inline_now {
            bump_existing(&mut self.entries[i].inline[..len], value, tick)
        } else {
            bump_existing(&mut self.spill[pos..pos + len], value, tick)
        };
        let count = match bumped {
            Some(count) => count,
            None => {
                self.push_follower(i, value, tick);
                1
            }
        };
        if let CounterMode::Saturating { max } = mode {
            if count >= u64::from(max) {
                self.halve(i);
            }
        }
    }

    /// Appends a fresh `(value, 1, tick)` follower, relocating the list to
    /// (or within) the spill arena when full.
    fn push_follower(&mut self, i: usize, value: Value, tick: u64) {
        let (len, cap) = {
            let e = &self.entries[i];
            (e.len as usize, e.cap as usize)
        };
        if len == cap {
            let new_cap = cap * 2;
            let new_pos = self.spill.len();
            if cap <= INLINE_FOLLOWERS {
                let inline = self.entries[i].inline;
                self.spill.extend_from_slice(&inline[..len]);
            } else {
                let old = self.entries[i].spill_pos as usize;
                self.spill.extend_from_within(old..old + len);
            }
            self.spill.resize(new_pos + new_cap, Follower::default());
            let e = &mut self.entries[i];
            e.spill_pos = u32::try_from(new_pos).expect("spill arena fits u32");
            e.cap = new_cap as u32;
        }
        let (inline_now, pos, len) = {
            let e = &mut self.entries[i];
            let len = e.len as usize;
            e.len += 1;
            (e.cap as usize <= INLINE_FOLLOWERS, e.spill_pos as usize, len)
        };
        let fresh = Follower { value, count: 1, stamp: tick };
        if inline_now {
            let e = &mut self.entries[i];
            e.inline[len] = fresh;
            if len > 0 && e.inline[0].count <= 1 {
                e.inline.swap(0, len);
            }
        } else {
            self.spill[pos + len] = fresh;
            if len > 0 && self.spill[pos].count <= 1 {
                self.spill.swap(pos, pos + len);
            }
        }
    }

    /// Saturating-mode halving of one entry's followers.
    fn halve(&mut self, i: usize) {
        let (inline_now, pos, len) = {
            let e = &self.entries[i];
            (e.cap as usize <= INLINE_FOLLOWERS, e.spill_pos as usize, e.len as usize)
        };
        let keep = if inline_now {
            halve_followers(&mut self.entries[i].inline[..len])
        } else {
            halve_followers(&mut self.spill[pos..pos + len])
        };
        self.entries[i].len = keep;
    }
}

/// Result of the fused descending probe: the prediction, the longest
/// matched order, and every entry index the descent touched (reused
/// verbatim by the update, which only re-probes orders the descent never
/// reached).
struct Descent {
    prediction: Option<Value>,
    matched: Option<usize>,
    /// Lowest order actually probed; `found[ord]` is valid for
    /// `ord >= probed_down`.
    probed_down: usize,
    /// Cached probe results per order ([`NO_ENTRY`] = probed, absent).
    found: [u32; MAX_ORDER + 1],
}

/// A finite context method value predictor with blending.
///
/// For every static instruction the predictor keeps the last *k* values
/// (the *context*) and, per order 0..=k, a table mapping each historical
/// context to the frequency of each value that followed it. The predicted
/// value is the most frequent follower of the longest matching context.
///
/// This enables prediction of *any* repeating sequence — stride or
/// non-stride — which is exactly the flexibility the paper identifies as the
/// strong point of context-based prediction.
///
/// # Examples
///
/// ```
/// use dvp_core::{FcmPredictor, Predictor};
/// use dvp_trace::Pc;
///
/// let mut p = FcmPredictor::new(2);
/// let pc = Pc(0x10);
/// // A repeating non-stride sequence: 1 -13 99 1 -13 99 ...
/// let seq = [1u64, (-13i64) as u64, 99];
/// for _ in 0..2 {
///     for &v in &seq {
///         p.update(pc, v);
///     }
/// }
/// // Context (-13, 99) was followed by 1 last time around.
/// assert_eq!(p.predict(pc), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct FcmPredictor {
    order: usize,
    blending: Blending,
    counter_mode: CounterMode,
    name: String,
    index: PcIndex,
    /// Per-slot recent values, strided `order` wide, newest last within
    /// `hist_len[slot]`.
    hist: Vec<Value>,
    /// Live history length per slot (0..=order).
    hist_len: Vec<u8>,
    /// Per-slot rolling hashes `H_1..H_order`, strided `order` wide:
    /// `ghash[slot*order + j-1]` covers the most recent `j` values.
    ghash: Vec<u64>,
    vht: Vht,
}

impl FcmPredictor {
    /// Creates an order-`order` FCM predictor with lazy-exclusion blending
    /// and exact counters — the configuration evaluated in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `order > 64` (a guard against accidentally unbounded
    /// contexts; the paper studies orders 1..=8).
    #[must_use]
    pub fn new(order: usize) -> Self {
        FcmPredictor::with_config(order, Blending::LazyExclusion, CounterMode::Exact)
    }

    /// Creates an FCM predictor with full control over blending and counter
    /// handling.
    ///
    /// # Panics
    ///
    /// Panics if `order > 64`.
    #[must_use]
    pub fn with_config(order: usize, blending: Blending, counter_mode: CounterMode) -> Self {
        assert!(order <= MAX_ORDER, "FCM order {order} is unreasonably large");
        let blend = match blending {
            Blending::LazyExclusion => "",
            Blending::Full => "-full",
            Blending::SingleOrder => "-single",
        };
        let ctr = match counter_mode {
            CounterMode::Exact => String::new(),
            CounterMode::Saturating { max } => format!("-sat{max}"),
        };
        let name = format!("fcm{order}{blend}{ctr}");
        FcmPredictor {
            order,
            blending,
            counter_mode,
            name,
            index: PcIndex::new(),
            hist: Vec::new(),
            hist_len: Vec::new(),
            ghash: Vec::new(),
            vht: Vht::default(),
        }
    }

    /// The predictor's order (context length).
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The blending policy in use.
    #[must_use]
    pub fn blending(&self) -> Blending {
        self.blending
    }

    /// The counter mode in use.
    #[must_use]
    pub fn counter_mode(&self) -> CounterMode {
        self.counter_mode
    }

    /// Total number of distinct (order, context) pairs stored across all
    /// static instructions — a proxy for the unbounded-table cost the paper
    /// discusses in Section 4.3.
    #[must_use]
    pub fn context_entries(&self) -> usize {
        self.vht.len()
    }

    /// Grows the per-slot arenas to cover `slot`.
    fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.hist_len.len() {
            self.hist_len.resize(slot + 1, 0);
            self.hist.resize((slot + 1) * self.order, 0);
            self.ghash.resize((slot + 1) * self.order, 0);
        }
    }

    /// Bucket hash for the current order-`ord` context of `slot`, derived
    /// from the rolling state (no key material is touched).
    #[inline]
    fn hash_at(&self, slot: usize, ord: usize) -> u64 {
        let g = if ord == 0 { 0 } else { self.ghash[slot * self.order + ord - 1] };
        mix(g ^ (slot as u64).wrapping_mul(SLOT_SALT) ^ (ord as u64 + 1).wrapping_mul(ORDER_SALT))
    }

    /// Probes the VHT for the current order-`ord` context of `slot`.
    /// Requires `hist_len[slot] >= ord`.
    #[inline]
    fn probe_ord(&self, slot: usize, ord: usize) -> u32 {
        let base = slot * self.order;
        let hist_len = self.hist_len[slot] as usize;
        let ctx = &self.hist[base + hist_len - ord..base + hist_len];
        self.vht.probe(self.hash_at(slot, ord), slot as u32, ctx)
    }

    /// The fused descending probe: longest-match search and probe-result
    /// cache in one walk over the shared rolling-hash state.
    fn descend(&self, slot: usize) -> Descent {
        let order = self.order;
        let mut d = Descent {
            prediction: None,
            matched: None,
            probed_down: order + 1,
            found: [NO_ENTRY; MAX_ORDER + 1],
        };
        let hist_len = self.hist_len[slot] as usize;
        match self.blending {
            Blending::SingleOrder => {
                if hist_len >= order {
                    let idx = self.probe_ord(slot, order);
                    d.found[order] = idx;
                    d.probed_down = order;
                    if idx != NO_ENTRY {
                        d.prediction = self.vht.top_value(idx);
                    }
                }
            }
            Blending::LazyExclusion | Blending::Full => {
                for ord in (0..=order).rev() {
                    if ord > hist_len {
                        continue;
                    }
                    let idx = self.probe_ord(slot, ord);
                    d.found[ord] = idx;
                    d.probed_down = ord;
                    if idx != NO_ENTRY {
                        if let Some(value) = self.vht.top_value(idx) {
                            d.matched = Some(ord);
                            d.prediction = Some(value);
                            break;
                        }
                    }
                }
            }
        }
        d
    }

    /// Pre-update prediction for an in-range slot.
    fn predict_slot(&self, slot: usize) -> Option<Value> {
        if slot >= self.hist_len.len() {
            return None;
        }
        self.descend(slot).prediction
    }

    /// Applies the model update for `actual`, reusing the descent's cached
    /// probes, then advances the history and rolling hashes.
    fn apply_update(&mut self, slot: usize, d: &Descent, actual: Value) {
        let order = self.order;
        let mode = self.counter_mode;
        let hist_len = self.hist_len[slot] as usize;
        let lowest_updated = match self.blending {
            Blending::SingleOrder => order,
            Blending::Full => 0,
            // Lazy exclusion: update the matched order and higher. On a
            // complete miss (no context matched anywhere) every order is
            // seeded.
            Blending::LazyExclusion => d.matched.unwrap_or(0),
        };
        let base = slot * order;
        for ord in lowest_updated..=order {
            if ord > hist_len {
                continue;
            }
            let mut idx =
                if ord >= d.probed_down { d.found[ord] } else { self.probe_ord(slot, ord) };
            if idx == NO_ENTRY {
                let hash = self.hash_at(slot, ord);
                let ctx = &self.hist[base + hist_len - ord..base + hist_len];
                idx = self.vht.insert(hash, slot as u32, ctx);
            }
            self.vht.bump(idx, actual, mode);
        }
        self.push_history(slot, actual);
    }

    /// Slides `actual` into the slot's history window and rolls every
    /// order's hash forward in place (descending, so each step reads the
    /// previous record's lower-order state).
    fn push_history(&mut self, slot: usize, actual: Value) {
        let order = self.order;
        if order == 0 {
            return;
        }
        let base = slot * order;
        let len = self.hist_len[slot] as usize;
        if len == order {
            self.hist.copy_within(base + 1..base + order, base);
            self.hist[base + order - 1] = actual;
        } else {
            self.hist[base + len] = actual;
            self.hist_len[slot] = (len + 1) as u8;
        }
        let mixed = mix(actual);
        let g = &mut self.ghash[base..base + order];
        for j in (1..order).rev() {
            g[j] = mixed.wrapping_add(HASH_B.wrapping_mul(g[j - 1]));
        }
        g[0] = mixed;
    }

    /// The fused per-record step on an in-range slot.
    fn step_slot(&mut self, slot: usize, actual: Value) -> Option<Value> {
        let d = self.descend(slot);
        self.apply_update(slot, &d, actual);
        d.prediction
    }
}

impl Predictor for FcmPredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        let id = self.index.get(pc)?;
        self.predict_slot(id.index())
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let slot = self.index.intern(pc).index();
        self.ensure_slot(slot);
        let d = self.descend(slot);
        self.apply_update(slot, &d, actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        let slot = self.index.intern(pc).index();
        self.ensure_slot(slot);
        self.step_slot(slot, actual)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.index.len()
    }

    fn reserve_ids(&mut self, n: usize) {
        self.index.reserve(n);
        if n > 0 {
            self.ensure_slot(n - 1);
        }
    }

    #[inline]
    fn predict_id(&self, id: PcId, _pc: Pc) -> Option<Value> {
        self.predict_slot(id.index())
    }

    #[inline]
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let slot = id.index();
        self.ensure_slot(slot);
        self.index.adopt(id, pc);
        let d = self.descend(slot);
        self.apply_update(slot, &d, actual);
    }

    #[inline]
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        let slot = id.index();
        self.ensure_slot(slot);
        self.index.adopt(id, pc);
        self.step_slot(slot, actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: Pc = Pc(0x300);

    fn feed(p: &mut FcmPredictor, seq: &[Value]) -> Vec<Option<Value>> {
        seq.iter()
            .map(|&v| {
                let pred = p.predict(PC);
                p.update(PC, v);
                pred
            })
            .collect()
    }

    #[test]
    fn predicts_repeated_non_stride_sequence_after_one_period() {
        let mut p = FcmPredictor::new(2);
        let period = [1u64, u64::MAX - 12, 99, 7];
        let seq: Vec<Value> = period.iter().copied().cycle().take(16).collect();
        let preds = feed(&mut p, &seq);
        // After the first period + order values the order-2 contexts repeat,
        // and everything is predicted correctly (paper: LD = 100%).
        for (i, (&pred, &actual)) in preds.iter().zip(&seq).enumerate().skip(period.len() + 2) {
            assert_eq!(pred, Some(actual), "index {i}");
        }
    }

    #[test]
    fn predicts_repeated_stride_sequence() {
        let mut p = FcmPredictor::new(2);
        let seq: Vec<Value> = (0..24).map(|i| 1 + (i % 4)).collect();
        let preds = feed(&mut p, &seq);
        for (i, (&pred, &actual)) in preds.iter().zip(&seq).enumerate().skip(6) {
            assert_eq!(pred, Some(actual), "index {i}");
        }
    }

    #[test]
    fn cannot_predict_novel_stride_sequence() {
        // A pure (non-repeating) stride sequence never repeats a context, so
        // the high orders never match; the low orders predict stale values.
        let mut p = FcmPredictor::new(3);
        let seq: Vec<Value> = (0..32).map(|i| 10 + 3 * i).collect();
        let preds = feed(&mut p, &seq);
        let correct = preds.iter().zip(&seq).filter(|(&p, &a)| p == Some(a)).count();
        assert_eq!(correct, 0, "fcm cannot extrapolate strides (paper Table 1, row S)");
    }

    #[test]
    fn figure1_worked_example_order_by_order() {
        // The sequence from the paper's Figure 1: a a a b c a a a b c a a a ?
        let (a, b, c) = (1u64, 2u64, 3u64);
        let seq = [a, a, a, b, c, a, a, a, b, c, a, a, a];
        // Single-order models exactly as drawn in the figure.
        for (order, expected) in [(0, a), (1, a), (2, a), (3, b)] {
            let mut p = FcmPredictor::with_config(order, Blending::SingleOrder, CounterMode::Exact);
            for &v in &seq {
                p.update(PC, v);
            }
            assert_eq!(p.predict(PC), Some(expected), "order {order}");
        }
    }

    #[test]
    fn order_zero_is_a_frequency_table() {
        let mut p = FcmPredictor::new(0);
        for &v in &[5u64, 5, 5, 9, 9] {
            p.update(PC, v);
        }
        assert_eq!(p.predict(PC), Some(5));
        for _ in 0..3 {
            p.update(PC, 9);
        }
        assert_eq!(p.predict(PC), Some(9));
    }

    #[test]
    fn ties_break_toward_most_recent_value() {
        let mut p = FcmPredictor::new(0);
        p.update(PC, 1);
        p.update(PC, 2);
        // Both values have count 1; 2 is more recent.
        assert_eq!(p.predict(PC), Some(2));
        p.update(PC, 1);
        // Now 1 has count 2.
        assert_eq!(p.predict(PC), Some(1));
    }

    #[test]
    fn blending_falls_back_to_lower_orders() {
        let mut p = FcmPredictor::new(3);
        // Only two values seen: order-3 context cannot exist yet, but lower
        // orders still predict.
        p.update(PC, 4);
        p.update(PC, 4);
        assert_eq!(p.predict(PC), Some(4));
    }

    #[test]
    fn single_order_makes_no_prediction_without_full_context_match() {
        let mut p = FcmPredictor::with_config(2, Blending::SingleOrder, CounterMode::Exact);
        p.update(PC, 1);
        p.update(PC, 2);
        p.update(PC, 3);
        // Context is now (2, 3), never seen before.
        assert_eq!(p.predict(PC), None);
    }

    #[test]
    fn lazy_exclusion_does_not_update_lower_orders_on_high_match() {
        // Construct a case where lazy exclusion and full blending diverge.
        let mut lazy = FcmPredictor::with_config(1, Blending::LazyExclusion, CounterMode::Exact);
        let mut full = FcmPredictor::with_config(1, Blending::Full, CounterMode::Exact);
        // Sequence: 1 2 1 2 1 2 ... then suddenly a fresh context.
        for &v in &[1u64, 2, 1, 2, 1, 2] {
            lazy.update(PC, v);
            full.update(PC, v);
        }
        // Under full blending the order-0 model has counts for both 1 and 2;
        // under lazy exclusion order-0 stopped being updated once order-1
        // matched, so its counts differ.
        let novel = Pc(0x999);
        assert_eq!(lazy.predict(novel), None);
        assert_eq!(full.predict(novel), None);
        // Probe the internal divergence through context_entries: both have
        // the same contexts, but the counts differ. Verify via behaviour:
        // feed a value that only order 0 can predict.
        // (1,2) alternation: after the run, history = [2]; context (2) -> 1.
        assert_eq!(lazy.predict(PC), Some(1));
        assert_eq!(full.predict(PC), Some(1));
    }

    #[test]
    fn saturating_counters_halve_and_adapt_faster() {
        let mode = CounterMode::Saturating { max: 4 };
        let mut p = FcmPredictor::with_config(0, Blending::SingleOrder, mode);
        // Value 7 is seen many times; counts saturate around max.
        for _ in 0..100 {
            p.update(PC, 7);
        }
        // A short burst of 9s now overtakes quickly because 7's count was
        // halved rather than reaching 100.
        for _ in 0..4 {
            p.update(PC, 9);
        }
        assert_eq!(p.predict(PC), Some(9), "saturating counters favour recent history");

        // With exact counters the same burst cannot overtake.
        let mut exact = FcmPredictor::with_config(0, Blending::SingleOrder, CounterMode::Exact);
        for _ in 0..100 {
            exact.update(PC, 7);
        }
        for _ in 0..4 {
            exact.update(PC, 9);
        }
        assert_eq!(exact.predict(PC), Some(7));
    }

    #[test]
    fn no_aliasing_between_pcs() {
        let mut p = FcmPredictor::new(1);
        for i in 0..4 {
            p.update(Pc(0), 10);
            p.update(Pc(4), 20);
            let _ = i;
        }
        assert_eq!(p.predict(Pc(0)), Some(10));
        assert_eq!(p.predict(Pc(4)), Some(20));
        assert_eq!(p.static_entries(), 2);
    }

    #[test]
    fn context_entries_grow_with_distinct_contexts() {
        let mut p = FcmPredictor::new(1);
        assert_eq!(p.context_entries(), 0);
        p.update(PC, 1);
        p.update(PC, 2);
        p.update(PC, 3);
        // Order 0 has one (empty) context; order 1 has contexts (1,) and (2,).
        assert_eq!(p.context_entries(), 3);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(FcmPredictor::new(3).name(), "fcm3");
        let single = FcmPredictor::with_config(2, Blending::SingleOrder, CounterMode::Exact);
        assert_eq!(single.name(), "fcm2-single");
        let sat = FcmPredictor::with_config(1, Blending::Full, CounterMode::Saturating { max: 16 });
        assert_eq!(sat.name(), "fcm1-full-sat16");
    }

    #[test]
    #[should_panic(expected = "unreasonably large")]
    fn rejects_absurd_order() {
        let _ = FcmPredictor::new(65);
    }

    #[test]
    fn spilled_context_keys_do_not_alias() {
        // Order > INLINE_KEY forces keys through the spill arena; distinct
        // 5-value contexts must stay distinct (full-concatenation match).
        let mut p = FcmPredictor::with_config(5, Blending::SingleOrder, CounterMode::Exact);
        let period = [11u64, 22, 33, 44, 55, 66, 77];
        for &v in period.iter().cycle().take(42) {
            p.update(PC, v);
        }
        // Every order-5 window of the period maps to exactly one follower;
        // after several periods the next value is always predicted.
        let preds = feed(&mut p, &period.iter().copied().cycle().take(14).collect::<Vec<_>>());
        for (i, (&pred, &actual)) in preds.iter().zip(period.iter().cycle().take(14)).enumerate() {
            assert_eq!(pred, Some(actual), "index {i}");
        }
    }

    #[test]
    fn high_fanout_contexts_spill_and_keep_exact_argmax() {
        // One order-0 context followed by many distinct values exercises the
        // follower spill arena and the front-is-argmax invariant.
        let mut p = FcmPredictor::new(0);
        for v in 0..40u64 {
            p.update(PC, v);
        }
        // All counts are 1; the most recent value wins the tie.
        assert_eq!(p.predict(PC), Some(39));
        for _ in 0..2 {
            p.update(PC, 17);
        }
        // 17 now has count 3 — the clear argmax.
        assert_eq!(p.predict(PC), Some(17));
        assert_eq!(p.context_entries(), 1);
    }

    #[test]
    fn saturating_halving_can_empty_a_context_which_then_reseeds() {
        // max = 1: every bump halves the just-bumped count back to zero, so
        // the context stays empty and never predicts — but keeps existing.
        let mut p =
            FcmPredictor::with_config(0, Blending::SingleOrder, CounterMode::Saturating { max: 1 });
        p.update(PC, 5);
        p.update(PC, 5);
        assert_eq!(p.predict(PC), None);
        assert_eq!(p.context_entries(), 1);
    }
}
