//! Named, reusable predictor configurations.
//!
//! A [`PredictorConfig`] is a recipe: a display name plus a factory that
//! builds a fresh boxed [`Predictor`] with empty tables. Recipes exist so
//! that the same configuration can be instantiated many times — once per
//! benchmark in a sequential harness, or once per PC shard in the parallel
//! replay engine — while the *set* of configurations under study stays a
//! single value that can be enumerated, cloned, and sent across threads.

use crate::{FcmPredictor, LastValuePredictor, Predictor, StridePredictor};
use std::fmt;
use std::sync::Arc;

/// A named recipe for constructing a value predictor.
///
/// Cloning a config is cheap (the factory is behind an [`Arc`]); building
/// from it always yields a predictor with empty tables.
///
/// # Examples
///
/// ```
/// use dvp_core::PredictorConfig;
/// use dvp_trace::Pc;
///
/// let config = PredictorConfig::new("s2", || {
///     Box::new(dvp_core::StridePredictor::two_delta())
/// });
/// let mut a = config.build();
/// let mut b = config.build(); // independent tables
/// a.update(Pc(0), 7);
/// assert_eq!(a.predict(Pc(0)), Some(7));
/// assert_eq!(b.predict(Pc(0)), None);
/// ```
#[derive(Clone)]
pub struct PredictorConfig {
    name: String,
    build: Arc<dyn Fn() -> Box<dyn Predictor> + Send + Sync>,
}

impl PredictorConfig {
    /// Creates a config from a display name and a factory closure.
    pub fn new<F>(name: impl Into<String>, build: F) -> Self
    where
        F: Fn() -> Box<dyn Predictor> + Send + Sync + 'static,
    {
        PredictorConfig { name: name.into(), build: Arc::new(build) }
    }

    /// The configuration's display name (used in experiment reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds a fresh predictor with empty tables.
    #[must_use]
    pub fn build(&self) -> Box<dyn Predictor> {
        (self.build)()
    }

    /// The five predictors of the paper's accuracy figures (Figures 3–7),
    /// in reporting order: `l`, `s2`, `fcm1`, `fcm2`, `fcm3`.
    #[must_use]
    pub fn paper_bank() -> Vec<PredictorConfig> {
        let mut bank = vec![
            PredictorConfig::new("l", || Box::new(LastValuePredictor::new())),
            PredictorConfig::new("s2", || Box::new(StridePredictor::two_delta())),
        ];
        bank.extend(PredictorConfig::fcm_orders(1..=3));
        bank
    }

    /// One order-`k` FCM config (lazy-exclusion blending, exact counters —
    /// the paper's configuration) per order in `orders`.
    #[must_use]
    pub fn fcm_orders(orders: impl IntoIterator<Item = usize>) -> Vec<PredictorConfig> {
        orders
            .into_iter()
            .map(|order| {
                PredictorConfig::new(format!("fcm{order}"), move || {
                    Box::new(FcmPredictor::new(order))
                })
            })
            .collect()
    }
}

impl fmt::Debug for PredictorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PredictorConfig").field("name", &self.name).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvp_trace::Pc;

    #[test]
    fn paper_bank_names_match_reporting_order() {
        let names: Vec<String> =
            PredictorConfig::paper_bank().iter().map(|c| c.name().to_owned()).collect();
        assert_eq!(names, ["l", "s2", "fcm1", "fcm2", "fcm3"]);
    }

    #[test]
    fn built_predictors_are_independent_and_freshly_named() {
        for config in PredictorConfig::paper_bank() {
            let mut a = config.build();
            let b = config.build();
            assert_eq!(a.name(), config.name());
            a.update(Pc(4), 9);
            assert_eq!(a.static_entries(), 1);
            assert_eq!(b.static_entries(), 0, "{}: builds must not share tables", config.name());
        }
    }

    #[test]
    fn fcm_orders_covers_the_requested_range() {
        let bank = PredictorConfig::fcm_orders(1..=8);
        assert_eq!(bank.len(), 8);
        assert_eq!(bank[7].name(), "fcm8");
        // The built predictor agrees with its recipe's name.
        assert_eq!(bank[7].build().name(), "fcm8");
    }

    #[test]
    fn clones_share_the_factory() {
        let config = PredictorConfig::new("l", || Box::new(LastValuePredictor::new()));
        let clone = config.clone();
        assert_eq!(clone.name(), "l");
        assert_eq!(clone.build().name(), "l");
        assert!(format!("{config:?}").contains("PredictorConfig"));
    }
}
