//! The dense per-instruction state table shared by every unbounded
//! predictor in this crate.
//!
//! The paper's idealized predictors keep "one table entry per static
//! instruction". [`PcTable`] models that entry set as a flat slot vector
//! indexed by dense [`PcId`]s, plus a `Pc → PcId` map that serves the
//! trait's `Pc`-keyed compatibility surface. The replay engine supplies
//! trace-interned ids directly ([`PcTable::dense_slot_mut`]), so the hot
//! loop's state access is one bounds-checked vector index; `Pc`-keyed
//! callers pay one hash probe ([`PcTable::slot_mut`]) — still half of the
//! old `HashMap` predict-probe + update-probe pair, because all in-crate
//! predictors fuse the two halves on the located slot.

use dvp_trace::{Pc, PcId};
use std::collections::HashMap;

/// Dense per-static-instruction storage: `Pc → PcId → Option<S>`.
///
/// Both keying surfaces address the same slots. `Pc`-keyed access interns
/// unseen PCs itself (next free dense index); id-keyed access adopts the
/// caller's id and records the `pc ↔ id` association on first touch, so the
/// `Pc` surface stays consistent after an id-driven replay. One instance
/// must only ever see ids from a single interner — the debug build asserts
/// this.
#[derive(Debug, Clone)]
pub(crate) struct PcTable<S> {
    ids: HashMap<Pc, PcId>,
    slots: Vec<Option<S>>,
}

impl<S> Default for PcTable<S> {
    // Manual impl: the derive would needlessly bound `S: Default`.
    fn default() -> Self {
        PcTable::new()
    }
}

impl<S> PcTable<S> {
    /// An empty table.
    pub(crate) fn new() -> Self {
        PcTable { ids: HashMap::new(), slots: Vec::new() }
    }

    /// Pre-sizes the slot vector for `n` dense ids.
    pub(crate) fn reserve(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, || None);
        }
    }

    /// Read-only slot lookup by PC (the compatibility `predict` path).
    pub(crate) fn get(&self, pc: Pc) -> Option<&S> {
        let id = self.ids.get(&pc)?;
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable slot by PC, interning the PC on first sight (the
    /// compatibility `update`/`step` path). Exactly one hash probe.
    pub(crate) fn slot_mut(&mut self, pc: Pc) -> &mut Option<S> {
        let id = match self.ids.get(&pc) {
            Some(&id) => id,
            None => {
                let id = PcId(u32::try_from(self.slots.len()).expect("more than u32::MAX PCs"));
                self.ids.insert(pc, id);
                self.slots.push(None);
                id
            }
        };
        &mut self.slots[id.index()]
    }

    /// Read-only slot lookup by dense id (the dense `predict_id` path).
    pub(crate) fn get_dense(&self, id: PcId) -> Option<&S> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable slot by dense id (the dense `update_id`/`step_id` path):
    /// grows the vector as needed and records the `pc ↔ id` association
    /// while the slot is still empty.
    pub(crate) fn dense_slot_mut(&mut self, id: PcId, pc: Pc) -> &mut Option<S> {
        let index = id.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        if self.slots[index].is_none() {
            debug_assert!(
                self.ids.get(&pc).is_none_or(|&known| known == id),
                "PcTable driven with ids from two different interners ({pc} is {} here, caller \
                 says {id})",
                self.ids[&pc],
            );
            self.ids.entry(pc).or_insert(id);
        }
        &mut self.slots[index]
    }

    /// Number of distinct PCs tracked.
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// Iterates the occupied slots (in dense-id order).
    pub(crate) fn values(&self) -> impl Iterator<Item = &S> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_surface_interns_and_finds() {
        let mut table: PcTable<u64> = PcTable::new();
        assert!(table.get(Pc(4)).is_none());
        *table.slot_mut(Pc(4)) = Some(7);
        *table.slot_mut(Pc(8)) = Some(9);
        assert_eq!(table.get(Pc(4)), Some(&7));
        assert_eq!(table.get(Pc(8)), Some(&9));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn dense_surface_adopts_caller_ids_and_stays_pc_consistent() {
        let mut table: PcTable<u64> = PcTable::new();
        table.reserve(3);
        *table.dense_slot_mut(PcId(2), Pc(0x40)) = Some(5);
        assert_eq!(table.get_dense(PcId(2)), Some(&5));
        assert_eq!(table.get_dense(PcId(0)), None);
        // The Pc surface sees the id-driven state.
        assert_eq!(table.get(Pc(0x40)), Some(&5));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn dense_access_grows_beyond_reserve() {
        let mut table: PcTable<u64> = PcTable::new();
        *table.dense_slot_mut(PcId(10), Pc(0x10)) = Some(1);
        assert_eq!(table.get_dense(PcId(10)), Some(&1));
        assert_eq!(table.get_dense(PcId(11)), None);
    }

    #[test]
    fn interleaved_surfaces_share_slots() {
        let mut table: PcTable<u64> = PcTable::new();
        *table.dense_slot_mut(PcId(0), Pc(0x8)) = Some(3);
        // Pc-keyed mutation of the same instruction hits the same slot.
        *table.slot_mut(Pc(0x8)) = Some(4);
        assert_eq!(table.get_dense(PcId(0)), Some(&4));
        assert_eq!(table.len(), 1);
    }
}
