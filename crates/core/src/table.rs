//! The dense per-instruction state table shared by every unbounded
//! predictor in this crate.
//!
//! The paper's idealized predictors keep "one table entry per static
//! instruction". [`PcTable`] models that entry set as a flat slot vector
//! indexed by dense [`PcId`]s; a shared [`PcIndex`] maps `Pc → PcId` for
//! the trait's `Pc`-keyed compatibility surface and keeps a dense reverse
//! map (`PcId → Pc`) so the id-keyed hot path never touches the `HashMap`
//! at all: adopting a caller id is one vector read once the association is
//! recorded. `Pc`-keyed callers pay one hash probe ([`PcTable::slot_mut`])
//! — still half of the old `HashMap` predict-probe + update-probe pair,
//! because all in-crate predictors fuse the two halves on the located slot.

use dvp_trace::{Pc, PcId};
use std::collections::HashMap;

/// The two-way `Pc ↔ PcId` association backing a dense predictor table.
///
/// `Pc`-keyed access interns unseen PCs itself (next free dense index);
/// id-keyed access adopts the caller's id via [`PcIndex::adopt`], which is
/// a single vector read on every call after the first. One instance must
/// only ever see ids from a single interner — the debug build asserts
/// this.
#[derive(Debug, Clone, Default)]
pub(crate) struct PcIndex {
    ids: HashMap<Pc, PcId>,
    /// Reverse map, indexed by dense id; `Some` once the association is
    /// recorded (by interning or adoption).
    pcs: Vec<Option<Pc>>,
}

impl PcIndex {
    /// An empty index.
    pub(crate) fn new() -> Self {
        PcIndex::default()
    }

    /// Number of distinct PCs tracked.
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// Dense ids allocated so far (adopted ids count even before their PC
    /// association is recorded).
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.pcs.len()
    }

    /// Grows the reverse map to cover `n` dense ids.
    pub(crate) fn reserve(&mut self, n: usize) {
        if self.pcs.len() < n {
            self.pcs.resize(n, None);
        }
    }

    /// Read-only lookup (the compatibility `predict` path).
    #[inline]
    pub(crate) fn get(&self, pc: Pc) -> Option<PcId> {
        self.ids.get(&pc).copied()
    }

    /// Id for `pc`, interning it at the next free dense index on first
    /// sight (the compatibility `update`/`step` path). One hash probe.
    #[inline]
    pub(crate) fn intern(&mut self, pc: Pc) -> PcId {
        match self.ids.get(&pc) {
            Some(&id) => id,
            None => {
                let id = PcId(u32::try_from(self.pcs.len()).expect("more than u32::MAX PCs"));
                self.ids.insert(pc, id);
                self.pcs.push(Some(pc));
                id
            }
        }
    }

    /// Records the `pc ↔ id` association for a caller-supplied dense id
    /// (the dense `update_id`/`step_id` path). After the first call for an
    /// id this is one bounds-checked vector read — the `HashMap` is only
    /// touched the first time.
    #[inline]
    pub(crate) fn adopt(&mut self, id: PcId, pc: Pc) {
        let index = id.index();
        if index >= self.pcs.len() {
            self.pcs.resize(index + 1, None);
        }
        if self.pcs[index].is_none() {
            debug_assert!(
                self.ids.get(&pc).is_none_or(|&known| known == id),
                "dense table driven with ids from two different interners ({pc} is {} here, \
                 caller says {id})",
                self.ids[&pc],
            );
            self.ids.entry(pc).or_insert(id);
            self.pcs[index] = Some(pc);
        }
    }
}

/// Dense per-static-instruction storage: `Pc → PcId → Option<S>`.
///
/// Both keying surfaces address the same slots; see [`PcIndex`] for the
/// interning/adoption rules.
#[derive(Debug, Clone)]
pub(crate) struct PcTable<S> {
    index: PcIndex,
    slots: Vec<Option<S>>,
}

impl<S> Default for PcTable<S> {
    // Manual impl: the derive would needlessly bound `S: Default`.
    fn default() -> Self {
        PcTable::new()
    }
}

impl<S> PcTable<S> {
    /// An empty table.
    pub(crate) fn new() -> Self {
        PcTable { index: PcIndex::new(), slots: Vec::new() }
    }

    /// Pre-sizes the slot vector for `n` dense ids.
    pub(crate) fn reserve(&mut self, n: usize) {
        self.index.reserve(n);
        if self.slots.len() < n {
            self.slots.resize_with(n, || None);
        }
    }

    /// Read-only slot lookup by PC (the compatibility `predict` path).
    #[inline]
    pub(crate) fn get(&self, pc: Pc) -> Option<&S> {
        let id = self.index.get(pc)?;
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable slot by PC, interning the PC on first sight (the
    /// compatibility `update`/`step` path). Exactly one hash probe.
    #[inline]
    pub(crate) fn slot_mut(&mut self, pc: Pc) -> &mut Option<S> {
        let id = self.index.intern(pc);
        let index = id.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        &mut self.slots[index]
    }

    /// Read-only slot lookup by dense id (the dense `predict_id` path).
    #[inline]
    pub(crate) fn get_dense(&self, id: PcId) -> Option<&S> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable slot by dense id (the dense `update_id`/`step_id` path):
    /// grows the vector as needed and records the `pc ↔ id` association
    /// on first touch. The association check is one vector read, not a
    /// hash probe.
    #[inline]
    pub(crate) fn dense_slot_mut(&mut self, id: PcId, pc: Pc) -> &mut Option<S> {
        let index = id.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        self.index.adopt(id, pc);
        &mut self.slots[index]
    }

    /// Number of distinct PCs tracked.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_surface_interns_and_finds() {
        let mut table: PcTable<u64> = PcTable::new();
        assert!(table.get(Pc(4)).is_none());
        *table.slot_mut(Pc(4)) = Some(7);
        *table.slot_mut(Pc(8)) = Some(9);
        assert_eq!(table.get(Pc(4)), Some(&7));
        assert_eq!(table.get(Pc(8)), Some(&9));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn dense_surface_adopts_caller_ids_and_stays_pc_consistent() {
        let mut table: PcTable<u64> = PcTable::new();
        table.reserve(3);
        *table.dense_slot_mut(PcId(2), Pc(0x40)) = Some(5);
        assert_eq!(table.get_dense(PcId(2)), Some(&5));
        assert_eq!(table.get_dense(PcId(0)), None);
        // The Pc surface sees the id-driven state.
        assert_eq!(table.get(Pc(0x40)), Some(&5));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn dense_access_grows_beyond_reserve() {
        let mut table: PcTable<u64> = PcTable::new();
        *table.dense_slot_mut(PcId(10), Pc(0x10)) = Some(1);
        assert_eq!(table.get_dense(PcId(10)), Some(&1));
        assert_eq!(table.get_dense(PcId(11)), None);
    }

    #[test]
    fn interleaved_surfaces_share_slots() {
        let mut table: PcTable<u64> = PcTable::new();
        *table.dense_slot_mut(PcId(0), Pc(0x8)) = Some(3);
        // Pc-keyed mutation of the same instruction hits the same slot.
        *table.slot_mut(Pc(0x8)) = Some(4);
        assert_eq!(table.get_dense(PcId(0)), Some(&4));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn adoption_is_idempotent_and_interleaves_with_interning() {
        let mut index = PcIndex::new();
        index.adopt(PcId(1), Pc(0x20));
        index.adopt(PcId(1), Pc(0x20));
        assert_eq!(index.len(), 1);
        assert_eq!(index.capacity(), 2);
        // Interning after sparse adoption allocates past the adopted ids.
        let id = index.intern(Pc(0x30));
        assert_eq!(id, PcId(2));
        assert_eq!(index.get(Pc(0x20)), Some(PcId(1)));
        assert_eq!(index.get(Pc(0x30)), Some(PcId(2)));
    }
}
