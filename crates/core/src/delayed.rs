//! Delayed table updates: relaxing the paper's immediate-update idealization.
//!
//! Section 3 of the paper: *"prediction tables are updated immediately after
//! a prediction is made, unlike the situation in practice where it may take
//! many cycles for the actual data value to be known and available for
//! prediction table updates."* In a real pipeline the true value of an
//! instruction only becomes available at writeback, many instructions after
//! the predictor was consulted for the *next* dynamic instances.
//!
//! [`DelayedPredictor`] wraps any [`Predictor`] and models exactly this: an
//! update is buffered and applied only after `delay` further observations
//! have been made, so predictions are served from state that is `delay`
//! observations stale. With `delay == 0` the wrapper is behaviourally
//! identical to the wrapped predictor. The `ext-delay` experiment and the
//! `ablation_update_delay` bench quantify the accuracy cost.

use crate::Predictor;
use dvp_trace::{Pc, PcId, Value};
use std::collections::VecDeque;

/// Wraps a predictor so that updates take effect only after `delay` further
/// observations — the update latency of a real pipeline.
///
/// The wrapper intercepts [`update`](Predictor::update): the (pc, value)
/// pair is queued and the oldest queued update is applied to the inner
/// predictor once the queue exceeds `delay`. Predictions pass through to the
/// inner predictor's (stale) state; pending updates are **not** consulted,
/// which is precisely the hazard a delayed-update pipeline suffers on
/// tight-loop instructions.
///
/// # Examples
///
/// ```
/// use dvp_core::{DelayedPredictor, LastValuePredictor, Predictor};
/// use dvp_trace::Pc;
///
/// let mut p = DelayedPredictor::new(LastValuePredictor::new(), 2);
/// let pc = Pc(0x40);
/// p.update(pc, 7);
/// // The update is still in flight:
/// assert_eq!(p.predict(pc), None);
/// p.update(pc, 7);
/// p.update(pc, 7); // first update now applied
/// assert_eq!(p.predict(pc), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct DelayedPredictor<P> {
    inner: P,
    name: String,
    delay: usize,
    pending: VecDeque<(Option<PcId>, Pc, Value)>,
}

impl<P: Predictor> DelayedPredictor<P> {
    /// Wraps `inner` with an update latency of `delay` observations.
    ///
    /// `delay == 0` reproduces the paper's immediate-update idealization
    /// exactly.
    #[must_use]
    pub fn new(inner: P, delay: usize) -> Self {
        let name = format!("{}+d{delay}", inner.name());
        DelayedPredictor { inner, name, delay, pending: VecDeque::with_capacity(delay + 1) }
    }

    /// The configured update latency.
    #[must_use]
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Number of updates currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Shared access to the wrapped predictor.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Applies all pending updates immediately (e.g. at a trace boundary,
    /// where a pipeline would drain) and returns the wrapped predictor.
    #[must_use]
    pub fn into_inner(mut self) -> P {
        self.drain();
        self.inner
    }

    /// Applies all pending updates immediately.
    pub fn drain(&mut self) {
        while let Some((id, pc, value)) = self.pending.pop_front() {
            self.apply(id, pc, value);
        }
    }

    /// Applies one drained update through whichever keying surface queued
    /// it.
    fn apply(&mut self, id: Option<PcId>, pc: Pc, value: Value) {
        match id {
            Some(id) => self.inner.update_id(id, pc, value),
            None => self.inner.update(pc, value),
        }
    }

    /// Queues one update and applies everything past the latency window.
    fn enqueue(&mut self, id: Option<PcId>, pc: Pc, actual: Value) {
        self.pending.push_back((id, pc, actual));
        while self.pending.len() > self.delay {
            let (i, p, v) = self.pending.pop_front().expect("non-empty: len > delay >= 0");
            self.apply(i, p, v);
        }
    }
}

impl<P: Predictor> Predictor for DelayedPredictor<P> {
    fn predict(&self, pc: Pc) -> Option<Value> {
        self.inner.predict(pc)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        self.enqueue(None, pc, actual);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.inner.static_entries()
    }

    fn reserve_ids(&mut self, n: usize) {
        self.inner.reserve_ids(n);
    }

    #[inline]
    fn predict_id(&self, id: PcId, pc: Pc) -> Option<Value> {
        self.inner.predict_id(id, pc)
    }

    #[inline]
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        self.enqueue(Some(id), pc, actual);
    }

    #[inline]
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        let prediction = self.inner.predict_id(id, pc);
        self.enqueue(Some(id), pc, actual);
        prediction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FcmPredictor, LastValuePredictor, StridePredictor};

    const PC: Pc = Pc(0x40);

    #[test]
    fn zero_delay_is_transparent() {
        let mut delayed = DelayedPredictor::new(StridePredictor::two_delta(), 0);
        let mut direct = StridePredictor::two_delta();
        for step in 0u64..500 {
            let pc = Pc(0x100 + (step % 7) * 4);
            let value = step.wrapping_mul(0x9e37_79b9) >> 13;
            assert_eq!(delayed.predict(pc), direct.predict(pc), "step {step}");
            delayed.update(pc, value);
            direct.update(pc, value);
        }
        assert_eq!(delayed.in_flight(), 0);
    }

    #[test]
    fn updates_apply_after_exactly_delay_observations() {
        let mut p = DelayedPredictor::new(LastValuePredictor::new(), 3);
        p.update(PC, 1);
        assert_eq!(p.in_flight(), 1);
        p.update(PC, 2);
        p.update(PC, 3);
        assert_eq!(p.in_flight(), 3);
        assert_eq!(p.predict(PC), None, "nothing applied yet");
        p.update(PC, 4);
        assert_eq!(p.in_flight(), 3);
        assert_eq!(p.predict(PC), Some(1), "oldest update applied");
    }

    #[test]
    fn constant_sequences_are_immune_to_delay() {
        // A constant stream mispredicts only during the pipeline fill.
        let mut p = DelayedPredictor::new(LastValuePredictor::new(), 8);
        let mut correct = 0;
        for _ in 0..100 {
            correct += u32::from(p.observe(PC, 42));
        }
        assert_eq!(correct, 100 - 9, "one cold miss + 8 in-flight misses");
    }

    #[test]
    fn tight_loop_strides_suffer_from_delay() {
        // With immediate update a stride sequence is exact from value 3; with
        // delay d, the predictor's "last" lags d behind and every prediction
        // is off by d strides.
        let mut delayed = DelayedPredictor::new(StridePredictor::two_delta(), 4);
        let mut correct = 0;
        for v in (0u64..200).map(|i| i * 10) {
            correct += u32::from(delayed.observe(PC, v));
        }
        assert_eq!(correct, 0, "stale last value shifts every stride prediction");

        // The same predictor with delay 0 is near-perfect.
        let mut direct = DelayedPredictor::new(StridePredictor::two_delta(), 0);
        let mut direct_correct = 0;
        for v in (0u64..200).map(|i| i * 10) {
            direct_correct += u32::from(direct.observe(PC, v));
        }
        assert_eq!(direct_correct, 197);
    }

    #[test]
    fn drain_applies_everything() {
        let mut p = DelayedPredictor::new(LastValuePredictor::new(), 16);
        p.update(PC, 9);
        assert_eq!(p.predict(PC), None);
        p.drain();
        assert_eq!(p.in_flight(), 0);
        assert_eq!(p.predict(PC), Some(9));
    }

    #[test]
    fn into_inner_drains_first() {
        let mut p = DelayedPredictor::new(LastValuePredictor::new(), 5);
        p.update(PC, 3);
        let inner = p.into_inner();
        assert_eq!(inner.predict(PC), Some(3));
    }

    #[test]
    fn name_reports_delay() {
        let p = DelayedPredictor::new(FcmPredictor::new(2), 7);
        assert_eq!(p.name(), "fcm2+d7");
    }

    #[test]
    fn interleaved_pcs_drain_in_order() {
        // Updates to different PCs share one in-order pipeline, as writeback
        // order would.
        let mut p = DelayedPredictor::new(LastValuePredictor::new(), 2);
        p.update(Pc(0), 10);
        p.update(Pc(4), 20);
        assert_eq!(p.predict(Pc(0)), None);
        p.update(Pc(8), 30);
        assert_eq!(p.predict(Pc(0)), Some(10));
        assert_eq!(p.predict(Pc(4)), None);
        p.update(Pc(12), 40);
        assert_eq!(p.predict(Pc(4)), Some(20));
    }
}
