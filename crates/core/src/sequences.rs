//! The value-sequence taxonomy of Section 1.1 and the learning-time /
//! learning-degree framework of Section 2.3 (Table 1, Figure 2).

use crate::Predictor;
use dvp_trace::{Pc, Value};

/// The paper's informal classification of simple value sequences.
///
/// # Examples
///
/// ```
/// use dvp_core::sequences::{classify, SequenceClass};
///
/// assert_eq!(classify(&[5, 5, 5, 5]), SequenceClass::Constant);
/// assert_eq!(classify(&[1, 2, 3, 4]), SequenceClass::Stride);
/// assert_eq!(classify(&[1, 2, 3, 1, 2, 3]), SequenceClass::RepeatedStride);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequenceClass {
    /// `5 5 5 5 …` — the same value repeats.
    Constant,
    /// `1 2 3 4 …` — consecutive elements differ by a fixed delta.
    Stride,
    /// Anything that is not constant/stride and does not repeat.
    NonStride,
    /// A finite stride run repeated: `1 2 3 1 2 3 …`.
    RepeatedStride,
    /// A finite non-stride run repeated: `1 -13 -99 7 1 -13 -99 7 …`.
    RepeatedNonStride,
}

impl SequenceClass {
    /// Short code used in Table 1: C, S, NS, RS, RNS.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            SequenceClass::Constant => "C",
            SequenceClass::Stride => "S",
            SequenceClass::NonStride => "NS",
            SequenceClass::RepeatedStride => "RS",
            SequenceClass::RepeatedNonStride => "RNS",
        }
    }

    /// All classes in the paper's order.
    pub const ALL: [SequenceClass; 5] = [
        SequenceClass::Constant,
        SequenceClass::Stride,
        SequenceClass::NonStride,
        SequenceClass::RepeatedStride,
        SequenceClass::RepeatedNonStride,
    ];
}

impl std::fmt::Display for SequenceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// Generates a constant sequence `value, value, …` of length `n`.
#[must_use]
pub fn constant(value: Value, n: usize) -> Vec<Value> {
    vec![value; n]
}

/// Generates a stride sequence `start, start+delta, …` of length `n`
/// (wrapping arithmetic; `delta` may encode a negative stride as a
/// two's-complement bit pattern).
#[must_use]
pub fn stride(start: Value, delta: Value, n: usize) -> Vec<Value> {
    (0..n as u64).map(|i| start.wrapping_add(delta.wrapping_mul(i))).collect()
}

/// Generates a deterministic pseudo-random non-stride sequence from `seed`.
///
/// Uses an xorshift64* generator so results are reproducible across runs and
/// platforms. The all-zero state is avoided by seeding with a fixed offset.
#[must_use]
pub fn non_stride(seed: u64, n: usize) -> Vec<Value> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    if state == 0 {
        state = 1;
    }
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect()
}

/// Repeats `period` until the output has length `n` (truncating the final
/// partial period).
///
/// # Panics
///
/// Panics if `period` is empty.
#[must_use]
pub fn repeated(period: &[Value], n: usize) -> Vec<Value> {
    assert!(!period.is_empty(), "period must be non-empty");
    period.iter().copied().cycle().take(n).collect()
}

/// A repeated stride sequence with the given `period` length:
/// `start, start+delta, …, start+(period-1)·delta`, repeated.
///
/// # Panics
///
/// Panics if `period == 0`.
#[must_use]
pub fn repeated_stride(start: Value, delta: Value, period: usize, n: usize) -> Vec<Value> {
    repeated(&stride(start, delta, period), n)
}

/// A repeated non-stride sequence with `period` distinct pseudo-random
/// values.
///
/// # Panics
///
/// Panics if `period == 0`.
#[must_use]
pub fn repeated_non_stride(seed: u64, period: usize, n: usize) -> Vec<Value> {
    repeated(&non_stride(seed, period), n)
}

/// Classifies a complete sequence per the Section 1.1 taxonomy.
///
/// A sequence shorter than 2 elements is `Constant`. Repetition is detected
/// by finding the smallest period that tiles the sequence; pure stride and
/// constant take precedence over repetition.
#[must_use]
pub fn classify(values: &[Value]) -> SequenceClass {
    if values.len() < 2 || values.windows(2).all(|w| w[0] == w[1]) {
        return SequenceClass::Constant;
    }
    let delta = values[1].wrapping_sub(values[0]);
    if values.windows(2).all(|w| w[1].wrapping_sub(w[0]) == delta) {
        return SequenceClass::Stride;
    }
    // Find the smallest tiling period (if any) that repeats at least twice.
    let n = values.len();
    for p in 1..=n / 2 {
        if (p..n).all(|i| values[i] == values[i - p]) {
            let period = &values[..p];
            // A period of < 3 values cannot evidence a stride (any two
            // values trivially form one), so alternations are non-stride.
            let pd = period.get(1).map(|v| v.wrapping_sub(period[0]));
            let is_stride_run =
                p >= 3 && period.windows(2).all(|w| Some(w[1].wrapping_sub(w[0])) == pd);
            return if is_stride_run {
                SequenceClass::RepeatedStride
            } else {
                SequenceClass::RepeatedNonStride
            };
        }
    }
    SequenceClass::NonStride
}

/// Learning behaviour of a predictor on a sequence (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Learning {
    /// Learning time (LT): the number of values observed before the first
    /// correct prediction. `None` if no prediction was ever correct.
    pub learning_time: Option<usize>,
    /// Learning degree (LD): the fraction of correct predictions *after*
    /// the first correct one (the paper's "percentage of correct
    /// predictions following the first correct prediction"), in `[0, 1]`.
    pub learning_degree: f64,
    /// Total correct predictions over the whole sequence.
    pub correct: usize,
    /// Sequence length.
    pub total: usize,
}

impl Learning {
    /// Overall accuracy over the entire sequence, in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Measures learning time and learning degree of `predictor` on `values`,
/// treating the whole sequence as the output of a single static instruction.
///
/// # Examples
///
/// ```
/// use dvp_core::sequences::{measure_learning, constant};
/// use dvp_core::LastValuePredictor;
///
/// let learn = measure_learning(&mut LastValuePredictor::new(), &constant(5, 50));
/// assert_eq!(learn.learning_time, Some(1)); // one observation suffices
/// assert_eq!(learn.learning_degree, 1.0);   // and then it never misses
/// ```
pub fn measure_learning<P: Predictor + ?Sized>(predictor: &mut P, values: &[Value]) -> Learning {
    let pc = Pc(0);
    let mut first_correct: Option<usize> = None;
    let mut correct = 0usize;
    let mut correct_after = 0usize;
    let mut total_after = 0usize;
    for (i, &v) in values.iter().enumerate() {
        let ok = predictor.observe(pc, v);
        if ok {
            correct += 1;
            if first_correct.is_none() {
                first_correct = Some(i);
            }
        }
        if let Some(fc) = first_correct {
            if i > fc {
                total_after += 1;
                if ok {
                    correct_after += 1;
                }
            }
        }
    }
    Learning {
        learning_time: first_correct,
        learning_degree: if total_after == 0 {
            if first_correct.is_some() {
                1.0
            } else {
                0.0
            }
        } else {
            correct_after as f64 / total_after as f64
        },
        correct,
        total: values.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FcmPredictor, LastValuePredictor, StridePolicy, StridePredictor};

    #[test]
    fn generators_have_requested_length() {
        assert_eq!(constant(1, 7).len(), 7);
        assert_eq!(stride(0, 2, 9).len(), 9);
        assert_eq!(non_stride(1, 11).len(), 11);
        assert_eq!(repeated(&[1, 2], 5), vec![1, 2, 1, 2, 1]);
    }

    #[test]
    fn stride_generator_wraps() {
        let seq = stride(u64::MAX - 1, 1, 4);
        assert_eq!(seq, vec![u64::MAX - 1, u64::MAX, 0, 1]);
    }

    #[test]
    fn negative_stride_via_twos_complement() {
        let seq = stride(10, (-3i64) as u64, 4);
        assert_eq!(seq, vec![10, 7, 4, 1]);
    }

    #[test]
    fn non_stride_is_deterministic_and_seed_sensitive() {
        assert_eq!(non_stride(42, 5), non_stride(42, 5));
        assert_ne!(non_stride(42, 5), non_stride(43, 5));
    }

    #[test]
    fn non_stride_zero_seed_is_fine() {
        let seq = non_stride(0x9E37_79B9_7F4A_7C15, 3); // forces state==0 path
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn classify_all_simple_classes() {
        assert_eq!(classify(&constant(9, 10)), SequenceClass::Constant);
        assert_eq!(classify(&stride(3, 4, 10)), SequenceClass::Stride);
        assert_eq!(classify(&non_stride(7, 32)), SequenceClass::NonStride);
        assert_eq!(classify(&repeated_stride(1, 1, 3, 12)), SequenceClass::RepeatedStride);
        assert_eq!(classify(&repeated_non_stride(5, 4, 16)), SequenceClass::RepeatedNonStride);
    }

    #[test]
    fn classify_edge_cases() {
        assert_eq!(classify(&[]), SequenceClass::Constant);
        assert_eq!(classify(&[1]), SequenceClass::Constant);
        assert_eq!(classify(&[1, 2]), SequenceClass::Stride);
        // Alternation = repeated non-stride with period 2.
        assert_eq!(classify(&[1, 5, 1, 5, 1, 5]), SequenceClass::RepeatedNonStride);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn repeated_rejects_empty_period() {
        let _ = repeated(&[], 5);
    }

    // ----- Table 1 rows, measured -------------------------------------

    #[test]
    fn table1_last_value_on_constant() {
        let learn = measure_learning(&mut LastValuePredictor::new(), &constant(5, 100));
        assert_eq!(learn.learning_time, Some(1), "LT = 1");
        assert_eq!(learn.learning_degree, 1.0, "LD = 100%");
    }

    #[test]
    fn table1_last_value_useless_on_stride() {
        let learn = measure_learning(&mut LastValuePredictor::new(), &stride(0, 1, 100));
        assert_eq!(learn.correct, 0);
    }

    #[test]
    fn table1_stride_on_constant() {
        let mut p = StridePredictor::two_delta();
        let learn = measure_learning(&mut p, &constant(5, 100));
        assert_eq!(learn.learning_time, Some(1), "LT = 1 (zero stride)");
        assert_eq!(learn.learning_degree, 1.0);
    }

    #[test]
    fn table1_stride_on_stride() {
        // Paper: LT = 2, LD = 100%. The hysteresis variant achieves LT = 2.
        let mut p = StridePredictor::with_policy(StridePolicy::Hysteresis { max: 3, threshold: 1 });
        let learn = measure_learning(&mut p, &stride(10, 3, 100));
        assert_eq!(learn.learning_time, Some(2), "LT = 2");
        assert_eq!(learn.learning_degree, 1.0, "LD = 100%");
    }

    #[test]
    fn table1_stride_on_repeated_stride() {
        // Paper: LD = (p-1)/p with one miss per period.
        let p_len = 5;
        let mut p = StridePredictor::with_policy(StridePolicy::Hysteresis { max: 3, threshold: 1 });
        let learn = measure_learning(&mut p, &repeated_stride(1, 1, p_len, 20 * p_len));
        let expected = (p_len - 1) as f64 / p_len as f64;
        assert!(
            (learn.learning_degree - expected).abs() < 0.03,
            "LD {} vs (p-1)/p = {}",
            learn.learning_degree,
            expected
        );
    }

    #[test]
    fn table1_fcm_on_repeated_sequences_reaches_full_accuracy() {
        for seq in [repeated_stride(1, 1, 6, 120), repeated_non_stride(3, 6, 120)] {
            let order = 2;
            let mut p = FcmPredictor::new(order);
            let learn = measure_learning(&mut p, &seq);
            // Paper: LT ≈ p + o, LD = 100%.
            let lt = learn.learning_time.expect("fcm learns repeated sequences");
            assert!(lt <= 6 + order + 2, "LT {lt} should be ≈ p + o");
            assert!(learn.learning_degree > 0.99, "LD {}", learn.learning_degree);
        }
    }

    #[test]
    fn table1_fcm_useless_on_pure_stride_and_non_stride() {
        for seq in [stride(0, 7, 150), non_stride(11, 150)] {
            let mut p = FcmPredictor::new(3);
            let learn = measure_learning(&mut p, &seq);
            assert!(
                learn.accuracy() < 0.05,
                "fcm should fail on non-repeating sequences: {}",
                learn.accuracy()
            );
        }
    }

    #[test]
    fn figure2_worked_example() {
        // Figure 2: sequence 1 2 3 4 repeated; stride (with hysteresis)
        // mispredicts exactly once per period in steady state; order-2 FCM
        // learns after period+order values and then never mispredicts.
        let seq = repeated_stride(1, 1, 4, 48);
        let mut s = StridePredictor::with_policy(StridePolicy::Hysteresis { max: 3, threshold: 1 });
        let learn_s = measure_learning(&mut s, &seq);
        assert!((learn_s.learning_degree - 0.75).abs() < 0.05, "LD ≈ 75%");

        let mut f = FcmPredictor::new(2);
        let learn_f = measure_learning(&mut f, &seq);
        assert_eq!(learn_f.learning_degree, 1.0, "no mispredictions in steady state");
        let lt = learn_f.learning_time.unwrap();
        assert!((5..=8).contains(&lt), "LT ≈ period + order = 6, measured {lt}");
    }

    #[test]
    fn learning_degree_is_one_when_only_last_prediction_correct() {
        // Sequence where the single correct prediction is the final element.
        let mut p = LastValuePredictor::new();
        let learn = measure_learning(&mut p, &[1, 1]);
        assert_eq!(learn.learning_time, Some(1));
        assert_eq!(learn.learning_degree, 1.0);
    }

    #[test]
    fn class_codes_match_paper() {
        let codes: Vec<_> = SequenceClass::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes, vec!["C", "S", "NS", "RS", "RNS"]);
    }
}
