//! Finite-table predictors: the step from the paper's idealization to
//! implementable hardware.
//!
//! The paper simulates **unbounded** tables with one entry per static
//! instruction and flags the consequence itself (Section 4.3): *"We assume
//! unbounded tables in our study, but when real implementations are
//! considered, of course this will not be possible"*, and (Section 4.4)
//! *"these results are for unbounded tables, so aliasing effects caused by
//! different data set sizes will not appear. This may not be the case with
//! fixed table sizes."*
//!
//! This module supplies that missing step: fixed-size, direct-mapped
//! versions of all three predictor families, so the aliasing effect can be
//! measured (see the `ext-tables` experiment and the `ablation_table_size`
//! bench). The context-based predictor follows the two-level
//! **VHT/VPT** organization of Sazeides & Smith's own follow-up technical
//! report (*Implementations of Context Based Value Predictors*,
//! TR-ECE-97-8): a Value History Table indexed by PC holds the recent value
//! history, which is hashed into a Value Prediction Table holding one
//! predicted value per (hashed) context.
//!
//! Within this module, predictions degrade for exactly two reasons, both of
//! which the unbounded predictors rule out by construction:
//!
//! * **index aliasing** — two static instructions (or two contexts) map to
//!   the same slot and overwrite each other's state;
//! * **lossy contexts** — the VPT keeps a single value per hashed context
//!   instead of exact per-value counts.

use crate::Predictor;
use dvp_trace::{Pc, Value};

// The finite predictors keep their direct-mapped, PC-hashed tables even on
// the dense id surface: aliasing between static instructions is the very
// effect they exist to measure, so the default `*_id` fallbacks (which
// route to the PC-keyed methods and ignore the id) are exactly right. Each
// predictor overrides `step` so the fallback fused path computes its slot
// index and tag once per record instead of twice.

/// Geometry of one direct-mapped prediction table.
///
/// A table has `2^index_bits` slots. Each slot optionally stores a partial
/// tag of `tag_bits` bits: with a tag, a lookup whose tag mismatches makes
/// **no** prediction (the slot is then reallocated on update); without tags
/// (`tag_bits == 0`) every lookup matches and aliasing instructions silently
/// share state — cheaper, but destructive.
///
/// # Examples
///
/// ```
/// use dvp_core::TableSpec;
///
/// let spec = TableSpec::new(10).with_tag_bits(8);
/// assert_eq!(spec.slots(), 1024);
/// assert_eq!(spec.tag_bits(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableSpec {
    index_bits: u32,
    tag_bits: u32,
}

impl TableSpec {
    /// A direct-mapped, untagged table with `2^index_bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28 (a 256M-entry table
    /// stops being "finite" in any interesting sense).
    #[must_use]
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits {index_bits} outside the sensible range 1..=28"
        );
        TableSpec { index_bits, tag_bits: 0 }
    }

    /// Adds a partial tag of `tag_bits` bits to every slot.
    ///
    /// # Panics
    ///
    /// Panics if `tag_bits > 32`.
    #[must_use]
    pub fn with_tag_bits(mut self, tag_bits: u32) -> Self {
        assert!(tag_bits <= 32, "tag_bits {tag_bits} > 32");
        self.tag_bits = tag_bits;
        self
    }

    /// Number of slots (`2^index_bits`).
    #[must_use]
    pub fn slots(&self) -> usize {
        1 << self.index_bits
    }

    /// Width of the index in bits.
    #[must_use]
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Width of the per-slot tag in bits (0 = untagged).
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Index of `pc`, folding all PC bits above the index into it so that
    /// large code footprints still spread over the whole table.
    ///
    /// Instruction addresses are word-aligned, so the two zero bits are
    /// dropped first (as any hardware table would).
    #[must_use]
    pub fn index_of(&self, pc: Pc) -> usize {
        (fold(pc.0 >> 2, self.index_bits) & self.mask()) as usize
    }

    /// The tag of `pc` under this geometry (0 when untagged).
    #[must_use]
    pub fn tag_of(&self, pc: Pc) -> u64 {
        if self.tag_bits == 0 {
            return 0;
        }
        // Tag from the bits just above the index, so PCs with equal index
        // still get distinct tags.
        ((pc.0 >> 2) >> self.index_bits) & ((1u64 << self.tag_bits) - 1)
    }

    fn mask(&self) -> u64 {
        (1u64 << self.index_bits) - 1
    }
}

/// Folds a 64-bit word into `bits` bits by xor-ing `bits`-wide chunks.
fn fold(word: u64, bits: u32) -> u64 {
    debug_assert!((1..=32).contains(&bits));
    let mask = (1u64 << bits) - 1;
    let mut acc = 0u64;
    let mut rest = word;
    while rest != 0 {
        acc ^= rest & mask;
        rest >>= bits;
    }
    acc
}

/// Hashes an ordered value history into an `index_bits`-wide table index.
///
/// Each history element is folded to the index width and then rotated by its
/// position before xor-ing, so that the hash is order-sensitive (the
/// histories `[1, 2]` and `[2, 1]` map to different contexts, as full
/// concatenation would).
///
/// # Examples
///
/// ```
/// use dvp_core::hash_history;
///
/// let a = hash_history(&[1, 2, 3], 12);
/// let b = hash_history(&[3, 2, 1], 12);
/// assert!(a < 1 << 12);
/// assert_ne!(a, b); // order-sensitive
/// ```
#[must_use]
pub fn hash_history(history: &[Value], index_bits: u32) -> u64 {
    let mask = (1u64 << index_bits) - 1;
    let shift = (index_bits / 3).max(1);
    let mut acc = 0u64;
    for &v in history {
        let folded = fold(v, index_bits);
        acc = (acc << shift | acc >> (index_bits - shift.min(index_bits - 1))) & mask;
        acc ^= folded;
    }
    acc & mask
}

#[derive(Debug, Clone, Copy)]
struct LastValueSlot {
    tag: u64,
    value: Value,
}

/// A fixed-size, direct-mapped last-value predictor.
///
/// The finite counterpart of [`LastValuePredictor`](crate::LastValuePredictor)
/// with the always-update policy. Aliasing static instructions overwrite each
/// other's last value (untagged) or evict each other (tagged).
///
/// # Examples
///
/// ```
/// use dvp_core::{FiniteLastValuePredictor, Predictor, TableSpec};
/// use dvp_trace::Pc;
///
/// let mut p = FiniteLastValuePredictor::new(TableSpec::new(8));
/// let pc = Pc(0x400100);
/// p.update(pc, 7);
/// assert_eq!(p.predict(pc), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct FiniteLastValuePredictor {
    spec: TableSpec,
    name: String,
    slots: Vec<Option<LastValueSlot>>,
}

impl FiniteLastValuePredictor {
    /// Creates the predictor with the given table geometry.
    #[must_use]
    pub fn new(spec: TableSpec) -> Self {
        let name = format!("l-{}", spec.slots());
        FiniteLastValuePredictor { spec, name, slots: vec![None; spec.slots()] }
    }

    /// The table geometry.
    #[must_use]
    pub fn spec(&self) -> TableSpec {
        self.spec
    }

    /// Estimated storage cost in bits (values + tags).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.spec.slots() as u64 * (64 + u64::from(self.spec.tag_bits()))
    }
}

impl Predictor for FiniteLastValuePredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        let slot = self.slots[self.spec.index_of(pc)].as_ref()?;
        (slot.tag == self.spec.tag_of(pc)).then_some(slot.value)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        self.slots[self.spec.index_of(pc)] =
            Some(LastValueSlot { tag: self.spec.tag_of(pc), value: actual });
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        let tag = self.spec.tag_of(pc);
        let slot = &mut self.slots[self.spec.index_of(pc)];
        let prediction = slot.as_ref().and_then(|s| (s.tag == tag).then_some(s.value));
        *slot = Some(LastValueSlot { tag, value: actual });
        prediction
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[derive(Debug, Clone, Copy)]
struct StrideSlot {
    tag: u64,
    last: Value,
    stride: Value,
    last_delta: Value,
}

/// A fixed-size, direct-mapped two-delta stride predictor.
///
/// The finite counterpart of
/// [`StridePredictor::two_delta`](crate::StridePredictor::two_delta). A tag
/// mismatch resets the slot for the new instruction (losing the old stride);
/// untagged aliasing corrupts strides silently.
///
/// # Examples
///
/// ```
/// use dvp_core::{FiniteStridePredictor, Predictor, TableSpec};
/// use dvp_trace::Pc;
///
/// let mut p = FiniteStridePredictor::new(TableSpec::new(8).with_tag_bits(8));
/// let pc = Pc(0x80);
/// for v in [10, 20, 30] {
///     p.update(pc, v);
/// }
/// assert_eq!(p.predict(pc), Some(40));
/// ```
#[derive(Debug, Clone)]
pub struct FiniteStridePredictor {
    spec: TableSpec,
    name: String,
    slots: Vec<Option<StrideSlot>>,
}

impl FiniteStridePredictor {
    /// Creates the predictor with the given table geometry.
    #[must_use]
    pub fn new(spec: TableSpec) -> Self {
        let name = format!("s2-{}", spec.slots());
        FiniteStridePredictor { spec, name, slots: vec![None; spec.slots()] }
    }

    /// The table geometry.
    #[must_use]
    pub fn spec(&self) -> TableSpec {
        self.spec
    }

    /// Estimated storage cost in bits (three 64-bit fields + tag per slot).
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.spec.slots() as u64 * (3 * 64 + u64::from(self.spec.tag_bits()))
    }
}

impl Predictor for FiniteStridePredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        let slot = self.slots[self.spec.index_of(pc)].as_ref()?;
        (slot.tag == self.spec.tag_of(pc)).then(|| slot.last.wrapping_add(slot.stride))
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let tag = self.spec.tag_of(pc);
        let slot = &mut self.slots[self.spec.index_of(pc)];
        match slot {
            Some(s) if s.tag == tag => {
                let delta = actual.wrapping_sub(s.last);
                if delta == s.last_delta {
                    s.stride = delta;
                }
                s.last_delta = delta;
                s.last = actual;
            }
            _ => *slot = Some(StrideSlot { tag, last: actual, stride: 0, last_delta: 0 }),
        }
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        let tag = self.spec.tag_of(pc);
        let slot = &mut self.slots[self.spec.index_of(pc)];
        match slot {
            Some(s) if s.tag == tag => {
                let prediction = s.last.wrapping_add(s.stride);
                let delta = actual.wrapping_sub(s.last);
                if delta == s.last_delta {
                    s.stride = delta;
                }
                s.last_delta = delta;
                s.last = actual;
                Some(prediction)
            }
            _ => {
                *slot = Some(StrideSlot { tag, last: actual, stride: 0, last_delta: 0 });
                None
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[derive(Debug, Clone)]
struct VhtSlot {
    tag: u64,
    history: Vec<Value>,
}

#[derive(Debug, Clone, Copy)]
struct VptSlot {
    value: Value,
    confidence: u8,
}

/// A fixed-size two-level context-based (FCM) predictor.
///
/// The hardware organization from Sazeides & Smith's follow-up report: a
/// **Value History Table** (VHT) indexed by PC holds the last `order` values
/// of each static instruction; the history is hashed ([`hash_history`]) into
/// a **Value Prediction Table** (VPT) that stores a single predicted value
/// per hashed context, guarded by a small saturating replacement counter.
///
/// Relative to the unbounded [`FcmPredictor`](crate::FcmPredictor) this
/// predictor loses accuracy through VHT aliasing, VPT context aliasing, and
/// keeping one value (not a frequency distribution) per context — the three
/// costs of implementability.
///
/// # Examples
///
/// ```
/// use dvp_core::{FiniteFcmPredictor, Predictor, TableSpec};
/// use dvp_trace::Pc;
///
/// let mut p = FiniteFcmPredictor::new(2, TableSpec::new(8), TableSpec::new(12));
/// let pc = Pc(0x10);
/// // Repeating non-stride sequence: learnable by context, not by stride.
/// for _ in 0..3 {
///     for v in [5u64, 19, 3] {
///         p.update(pc, v);
///     }
/// }
/// assert_eq!(p.predict(pc), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct FiniteFcmPredictor {
    order: usize,
    name: String,
    vht_spec: TableSpec,
    vpt_spec: TableSpec,
    replace_max: u8,
    vht: Vec<Option<VhtSlot>>,
    vpt: Vec<Option<VptSlot>>,
}

impl FiniteFcmPredictor {
    /// Default ceiling of the VPT replacement counter (2-bit counter).
    pub const DEFAULT_REPLACE_MAX: u8 = 3;

    /// Creates an order-`order` two-level predictor with the given VHT and
    /// VPT geometries and a 2-bit replacement counter.
    ///
    /// # Panics
    ///
    /// Panics if `order` is 0 or greater than 8 (the paper's sweep stops at
    /// 8 and hardware history registers are short).
    #[must_use]
    pub fn new(order: usize, vht_spec: TableSpec, vpt_spec: TableSpec) -> Self {
        Self::with_replace_max(order, vht_spec, vpt_spec, Self::DEFAULT_REPLACE_MAX)
    }

    /// As [`FiniteFcmPredictor::new`] with an explicit replacement-counter
    /// ceiling; `replace_max == 0` replaces the VPT value on every miss.
    ///
    /// # Panics
    ///
    /// Panics if `order` is 0 or greater than 8.
    #[must_use]
    pub fn with_replace_max(
        order: usize,
        vht_spec: TableSpec,
        vpt_spec: TableSpec,
        replace_max: u8,
    ) -> Self {
        assert!((1..=8).contains(&order), "order {order} outside 1..=8");
        let name = format!("fcm{order}-vht{}-vpt{}", vht_spec.slots(), vpt_spec.slots());
        FiniteFcmPredictor {
            order,
            name,
            vht_spec,
            vpt_spec,
            replace_max,
            vht: vec![None; vht_spec.slots()],
            vpt: vec![None; vpt_spec.slots()],
        }
    }

    /// The predictor's order (history length).
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The VHT geometry.
    #[must_use]
    pub fn vht_spec(&self) -> TableSpec {
        self.vht_spec
    }

    /// The VPT geometry.
    #[must_use]
    pub fn vpt_spec(&self) -> TableSpec {
        self.vpt_spec
    }

    /// Estimated storage cost in bits: VHT histories + tags, VPT values +
    /// confidence counters.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let vht = self.vht_spec.slots() as u64
            * (self.order as u64 * 64 + u64::from(self.vht_spec.tag_bits()));
        let vpt = self.vpt_spec.slots() as u64 * (64 + 2);
        vht + vpt
    }

    /// The current history the VHT holds for `pc`, if a full-length one
    /// exists under a matching tag.
    fn full_history(&self, pc: Pc) -> Option<&[Value]> {
        let slot = self.vht[self.vht_spec.index_of(pc)].as_ref()?;
        (slot.tag == self.vht_spec.tag_of(pc) && slot.history.len() == self.order)
            .then_some(slot.history.as_slice())
    }

    /// The VPT index of `pc`'s current context, if a full history exists.
    fn vpt_index(&self, pc: Pc) -> Option<usize> {
        self.full_history(pc).map(|h| hash_history(h, self.vpt_spec.index_bits()) as usize)
    }

    /// Trains the VPT slot of the current context with `actual`
    /// (hysteresis-guarded replacement).
    fn train_vpt(&mut self, vpt_index: usize, actual: Value) {
        let slot = &mut self.vpt[vpt_index];
        match slot {
            Some(s) if s.value == actual => {
                s.confidence = s.confidence.saturating_add(1).min(self.replace_max);
            }
            Some(s) => {
                if s.confidence == 0 {
                    s.value = actual;
                } else {
                    s.confidence -= 1;
                }
            }
            None => *slot = Some(VptSlot { value: actual, confidence: 0 }),
        }
    }

    /// Shifts `actual` into `pc`'s VHT history (allocating or evicting the
    /// slot as the tag demands).
    fn shift_vht(&mut self, pc: Pc, actual: Value) {
        let tag = self.vht_spec.tag_of(pc);
        let order = self.order;
        let slot = &mut self.vht[self.vht_spec.index_of(pc)];
        match slot {
            Some(s) if s.tag == tag => {
                if s.history.len() == order {
                    s.history.remove(0);
                }
                s.history.push(actual);
            }
            _ => {
                let mut history = Vec::with_capacity(order);
                history.push(actual);
                *slot = Some(VhtSlot { tag, history });
            }
        }
    }
}

impl Predictor for FiniteFcmPredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        let vpt_index = self.vpt_index(pc)?;
        self.vpt[vpt_index].as_ref().map(|s| s.value)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        // Update the VPT entry for the *current* context first...
        if let Some(vpt_index) = self.vpt_index(pc) {
            self.train_vpt(vpt_index, actual);
        }
        // ...then shift the new value into the VHT history.
        self.shift_vht(pc, actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        // The fused path hashes the context once for both the prediction
        // read and the VPT training write.
        let mut prediction = None;
        if let Some(vpt_index) = self.vpt_index(pc) {
            prediction = self.vpt[vpt_index].as_ref().map(|s| s.value);
            self.train_vpt(vpt_index, actual);
        }
        self.shift_vht(pc, actual);
        prediction
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.vht.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LastValuePredictor, StridePredictor};

    const PC: Pc = Pc(0x400100);

    /// Finds two word-aligned PCs that share a slot index under `spec` but
    /// (when tagged) have different tags — a genuine aliasing pair.
    fn colliding_pair(spec: TableSpec) -> (Pc, Pc) {
        let a = Pc(0x100);
        for candidate in (1..1u64 << 20).map(|i| Pc(0x100 + i * 4)) {
            if spec.index_of(candidate) == spec.index_of(a)
                && (spec.tag_bits() == 0 || spec.tag_of(candidate) != spec.tag_of(a))
            {
                return (a, candidate);
            }
        }
        unreachable!("a colliding pair always exists in a 2^20 PC scan of a small table");
    }

    #[test]
    fn spec_slot_count_and_masking() {
        let spec = TableSpec::new(6);
        assert_eq!(spec.slots(), 64);
        for pc in (0..4096).map(|i| Pc(i * 4)) {
            assert!(spec.index_of(pc) < 64);
        }
    }

    #[test]
    fn spec_untagged_tags_are_zero() {
        let spec = TableSpec::new(6);
        assert_eq!(spec.tag_of(Pc(0x400100)), 0);
        assert_eq!(spec.tag_of(Pc(0x8)), 0);
    }

    #[test]
    fn spec_tags_distinguish_same_index_pcs() {
        let spec = TableSpec::new(6).with_tag_bits(8);
        let (a, b) = colliding_pair(spec);
        assert_eq!(spec.index_of(a), spec.index_of(b));
        assert_ne!(spec.tag_of(a), spec.tag_of(b));
    }

    #[test]
    #[should_panic(expected = "outside the sensible range")]
    fn spec_rejects_zero_index_bits() {
        let _ = TableSpec::new(0);
    }

    #[test]
    #[should_panic(expected = "outside the sensible range")]
    fn spec_rejects_huge_index_bits() {
        let _ = TableSpec::new(29);
    }

    #[test]
    fn fold_is_stable_and_bounded() {
        for bits in 1..=32 {
            let folded = fold(0xdead_beef_cafe_f00d, bits);
            assert!(folded < 1u64 << bits, "bits {bits}");
            assert_eq!(folded, fold(0xdead_beef_cafe_f00d, bits));
        }
        assert_eq!(fold(0, 8), 0);
    }

    #[test]
    fn history_hash_is_order_sensitive_and_bounded() {
        let h1 = hash_history(&[1, 2, 3], 10);
        let h2 = hash_history(&[3, 2, 1], 10);
        assert!(h1 < 1024 && h2 < 1024);
        assert_ne!(h1, h2);
        // And deterministic.
        assert_eq!(h1, hash_history(&[1, 2, 3], 10));
    }

    #[test]
    fn history_hash_handles_single_bit_tables() {
        assert!(hash_history(&[u64::MAX, 7, 0], 1) < 2);
    }

    #[test]
    fn finite_last_value_matches_unbounded_without_aliasing() {
        // 16 distinct PCs in a 256-slot tagged table: no collisions by
        // construction (consecutive word addresses map to consecutive slots).
        let spec = TableSpec::new(8).with_tag_bits(8);
        let mut finite = FiniteLastValuePredictor::new(spec);
        let mut ideal = LastValuePredictor::new();
        let mut state = 0x1234_5678_u64;
        for step in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = Pc(0x400000 + (step % 16) * 4);
            let value = state >> 32;
            assert_eq!(finite.predict(pc), ideal.predict(pc), "step {step}");
            finite.update(pc, value);
            ideal.update(pc, value);
        }
    }

    #[test]
    fn finite_stride_matches_unbounded_without_aliasing() {
        let spec = TableSpec::new(8).with_tag_bits(8);
        let mut finite = FiniteStridePredictor::new(spec);
        let mut ideal = StridePredictor::two_delta();
        for step in 0u64..3000 {
            let pc = Pc(0x400000 + (step % 32) * 4);
            // Mix of stride-y and erratic values.
            let value = if step % 3 == 0 { step * 8 } else { step ^ 0x5a5a };
            assert_eq!(finite.predict(pc), ideal.predict(pc), "step {step}");
            finite.update(pc, value);
            ideal.update(pc, value);
        }
    }

    #[test]
    fn untagged_aliasing_is_destructive_for_last_value() {
        let spec = TableSpec::new(4);
        let mut p = FiniteLastValuePredictor::new(spec);
        let (a, b) = colliding_pair(spec);
        // Interleaved constant streams: each observation clobbers the other.
        let mut correct = 0;
        for _ in 0..50 {
            correct += u32::from(p.observe(a, 111));
            correct += u32::from(p.observe(b, 222));
        }
        assert_eq!(correct, 0, "untagged aliasing destroys two constant streams");

        // The unbounded predictor gets all but the two cold misses.
        let mut ideal = LastValuePredictor::new();
        let mut ideal_correct = 0;
        for _ in 0..50 {
            ideal_correct += u32::from(ideal.observe(a, 111));
            ideal_correct += u32::from(ideal.observe(b, 222));
        }
        assert_eq!(ideal_correct, 98);
    }

    #[test]
    fn tagged_aliasing_thrashes_but_never_mispredicts_across_pcs() {
        let spec = TableSpec::new(4).with_tag_bits(8);
        let mut p = FiniteLastValuePredictor::new(spec);
        let (a, b) = colliding_pair(spec);
        for _ in 0..10 {
            // After b's update, a's lookup tag-mismatches: no prediction,
            // never b's value.
            p.update(b, 222);
            assert_eq!(p.predict(a), None);
            p.update(a, 111);
            assert_eq!(p.predict(b), None);
        }
    }

    #[test]
    fn finite_fcm_learns_repeated_non_stride_sequence() {
        let mut p = FiniteFcmPredictor::new(2, TableSpec::new(8), TableSpec::new(12));
        let period = [9u64, 4, 7, 12];
        let mut preds = Vec::new();
        for _ in 0..6 {
            for &v in &period {
                preds.push(p.predict(PC) == Some(v));
                p.update(PC, v);
            }
        }
        // After two periods every context has been installed once; with a
        // dedicated VPT there are no collisions and LD is 100%.
        assert!(preds[8..].iter().all(|&c| c), "{preds:?}");
    }

    #[test]
    fn finite_fcm_cold_start_makes_no_prediction() {
        let p = FiniteFcmPredictor::new(3, TableSpec::new(6), TableSpec::new(10));
        assert_eq!(p.predict(PC), None);
    }

    #[test]
    fn finite_fcm_needs_full_history_before_predicting() {
        let mut p = FiniteFcmPredictor::new(3, TableSpec::new(6), TableSpec::new(10));
        p.update(PC, 1);
        p.update(PC, 2);
        assert_eq!(p.predict(PC), None, "only 2 of 3 history values present");
        p.update(PC, 3);
        // Full history now exists, but its context was never seen: the VPT
        // slot may be empty (no prediction) — never a panic.
        let _ = p.predict(PC);
    }

    #[test]
    fn finite_fcm_replacement_hysteresis_protects_stable_value() {
        // With a warm counter, a single interfering write does not evict the
        // established prediction.
        let mut p = FiniteFcmPredictor::new(1, TableSpec::new(4), TableSpec::new(8));
        // Train: context [7] -> 7 repeatedly (constant stream).
        for _ in 0..10 {
            p.update(PC, 7);
        }
        assert_eq!(p.predict(PC), Some(7));
        // One deviation: context [7] -> 9. Counter absorbs it.
        p.update(PC, 9);
        // History is now [9]; drive it back to [7] and re-check context [7].
        p.update(PC, 7);
        assert_eq!(p.predict(PC), Some(7), "hysteresis kept the stable value");
    }

    #[test]
    fn finite_fcm_replace_max_zero_always_replaces() {
        let mut p =
            FiniteFcmPredictor::with_replace_max(1, TableSpec::new(4), TableSpec::new(8), 0);
        for _ in 0..10 {
            p.update(PC, 7);
        }
        p.update(PC, 9); // context [7] -> 9 replaces immediately
        p.update(PC, 7); // history back to [7]
        assert_eq!(p.predict(PC), Some(9));
    }

    #[test]
    fn vht_eviction_loses_history() {
        let vht = TableSpec::new(2).with_tag_bits(8); // 4 slots
        let mut p = FiniteFcmPredictor::new(2, vht, TableSpec::new(10));
        let (a, b) = colliding_pair(vht); // same VHT slot, different tag
        for _ in 0..4 {
            for v in [1u64, 2, 3] {
                p.update(a, v);
            }
        }
        assert!(p.predict(a).is_some());
        p.update(b, 5); // evicts a's history
        assert_eq!(p.predict(a), None, "history lost to VHT eviction");
    }

    #[test]
    fn storage_bits_accounting() {
        let l = FiniteLastValuePredictor::new(TableSpec::new(10).with_tag_bits(8));
        assert_eq!(l.storage_bits(), 1024 * (64 + 8));
        let s = FiniteStridePredictor::new(TableSpec::new(10));
        assert_eq!(s.storage_bits(), 1024 * 192);
        let f = FiniteFcmPredictor::new(2, TableSpec::new(10), TableSpec::new(12));
        assert_eq!(f.storage_bits(), 1024 * 128 + 4096 * 66);
    }

    #[test]
    fn names_encode_geometry() {
        assert_eq!(FiniteStridePredictor::new(TableSpec::new(8)).name(), "s2-256");
        assert_eq!(
            FiniteFcmPredictor::new(3, TableSpec::new(8), TableSpec::new(10)).name(),
            "fcm3-vht256-vpt1024"
        );
    }

    #[test]
    #[should_panic(expected = "outside 1..=8")]
    fn finite_fcm_rejects_order_zero() {
        let _ = FiniteFcmPredictor::new(0, TableSpec::new(4), TableSpec::new(8));
    }

    #[test]
    fn static_entries_counts_occupied_slots() {
        let mut p = FiniteLastValuePredictor::new(TableSpec::new(8));
        assert_eq!(p.static_entries(), 0);
        p.update(Pc(0x0), 1);
        p.update(Pc(0x4), 2);
        assert_eq!(p.static_entries(), 2);
        // Updating the same PC does not add a slot.
        p.update(Pc(0x0), 3);
        assert_eq!(p.static_entries(), 2);
    }
}
