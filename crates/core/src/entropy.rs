//! Information content of value streams (the Hammerstrom connection).
//!
//! Section 1.2 of the paper cites Hammerstrom's information-theoretic study
//! of programs: *"His study of the information content of address and
//! instruction streams revealed a high degree of redundancy. This high
//! degree of redundancy immediately suggests predictability."*
//!
//! [`EntropyProfile`] makes that argument measurable for *value* streams: it
//! computes the zeroth-order Shannon entropy of each static instruction's
//! value distribution. A static instruction with entropy 0 always produces
//! the same value (trivially predictable); one with entropy `h` needs at
//! least `h` bits of information per execution from *somewhere* (context,
//! computation, or operand values) to be predicted reliably. Bucketing
//! static instructions by entropy and measuring predictor accuracy per
//! bucket (the `ext-entropy` experiment) quantifies how redundancy and
//! predictability co-vary — and where the paper's predictors run out of
//! exploitable redundancy.

use dvp_trace::{InstrCategory, Pc, TraceRecord, Value};
use std::collections::HashMap;

/// Upper bounds (in bits) of the entropy buckets; the final bucket is
/// unbounded. A 64-bit value stream's entropy never exceeds 64 bits.
pub const ENTROPY_BUCKETS: [f64; 6] = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Shannon entropy (bits) of a discrete distribution given by `counts`.
///
/// Zero counts are ignored; an empty or single-outcome distribution has
/// entropy 0.
///
/// # Examples
///
/// ```
/// use dvp_core::shannon_entropy;
///
/// assert_eq!(shannon_entropy([8u64, 0]), 0.0);
/// let h = shannon_entropy([1u64, 1]);
/// assert!((h - 1.0).abs() < 1e-12); // a fair coin is one bit
/// ```
#[must_use]
pub fn shannon_entropy<I: IntoIterator<Item = u64>>(counts: I) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

#[derive(Debug, Clone, Default)]
struct EntropyEntry {
    category: Option<InstrCategory>,
    counts: HashMap<Value, u64>,
    executions: u64,
}

/// Per-static-instruction value-stream entropy accounting.
///
/// # Examples
///
/// ```
/// use dvp_core::EntropyProfile;
/// use dvp_trace::{InstrCategory, Pc, TraceRecord};
///
/// let mut profile = EntropyProfile::new();
/// for i in 0..16u64 {
///     // PC 0: constant; PC 4: uniform over 4 values (2 bits).
///     profile.record(&TraceRecord::new(Pc(0), InstrCategory::Lui, 7));
///     profile.record(&TraceRecord::new(Pc(4), InstrCategory::Loads, i % 4));
/// }
/// assert_eq!(profile.entropy_of(Pc(0)), Some(0.0));
/// assert!((profile.entropy_of(Pc(4)).unwrap() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EntropyProfile {
    entries: HashMap<Pc, EntropyEntry>,
}

impl EntropyProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        EntropyProfile::default()
    }

    /// Folds one trace record into the profile.
    pub fn record(&mut self, rec: &TraceRecord) {
        let entry = self.entries.entry(rec.pc).or_default();
        entry.category.get_or_insert(rec.category);
        *entry.counts.entry(rec.value).or_insert(0) += 1;
        entry.executions += 1;
    }

    /// Zeroth-order entropy (bits) of the value stream of the static
    /// instruction at `pc`, or `None` if it was never recorded.
    #[must_use]
    pub fn entropy_of(&self, pc: Pc) -> Option<f64> {
        self.entries.get(&pc).map(|e| shannon_entropy(e.counts.values().copied()))
    }

    /// Number of distinct static instructions profiled.
    #[must_use]
    pub fn static_count(&self) -> usize {
        self.entries.len()
    }

    /// Mean entropy over static instructions (each PC weighted equally).
    #[must_use]
    pub fn static_mean_entropy(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let sum: f64 =
            self.entries.values().map(|e| shannon_entropy(e.counts.values().copied())).sum();
        sum / self.entries.len() as f64
    }

    /// Mean entropy weighted by dynamic execution count — the entropy of the
    /// static instruction an *average dynamic instruction* comes from.
    #[must_use]
    pub fn dynamic_mean_entropy(&self) -> f64 {
        let total: u64 = self.entries.values().map(|e| e.executions).sum();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .entries
            .values()
            .map(|e| shannon_entropy(e.counts.values().copied()) * e.executions as f64)
            .sum();
        sum / total as f64
    }

    /// Bucket index in [`ENTROPY_BUCKETS`] for an entropy value
    /// (`ENTROPY_BUCKETS.len()` = the unbounded top bucket).
    #[must_use]
    pub fn bucket_of(entropy: f64) -> usize {
        ENTROPY_BUCKETS.iter().position(|&bound| entropy <= bound).unwrap_or(ENTROPY_BUCKETS.len())
    }

    /// Histograms over the entropy buckets: `(static counts,
    /// dynamic-weighted counts)`, restricted to `category` (or everything
    /// with `None`).
    #[must_use]
    pub fn histograms(&self, category: Option<InstrCategory>) -> (Vec<u64>, Vec<u64>) {
        let n = ENTROPY_BUCKETS.len() + 1;
        let mut static_hist = vec![0u64; n];
        let mut dynamic_hist = vec![0u64; n];
        for entry in self.entries.values() {
            if category.is_some_and(|c| entry.category != Some(c)) {
                continue;
            }
            let bucket = Self::bucket_of(shannon_entropy(entry.counts.values().copied()));
            static_hist[bucket] += 1;
            dynamic_hist[bucket] += entry.executions;
        }
        (static_hist, dynamic_hist)
    }

    /// Splits per-PC prediction outcomes by entropy bucket: returns, per
    /// bucket, `(predictions, correct)` sums over the static instructions in
    /// that bucket. `outcomes` maps each PC to its (predicted, correct)
    /// totals for some predictor; PCs absent from the profile are skipped.
    #[must_use]
    pub fn accuracy_by_bucket(&self, outcomes: &HashMap<Pc, (u64, u64)>) -> Vec<(u64, u64)> {
        let mut buckets = vec![(0u64, 0u64); ENTROPY_BUCKETS.len() + 1];
        for (pc, &(predicted, correct)) in outcomes {
            let Some(entry) = self.entries.get(pc) else { continue };
            let bucket = Self::bucket_of(shannon_entropy(entry.counts.values().copied()));
            buckets[bucket].0 += predicted;
            buckets[bucket].1 += correct;
        }
        buckets
    }

    /// Display labels for the entropy buckets, in order.
    #[must_use]
    pub fn bucket_labels() -> Vec<String> {
        let mut labels: Vec<String> = Vec::with_capacity(ENTROPY_BUCKETS.len() + 1);
        labels.push("0".to_owned());
        for bound in &ENTROPY_BUCKETS[1..] {
            labels.push(format!("<={bound}"));
        }
        labels.push(format!(">{}", ENTROPY_BUCKETS[ENTROPY_BUCKETS.len() - 1]));
        labels
    }
}

impl Extend<TraceRecord> for EntropyProfile {
    fn extend<T: IntoIterator<Item = TraceRecord>>(&mut self, iter: T) {
        for rec in iter {
            self.record(&rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u64, value: Value) -> TraceRecord {
        TraceRecord::new(Pc(pc), InstrCategory::AddSub, value)
    }

    #[test]
    fn entropy_of_uniform_distribution_is_log2_n() {
        assert!((shannon_entropy([5u64, 5, 5, 5]) - 2.0).abs() < 1e-12);
        assert!((shannon_entropy(vec![1u64; 8]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_certain_outcome_is_zero() {
        assert_eq!(shannon_entropy([100u64]), 0.0);
        assert_eq!(shannon_entropy(std::iter::empty()), 0.0);
        assert_eq!(shannon_entropy([0u64, 0, 7]), 0.0);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        // Skewing a 2-outcome distribution lowers entropy below 1 bit.
        let skewed = shannon_entropy([9u64, 1]);
        assert!(skewed > 0.0 && skewed < 1.0, "{skewed}");
    }

    #[test]
    fn profile_tracks_per_pc_distributions() {
        let mut p = EntropyProfile::new();
        for i in 0..32u64 {
            p.record(&rec(0, 1));
            p.record(&rec(4, i % 2));
        }
        assert_eq!(p.entropy_of(Pc(0)), Some(0.0));
        assert!((p.entropy_of(Pc(4)).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(p.entropy_of(Pc(8)), None);
        assert_eq!(p.static_count(), 2);
    }

    #[test]
    fn mean_entropies_weight_as_documented() {
        let mut p = EntropyProfile::new();
        // PC 0: entropy 0, executed 90 times; PC 4: entropy 1, executed 10.
        for _ in 0..90 {
            p.record(&rec(0, 5));
        }
        for i in 0..10u64 {
            p.record(&rec(4, i % 2));
        }
        assert!((p.static_mean_entropy() - 0.5).abs() < 1e-9);
        assert!((p.dynamic_mean_entropy() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(EntropyProfile::bucket_of(0.0), 0);
        assert_eq!(EntropyProfile::bucket_of(0.3), 1);
        assert_eq!(EntropyProfile::bucket_of(1.0), 2);
        assert_eq!(EntropyProfile::bucket_of(3.9), 4);
        assert_eq!(EntropyProfile::bucket_of(8.0), 5);
        assert_eq!(EntropyProfile::bucket_of(20.0), 6);
    }

    #[test]
    fn histograms_cover_all_statics() {
        let mut p = EntropyProfile::new();
        for i in 0..100u64 {
            p.record(&rec(0, 7)); // entropy 0
            p.record(&rec(4, i)); // entropy log2(100) ≈ 6.6
        }
        let (s, d) = p.histograms(None);
        assert_eq!(s.iter().sum::<u64>(), 2);
        assert_eq!(d.iter().sum::<u64>(), 200);
        assert_eq!(s[0], 1, "constant PC in the zero bucket");
        assert_eq!(s[5], 1, "high-entropy PC in the <=8 bucket");
    }

    #[test]
    fn histograms_respect_category_filter() {
        let mut p = EntropyProfile::new();
        p.record(&TraceRecord::new(Pc(0), InstrCategory::Loads, 1));
        p.record(&TraceRecord::new(Pc(4), InstrCategory::Shift, 1));
        let (s, _) = p.histograms(Some(InstrCategory::Loads));
        assert_eq!(s.iter().sum::<u64>(), 1);
    }

    #[test]
    fn accuracy_by_bucket_sums_outcomes() {
        let mut p = EntropyProfile::new();
        for _ in 0..10 {
            p.record(&rec(0, 7)); // bucket 0
        }
        for i in 0..10u64 {
            p.record(&rec(4, i)); // high entropy
        }
        let mut outcomes = HashMap::new();
        outcomes.insert(Pc(0), (10u64, 9u64));
        outcomes.insert(Pc(4), (10u64, 2u64));
        outcomes.insert(Pc(999), (5u64, 5u64)); // unknown PC: skipped
        let buckets = p.accuracy_by_bucket(&outcomes);
        assert_eq!(buckets[0], (10, 9));
        let bucket_high = EntropyProfile::bucket_of(p.entropy_of(Pc(4)).unwrap());
        assert_eq!(buckets[bucket_high], (10, 2));
        let total: u64 = buckets.iter().map(|b| b.0).sum();
        assert_eq!(total, 20, "unknown PCs contribute nothing");
    }

    #[test]
    fn bucket_labels_align_with_buckets() {
        let labels = EntropyProfile::bucket_labels();
        assert_eq!(labels.len(), ENTROPY_BUCKETS.len() + 1);
        assert_eq!(labels[0], "0");
        assert_eq!(labels.last().unwrap(), ">8");
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = EntropyProfile::new();
        assert_eq!(p.static_mean_entropy(), 0.0);
        assert_eq!(p.dynamic_mean_entropy(), 0.0);
        let (s, d) = p.histograms(None);
        assert!(s.iter().all(|&x| x == 0) && d.iter().all(|&x| x == 0));
    }

    #[test]
    fn extend_accepts_record_iterators() {
        let mut p = EntropyProfile::new();
        p.extend((0..5u64).map(|i| rec(0, i)));
        assert_eq!(p.static_count(), 1);
        assert!(p.entropy_of(Pc(0)).unwrap() > 2.0);
    }
}
