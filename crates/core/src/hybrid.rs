//! Hybrid prediction with a per-PC chooser.
//!
//! Section 4.2 of the paper observes that almost 60% of the correct FCM
//! predictions are also captured by the (cheaper) stride predictor and
//! concludes that "a hybrid scheme might be useful for enabling high
//! prediction accuracies at lower cost". The paper stops at the motivation;
//! this module provides the implied design: two component predictors and a
//! saturating-counter chooser indexed by PC — the same structure proposed
//! for hybrid branch predictors (McFarling, 1993).

use crate::table::PcTable;
use crate::Predictor;
use dvp_trace::{Pc, PcId, Value};

/// Per-PC chooser state: a saturating counter biased toward the component
/// that has been correct when the other was wrong.
#[derive(Debug, Clone, Copy)]
struct ChooserEntry {
    counter: i16,
}

/// A two-component hybrid value predictor.
///
/// Both components run (predict and update) on every dynamic instruction;
/// the chooser picks which component's prediction is used. The chooser
/// counter moves toward the second component when it was correct and the
/// first was not, and toward the first in the converse case; ties leave it
/// unchanged.
///
/// # Examples
///
/// ```
/// use dvp_core::{FcmPredictor, HybridPredictor, Predictor, StridePredictor};
/// use dvp_trace::Pc;
///
/// let mut hybrid = HybridPredictor::stride_fcm(2);
/// let pc = Pc(0x44);
/// // A plain stride sequence: the stride side carries it.
/// for v in (0..30u64).map(|i| 3 * i) {
///     hybrid.observe(pc, v);
/// }
/// assert_eq!(hybrid.predict(pc), Some(90));
/// ```
#[derive(Debug)]
pub struct HybridPredictor<A, B> {
    first: A,
    second: B,
    name: String,
    chooser: PcTable<ChooserEntry>,
    max: i16,
}

impl HybridPredictor<crate::StridePredictor, FcmBox> {
    /// The hybrid the paper motivates: two-delta stride + order-`order` FCM.
    #[must_use]
    pub fn stride_fcm(order: usize) -> HybridPredictor<crate::StridePredictor, FcmBox> {
        HybridPredictor::new(crate::StridePredictor::two_delta(), crate::FcmPredictor::new(order))
    }
}

/// Alias so the common stride+fcm hybrid has a nameable type.
pub type FcmBox = crate::FcmPredictor;

impl<A: Predictor, B: Predictor> HybridPredictor<A, B> {
    /// Creates a hybrid of `first` and `second` with a ±8 saturating chooser.
    #[must_use]
    pub fn new(first: A, second: B) -> Self {
        let name = format!("hybrid({}+{})", first.name(), second.name());
        HybridPredictor { first, second, name, chooser: PcTable::new(), max: 8 }
    }

    /// Sets the chooser saturation bound (counter range is `-max..=max`).
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    #[must_use]
    pub fn with_chooser_max(mut self, max: i16) -> Self {
        assert!(max > 0, "chooser bound must be positive");
        self.max = max;
        self
    }

    /// The first (default) component.
    #[must_use]
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second component.
    #[must_use]
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Which component the chooser currently favours for `pc`
    /// (`false` = first, `true` = second). Unseen PCs default to the first
    /// component.
    #[must_use]
    pub fn favours_second(&self, pc: Pc) -> bool {
        self.chooser.get(pc).is_some_and(|e| e.counter > 0)
    }

    /// Adjusts a chooser entry toward the component that was right while
    /// the other was wrong (no movement on ties).
    fn train_chooser(max: i16, entry: &mut ChooserEntry, a_correct: bool, b_correct: bool) {
        if a_correct == b_correct {
            return;
        }
        entry.counter =
            if b_correct { (entry.counter + 1).min(max) } else { (entry.counter - 1).max(-max) };
    }

    /// Arbitrates the two component predictions under a chooser counter.
    fn arbitrate(counter: i16, a: Option<Value>, b: Option<Value>) -> Option<Value> {
        if counter > 0 {
            b.or(a)
        } else {
            a.or(b)
        }
    }
}

impl<A: Predictor, B: Predictor> Predictor for HybridPredictor<A, B> {
    fn predict(&self, pc: Pc) -> Option<Value> {
        let (a, b) = (self.first.predict(pc), self.second.predict(pc));
        let counter = self.chooser.get(pc).map_or(0, |e| e.counter);
        Self::arbitrate(counter, a, b)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let a_correct = self.first.predict(pc) == Some(actual);
        let b_correct = self.second.predict(pc) == Some(actual);
        let entry = self.chooser.slot_mut(pc).get_or_insert(ChooserEntry { counter: 0 });
        Self::train_chooser(self.max, entry, a_correct, b_correct);
        self.first.update(pc, actual);
        self.second.update(pc, actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        // Each component's fused step returns its pre-update prediction
        // and trains it in the same walk (the components' states are
        // independent, so stepping `first` before predicting `second`
        // changes nothing); the chooser slot is located once for both the
        // arbitration read and the training write.
        let a = self.first.step(pc, actual);
        let b = self.second.step(pc, actual);
        let entry = self.chooser.slot_mut(pc).get_or_insert(ChooserEntry { counter: 0 });
        let prediction = Self::arbitrate(entry.counter, a, b);
        Self::train_chooser(self.max, entry, a == Some(actual), b == Some(actual));
        prediction
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.first.static_entries().max(self.second.static_entries())
    }

    fn reserve_ids(&mut self, n: usize) {
        self.chooser.reserve(n);
        self.first.reserve_ids(n);
        self.second.reserve_ids(n);
    }

    #[inline]
    fn predict_id(&self, id: PcId, pc: Pc) -> Option<Value> {
        let (a, b) = (self.first.predict_id(id, pc), self.second.predict_id(id, pc));
        let counter = self.chooser.get_dense(id).map_or(0, |e| e.counter);
        Self::arbitrate(counter, a, b)
    }

    #[inline]
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let a_correct = self.first.predict_id(id, pc) == Some(actual);
        let b_correct = self.second.predict_id(id, pc) == Some(actual);
        let entry = self.chooser.dense_slot_mut(id, pc).get_or_insert(ChooserEntry { counter: 0 });
        Self::train_chooser(self.max, entry, a_correct, b_correct);
        self.first.update_id(id, pc, actual);
        self.second.update_id(id, pc, actual);
    }

    #[inline]
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        // As `step`: one fused walk per component, one chooser access.
        let a = self.first.step_id(id, pc, actual);
        let b = self.second.step_id(id, pc, actual);
        let entry = self.chooser.dense_slot_mut(id, pc).get_or_insert(ChooserEntry { counter: 0 });
        let prediction = Self::arbitrate(entry.counter, a, b);
        Self::train_chooser(self.max, entry, a == Some(actual), b == Some(actual));
        prediction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FcmPredictor, LastValuePredictor, StridePredictor};

    const PC: Pc = Pc(0x500);

    fn accuracy<P: Predictor>(p: &mut P, seq: &[Value]) -> f64 {
        let correct = seq.iter().filter(|&&v| p.observe(PC, v)).count();
        correct as f64 / seq.len() as f64
    }

    #[test]
    fn hybrid_matches_stride_on_pure_strides() {
        let seq: Vec<Value> = (0..200).map(|i| 5 * i).collect();
        let mut hybrid = HybridPredictor::stride_fcm(2);
        let mut stride = StridePredictor::two_delta();
        let ha = accuracy(&mut hybrid, &seq);
        let sa = accuracy(&mut stride, &seq);
        assert!(ha >= sa - 0.02, "hybrid {ha} should track stride {sa}");
    }

    #[test]
    fn hybrid_matches_fcm_on_repeated_non_strides() {
        let period = [17u64, 3, 99, 41, 8];
        let seq: Vec<Value> = period.iter().copied().cycle().take(300).collect();
        let mut hybrid = HybridPredictor::stride_fcm(2);
        let mut fcm = FcmPredictor::new(2);
        let ha = accuracy(&mut hybrid, &seq);
        let fa = accuracy(&mut fcm, &seq);
        assert!(ha >= fa - 0.05, "hybrid {ha} should approach fcm {fa}");
        // And it must beat stride alone by a wide margin on this sequence.
        let mut stride = StridePredictor::two_delta();
        let sa = accuracy(&mut stride, &seq);
        assert!(ha > sa + 0.3, "hybrid {ha} vs stride {sa}");
    }

    #[test]
    fn chooser_shifts_to_better_component() {
        let mut hybrid = HybridPredictor::new(LastValuePredictor::new(), FcmPredictor::new(1));
        // Alternating values: last-value is always wrong, fcm learns it.
        for &v in [1u64, 2].iter().cycle().take(40) {
            hybrid.observe(PC, v);
        }
        assert!(hybrid.favours_second(PC));
    }

    #[test]
    fn chooser_counter_saturates() {
        let mut hybrid = HybridPredictor::new(LastValuePredictor::new(), FcmPredictor::new(1))
            .with_chooser_max(2);
        for &v in [1u64, 2].iter().cycle().take(100) {
            hybrid.observe(PC, v);
        }
        // Still favours the fcm side; a couple of constant values now swing
        // it back quickly because the counter saturated at 2 rather than 50.
        assert!(hybrid.favours_second(PC));
        for _ in 0..6 {
            // Constant run: last-value correct, fcm also correct -> tie, no
            // movement; so inject values both get wrong equally: chooser
            // stays. This just documents tie behaviour.
            hybrid.observe(PC, 7);
        }
        let _ = hybrid.name();
    }

    #[test]
    fn falls_back_to_other_component_when_favourite_has_no_prediction() {
        let mut hybrid = HybridPredictor::new(LastValuePredictor::new(), FcmPredictor::new(3));
        hybrid.update(PC, 42);
        // Chooser defaults to first (last-value), which has a prediction.
        assert_eq!(hybrid.predict(PC), Some(42));
    }

    #[test]
    fn name_composes_component_names() {
        let hybrid = HybridPredictor::stride_fcm(3);
        assert_eq!(hybrid.name(), "hybrid(s2+fcm3)");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chooser_bound_is_rejected() {
        let _ = HybridPredictor::stride_fcm(1).with_chooser_max(0);
    }
}
