//! Stride prediction (Section 2.1 of the paper).

use crate::table::PcTable;
use crate::Predictor;
use dvp_trace::{Pc, PcId, Value};

/// Update policy of a [`StridePredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StridePolicy {
    /// Always recompute the stride from the two most recent values.
    ///
    /// On a repeated stride sequence this mispredicts twice per iteration:
    /// once at the wrap-around and once again because the wrap corrupts the
    /// stride.
    Simple,
    /// Saturating-counter hysteresis (Gonzalez & Gonzalez, 1997): the stride
    /// is replaced only while the confidence counter is below `threshold`.
    /// This reduces the mispredictions on repeated stride sequences to one
    /// per iteration.
    Hysteresis {
        /// Saturation ceiling of the confidence counter.
        max: u8,
        /// The stride may change only when the counter is below this value.
        threshold: u8,
    },
    /// The two-delta method (Eickemeyer & Vassiliadis, 1993): maintain two
    /// strides `s1` (always updated) and `s2` (used for prediction); `s2` is
    /// overwritten only when the same new stride is seen twice in a row.
    ///
    /// This is the variant the paper evaluates (predictor "s2").
    #[default]
    TwoDelta,
}

#[derive(Debug, Clone)]
struct StrideEntry {
    last: Value,
    /// Prediction stride (`s2` in the two-delta scheme).
    stride: Value,
    /// Most recent observed delta (`s1` in the two-delta scheme).
    last_delta: Value,
    counter: u8,
    /// Number of values seen; the first prediction needs one value.
    seen: u64,
}

/// The stride predictor: predicts `last + stride`, where the stride is
/// derived from the difference of the two most recent values.
///
/// All stride arithmetic is performed with wrapping (modulo 2⁶⁴) semantics:
/// values are register bit patterns, and the 32-bit simulator sign-extends
/// results so that small negative strides behave correctly.
///
/// # Examples
///
/// ```
/// use dvp_core::{Predictor, StridePredictor};
/// use dvp_trace::Pc;
///
/// let mut p = StridePredictor::two_delta();
/// let pc = Pc(0x80);
/// for v in [10, 20, 30] {
///     p.update(pc, v);
/// }
/// assert_eq!(p.predict(pc), Some(40));
/// ```
#[derive(Debug, Clone)]
pub struct StridePredictor {
    policy: StridePolicy,
    name: String,
    table: PcTable<StrideEntry>,
}

impl Default for StridePredictor {
    fn default() -> Self {
        StridePredictor::with_policy(StridePolicy::default())
    }
}

impl StridePredictor {
    /// Creates a stride predictor with the paper's two-delta policy.
    #[must_use]
    pub fn new() -> Self {
        StridePredictor::default()
    }

    /// Creates a two-delta stride predictor (alias of [`StridePredictor::new`],
    /// named for symmetry with the paper's "s2").
    #[must_use]
    pub fn two_delta() -> Self {
        StridePredictor::with_policy(StridePolicy::TwoDelta)
    }

    /// Creates a stride predictor with the given update `policy`.
    #[must_use]
    pub fn with_policy(policy: StridePolicy) -> Self {
        let name = match policy {
            StridePolicy::Simple => "s-simple".to_owned(),
            StridePolicy::Hysteresis { max, threshold } => format!("s-sat{max}t{threshold}"),
            StridePolicy::TwoDelta => "s2".to_owned(),
        };
        StridePredictor { policy, name, table: PcTable::new() }
    }

    /// The update policy in use.
    #[must_use]
    pub fn policy(&self) -> StridePolicy {
        self.policy
    }

    fn update_entry(policy: StridePolicy, entry: &mut StrideEntry, actual: Value) {
        let delta = actual.wrapping_sub(entry.last);
        match policy {
            StridePolicy::Simple => {
                entry.stride = delta;
            }
            StridePolicy::Hysteresis { max, threshold } => {
                let predicted = entry.last.wrapping_add(entry.stride);
                if predicted == actual {
                    entry.counter = entry.counter.saturating_add(1).min(max);
                } else {
                    entry.counter = entry.counter.saturating_sub(1);
                }
                if entry.counter < threshold {
                    entry.stride = delta;
                }
            }
            StridePolicy::TwoDelta => {
                if delta == entry.last_delta {
                    entry.stride = delta;
                }
                entry.last_delta = delta;
            }
        }
        entry.last = actual;
        entry.seen += 1;
    }

    /// The fused slot step: one state access serves both the prediction
    /// and the policy update.
    fn step_slot(
        policy: StridePolicy,
        slot: &mut Option<StrideEntry>,
        actual: Value,
    ) -> Option<Value> {
        match slot {
            Some(entry) => {
                let prediction = entry.last.wrapping_add(entry.stride);
                Self::update_entry(policy, entry, actual);
                Some(prediction)
            }
            None => {
                *slot = Some(StrideEntry {
                    last: actual,
                    stride: 0,
                    last_delta: 0,
                    counter: 0,
                    seen: 1,
                });
                None
            }
        }
    }
}

impl Predictor for StridePredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        self.table.get(pc).map(|e| e.last.wrapping_add(e.stride))
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let policy = self.policy;
        let _ = Self::step_slot(policy, self.table.slot_mut(pc), actual);
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.policy, self.table.slot_mut(pc), actual)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.table.len()
    }

    fn reserve_ids(&mut self, n: usize) {
        self.table.reserve(n);
    }

    #[inline]
    fn predict_id(&self, id: PcId, _pc: Pc) -> Option<Value> {
        self.table.get_dense(id).map(|e| e.last.wrapping_add(e.stride))
    }

    #[inline]
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let policy = self.policy;
        let _ = Self::step_slot(policy, self.table.dense_slot_mut(id, pc), actual);
    }

    #[inline]
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.policy, self.table.dense_slot_mut(id, pc), actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: Pc = Pc(0x200);

    fn mispredictions(policy: StridePolicy, seq: &[Value], skip: usize) -> usize {
        let mut p = StridePredictor::with_policy(policy);
        seq.iter()
            .enumerate()
            .filter(|&(i, &v)| {
                let wrong = p.predict(PC) != Some(v);
                p.update(PC, v);
                wrong && i >= skip
            })
            .count()
    }

    #[test]
    fn two_delta_predicts_affine_sequence_after_three_values() {
        let mut p = StridePredictor::two_delta();
        let seq: Vec<Value> = (0..20).map(|i| 100 + 7 * i).collect();
        let mut correct_from = None;
        for (i, &v) in seq.iter().enumerate() {
            if p.predict(PC) == Some(v) && correct_from.is_none() {
                correct_from = Some(i);
            }
            p.update(PC, v);
        }
        // v0 seeds, v1 sets s1, v2 confirms s1 into s2, v3 is predicted.
        assert_eq!(correct_from, Some(3));
    }

    #[test]
    fn two_delta_predicts_negative_strides() {
        let mut p = StridePredictor::two_delta();
        for v in [1000u64, 990, 980, 970] {
            p.update(PC, v);
        }
        assert_eq!(p.predict(PC), Some(960));
    }

    #[test]
    fn stride_wraps_through_zero_with_sign_extended_values() {
        // Sign-extended 32-bit sequence: -2, -1, 0, 1 as u64 bit patterns.
        let seq = [(-2i64) as u64, (-1i64) as u64, 0, 1];
        let mut p = StridePredictor::two_delta();
        for &v in &seq[..3] {
            p.update(PC, v);
        }
        assert_eq!(p.predict(PC), Some(1));
    }

    #[test]
    fn constant_sequence_is_a_zero_stride() {
        let mut p = StridePredictor::two_delta();
        p.update(PC, 5);
        assert_eq!(p.predict(PC), Some(5), "initial stride is zero: acts as last-value");
        p.update(PC, 5);
        assert_eq!(p.predict(PC), Some(5));
    }

    #[test]
    fn simple_policy_mispredicts_twice_per_repeat() {
        // 1 2 3 4 | 1 2 3 4 | ... : at each wrap the simple policy misses the
        // wrap itself and then once more because the stride was corrupted.
        let seq: Vec<Value> = (0..40).map(|i| 1 + (i % 4)).collect();
        // Skip the first period (learning).
        let miss = mispredictions(StridePolicy::Simple, &seq, 4);
        assert_eq!(miss, 2 * 9, "two misses per repeated period");
    }

    #[test]
    fn two_delta_mispredicts_once_per_repeat() {
        let seq: Vec<Value> = (0..40).map(|i| 1 + (i % 4)).collect();
        let miss = mispredictions(StridePolicy::TwoDelta, &seq, 4);
        assert_eq!(miss, 9, "one miss per repeated period");
    }

    #[test]
    fn hysteresis_mispredicts_once_per_repeat() {
        let seq: Vec<Value> = (0..44).map(|i| 1 + (i % 4)).collect();
        let policy = StridePolicy::Hysteresis { max: 3, threshold: 1 };
        // Skip two periods: the counter needs to warm past the threshold.
        let miss = mispredictions(policy, &seq, 8);
        assert_eq!(miss, 9, "one miss per repeated period");
    }

    #[test]
    fn two_delta_does_not_adopt_single_outlier_stride() {
        let mut p = StridePredictor::two_delta();
        for v in [10u64, 20, 30, 40] {
            p.update(PC, v);
        }
        // One outlier delta (+100), then the old stride resumes.
        p.update(PC, 140);
        // s1 is now 100 but s2 is still 10: prediction uses s2.
        assert_eq!(p.predict(PC), Some(150));
    }

    #[test]
    fn names_distinguish_policies() {
        assert_eq!(StridePredictor::two_delta().name(), "s2");
        assert_eq!(StridePredictor::with_policy(StridePolicy::Simple).name(), "s-simple");
        let h = StridePredictor::with_policy(StridePolicy::Hysteresis { max: 3, threshold: 2 });
        assert_eq!(h.name(), "s-sat3t2");
    }

    #[test]
    fn static_entries_counts_distinct_pcs() {
        let mut p = StridePredictor::new();
        for i in 0..5 {
            p.update(Pc(i * 4), i);
        }
        assert_eq!(p.static_entries(), 5);
    }
}
