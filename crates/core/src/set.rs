//! Running several predictors in lockstep and correlating their correct
//! sets (Section 4.2 / Figure 8 of the paper).

use crate::Predictor;
use dvp_trace::{InstrCategory, Pc, PcId, PcInterner, TraceRecord, Value};
use std::collections::HashMap;

const N_CATEGORIES: usize = InstrCategory::ALL.len();

/// Bitmask of which predictors in a [`PredictorSet`] were correct on one
/// dynamic instruction. Bit *i* corresponds to predictor *i* in insertion
/// order.
pub type CorrectMask = u32;

/// Per-PC tally used for per-static-instruction analyses (Figure 9).
#[derive(Debug, Clone, Default)]
pub struct PcTally {
    /// Dynamic occurrences of this static instruction.
    pub total: u64,
    /// Correct predictions per predictor (indexed as in the set).
    pub correct: Vec<u64>,
    /// Category of the static instruction.
    pub category: Option<InstrCategory>,
}

impl PcTally {
    /// Adds another tally for the same static instruction into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two tallies track a different number of predictors.
    pub fn merge(&mut self, other: &PcTally) {
        assert_eq!(self.correct.len(), other.correct.len(), "mismatched predictor counts");
        self.total += other.total;
        for (mine, theirs) in self.correct.iter_mut().zip(&other.correct) {
            *mine += theirs;
        }
        if self.category.is_none() {
            self.category = other.category;
        }
    }
}

/// Runs a group of predictors over the same trace and records, for every
/// dynamic instruction, the *subset* of predictors that were correct.
///
/// This reproduces the methodology behind Figure 8 of the paper (the
/// `l`/`s`/`f`/`ls`/`lf`/`sf`/`lsf`/`np` breakdown) and, with per-PC tracking
/// enabled, Figure 9 (cumulative improvement of FCM over stride across
/// static instructions).
///
/// # Examples
///
/// ```
/// use dvp_core::{FcmPredictor, LastValuePredictor, PredictorSet, StridePredictor};
/// use dvp_trace::{InstrCategory, Pc, TraceRecord};
///
/// let mut set = PredictorSet::new();
/// set.push(Box::new(LastValuePredictor::new()));
/// set.push(Box::new(StridePredictor::two_delta()));
/// set.push(Box::new(FcmPredictor::new(3)));
///
/// for i in 0..100u64 {
///     let rec = TraceRecord::new(Pc(0x10), InstrCategory::AddSub, i);
///     set.observe(&rec);
/// }
/// // On a pure stride sequence the stride predictor (bit 1) dominates.
/// let stride_only = set.subset_count(None, 0b010);
/// assert!(stride_only > 50);
/// ```
#[derive(Default)]
pub struct PredictorSet {
    predictors: Vec<Box<dyn Predictor>>,
    /// subset_counts[category][mask] and an extra row for "all categories".
    subset_counts: Vec<Vec<u64>>,
    /// Interner for the `Pc`-keyed [`PredictorSet::observe`] surface; the
    /// dense [`PredictorSet::observe_dense`] surface uses caller ids and
    /// leaves this empty.
    interner: PcInterner,
    per_pc: Option<PerPcTallies>,
    total: u64,
}

/// Per-PC tallies stored densely by the driving id space; the owning `Pc`
/// is recorded in the slot at creation so reports can translate back
/// without consulting any interner.
#[derive(Debug, Default)]
struct PerPcTallies {
    by_id: Vec<Option<(Pc, PcTally)>>,
}

impl PerPcTallies {
    fn record(&mut self, id: PcId, rec: &TraceRecord, mask: CorrectMask, predictors: usize) {
        let index = id.index();
        if index >= self.by_id.len() {
            self.by_id.resize_with(index + 1, || None);
        }
        let (_, tally) = self.by_id[index].get_or_insert_with(|| {
            (
                rec.pc,
                PcTally { total: 0, correct: vec![0; predictors], category: Some(rec.category) },
            )
        });
        tally.total += 1;
        for (i, c) in tally.correct.iter_mut().enumerate() {
            if mask & (1 << i) != 0 {
                *c += 1;
            }
        }
    }

    fn occupied(&self) -> impl Iterator<Item = &(Pc, PcTally)> {
        self.by_id.iter().filter_map(Option::as_ref)
    }
}

impl std::fmt::Debug for PredictorSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorSet")
            .field("predictors", &self.names())
            .field("total", &self.total)
            .field("per_pc_tracking", &self.per_pc.is_some())
            .finish()
    }
}

impl PredictorSet {
    /// Creates an empty set without per-PC tracking.
    #[must_use]
    pub fn new() -> Self {
        PredictorSet::default()
    }

    /// Creates an empty set that also tallies correctness per static
    /// instruction (needed for Figure 9; costs one hash map entry per PC).
    #[must_use]
    pub fn with_per_pc_tracking() -> Self {
        PredictorSet { per_pc: Some(PerPcTallies::default()), ..PredictorSet::default() }
    }

    /// The canonical trio of the paper's Figure 8: last value, two-delta
    /// stride, and order-3 FCM (bits 0, 1, 2 respectively).
    #[must_use]
    pub fn paper_trio() -> Self {
        let mut set = PredictorSet::with_per_pc_tracking();
        set.push(Box::new(crate::LastValuePredictor::new()));
        set.push(Box::new(crate::StridePredictor::two_delta()));
        set.push(Box::new(crate::FcmPredictor::new(3)));
        set
    }

    /// Adds a predictor; its correctness is reported in the next free bit.
    ///
    /// # Panics
    ///
    /// Panics if the set already holds 32 predictors, or if records were
    /// already observed (the subset accounting cannot be retrofitted).
    pub fn push(&mut self, predictor: Box<dyn Predictor>) {
        assert!(self.predictors.len() < 32, "at most 32 predictors per set");
        assert_eq!(self.total, 0, "predictors must be added before observing records");
        self.predictors.push(predictor);
        let n_masks = 1usize << self.predictors.len();
        self.subset_counts = vec![vec![0; n_masks]; N_CATEGORIES + 1];
    }

    /// Number of predictors in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.predictors.len()
    }

    /// Whether the set contains no predictors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.predictors.is_empty()
    }

    /// Names of the predictors, in bit order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.predictors.iter().map(|p| p.name().to_owned()).collect()
    }

    /// Feeds one trace record to every predictor; returns the mask of
    /// predictors that predicted it correctly.
    ///
    /// This is the `Pc`-keyed surface: the set interns the PC itself (one
    /// hash probe) and then drives every predictor through its dense slot.
    /// Callers replaying an interned trace should pass the trace's ids to
    /// [`observe_dense`](PredictorSet::observe_dense) instead and skip the
    /// probe entirely.
    pub fn observe(&mut self, rec: &TraceRecord) -> CorrectMask {
        let id = self.interner.intern(rec.pc);
        self.observe_dense(id, rec)
    }

    /// [`observe`](PredictorSet::observe) with a caller-supplied dense id
    /// (from the trace's [`PcInterner`]). All ids fed to one set must come
    /// from a single interner.
    pub fn observe_dense(&mut self, id: PcId, rec: &TraceRecord) -> CorrectMask {
        let mut mask: CorrectMask = 0;
        for (i, p) in self.predictors.iter_mut().enumerate() {
            if p.observe_id(id, rec.pc, rec.value) {
                mask |= 1 << i;
            }
        }
        self.subset_counts[rec.category.index()][mask as usize] += 1;
        self.subset_counts[N_CATEGORIES][mask as usize] += 1;
        self.total += 1;
        if let Some(per_pc) = &mut self.per_pc {
            per_pc.record(id, rec, mask, self.predictors.len());
        }
        mask
    }

    /// Batched [`observe_dense`](PredictorSet::observe_dense): replays a
    /// run of records (with their parallel dense ids) through every
    /// predictor's [`observe_batch`](Predictor::observe_batch), then
    /// tallies each record's correct-set mask.
    ///
    /// Bit-for-bit equivalent to calling `observe_dense` per record in
    /// order: each predictor keeps strictly per-PC state, so predictor
    /// *i*'s outcome for record *j* is independent of the other
    /// predictors' progress through the batch. The win is dispatch
    /// amortization — one virtual call per predictor per chunk instead of
    /// one per predictor per record.
    ///
    /// `scratch` carries the gather/outcome buffers across calls so a
    /// replay loop allocates nothing per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `ids` and `records` have different lengths.
    pub fn observe_dense_batch(
        &mut self,
        ids: &[PcId],
        records: &[TraceRecord],
        scratch: &mut SetBatch,
    ) {
        assert_eq!(ids.len(), records.len(), "observe_dense_batch slice lengths differ");
        scratch.pcs.clear();
        scratch.pcs.extend(records.iter().map(|r| r.pc));
        scratch.values.clear();
        scratch.values.extend(records.iter().map(|r| r.value));
        scratch.masks.clear();
        scratch.masks.resize(records.len(), 0);
        scratch.correct.clear();
        scratch.correct.resize(records.len(), false);
        for (i, p) in self.predictors.iter_mut().enumerate() {
            p.observe_batch(ids, &scratch.pcs, &scratch.values, &mut scratch.correct);
            for (mask, &ok) in scratch.masks.iter_mut().zip(&scratch.correct) {
                *mask |= CorrectMask::from(ok) << i;
            }
        }
        let predictors = self.predictors.len();
        for ((rec, &id), &mask) in records.iter().zip(ids).zip(&scratch.masks) {
            self.subset_counts[rec.category.index()][mask as usize] += 1;
            self.subset_counts[N_CATEGORIES][mask as usize] += 1;
            self.total += 1;
            if let Some(per_pc) = &mut self.per_pc {
                per_pc.record(id, rec, mask, predictors);
            }
        }
    }

    /// Pre-sizes every predictor's dense state (and the per-PC tallies)
    /// for `n` interned ids.
    pub fn reserve_ids(&mut self, n: usize) {
        for p in &mut self.predictors {
            p.reserve_ids(n);
        }
        if let Some(per_pc) = &mut self.per_pc {
            if per_pc.by_id.len() < n {
                per_pc.by_id.resize_with(n, || None);
            }
        }
    }

    /// Count of dynamic instructions whose correct-set is *exactly* `mask`,
    /// within `category` (or across all categories when `None`).
    #[must_use]
    pub fn subset_count(&self, category: Option<InstrCategory>, mask: CorrectMask) -> u64 {
        let row = category.map(|c| c.index()).unwrap_or(N_CATEGORIES);
        self.subset_counts.get(row).and_then(|r| r.get(mask as usize)).copied().unwrap_or(0)
    }

    /// Fraction (of the category's dynamic instructions) whose correct-set
    /// is exactly `mask`.
    #[must_use]
    pub fn subset_fraction(&self, category: Option<InstrCategory>, mask: CorrectMask) -> f64 {
        let row = category.map(|c| c.index()).unwrap_or(N_CATEGORIES);
        let denom: u64 = self.subset_counts.get(row).map(|r| r.iter().sum()).unwrap_or(0);
        if denom == 0 {
            0.0
        } else {
            self.subset_count(category, mask) as f64 / denom as f64
        }
    }

    /// Total correct predictions for predictor `index` (any subset
    /// containing its bit), across all categories.
    #[must_use]
    pub fn correct_total(&self, index: usize) -> u64 {
        let bit = 1u64 << index;
        self.subset_counts[N_CATEGORIES]
            .iter()
            .enumerate()
            .filter(|(mask, _)| (*mask as u64) & bit != 0)
            .map(|(_, &count)| count)
            .sum()
    }

    /// Total records observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-PC tallies translated back to their PCs (report-formatting
    /// time), if tracking was enabled. Order follows the driving id space
    /// (first appearance for a sequential replay).
    #[must_use]
    pub fn per_pc_tallies(&self) -> Option<Vec<(Pc, PcTally)>> {
        self.per_pc.as_ref().map(|per_pc| per_pc.occupied().cloned().collect())
    }

    /// Merges another set's accounting into this one.
    ///
    /// Used by the parallel replay engine: each PC shard runs its own
    /// `PredictorSet` over a disjoint slice of the trace, and the shard
    /// results are merged afterwards. Because all counts are exact integer
    /// tallies, the merged set is identical to one produced by a single
    /// sequential pass, regardless of merge order.
    ///
    /// Per-PC tallies are kept only if *both* sets track them; tallies for
    /// the same PC are added together (matched by PC — the two sets'
    /// dense id spaces are unrelated). A merged set is a reporting value:
    /// feeding it further records is unsupported, as the merge compacts
    /// the dense tally ids.
    ///
    /// # Panics
    ///
    /// Panics if the two sets hold different predictor configurations
    /// (compared by name).
    pub fn merge(&mut self, other: PredictorSet) {
        assert_eq!(self.names(), other.names(), "mismatched predictor banks");
        if self.subset_counts.is_empty() {
            self.subset_counts = other.subset_counts;
        } else {
            for (mine, theirs) in self.subset_counts.iter_mut().zip(&other.subset_counts) {
                for (m, t) in mine.iter_mut().zip(theirs) {
                    *m += t;
                }
            }
        }
        self.total += other.total;
        self.per_pc = match (self.per_pc.take(), other.per_pc) {
            (Some(mine), Some(theirs)) => {
                // The two sets were driven by different interners (each
                // shard re-interns its sub-trace), so tallies are matched
                // by PC: one temporary index per merge, touched once per
                // static instruction — never per record.
                let mut index: HashMap<Pc, usize> =
                    mine.occupied().enumerate().map(|(slot, &(pc, _))| (pc, slot)).collect();
                // Compact `mine` so indexes are stable under appends.
                let mut slots: Vec<Option<(Pc, PcTally)>> =
                    mine.by_id.into_iter().flatten().map(Some).collect();
                for (pc, tally) in theirs.by_id.into_iter().flatten() {
                    match index.get(&pc) {
                        Some(&slot) => {
                            slots[slot].as_mut().expect("occupied").1.merge(&tally);
                        }
                        None => {
                            index.insert(pc, slots.len());
                            slots.push(Some((pc, tally)));
                        }
                    }
                }
                Some(PerPcTallies { by_id: slots })
            }
            _ => None,
        };
    }

    /// Accuracy of predictor `index` over everything observed so far.
    #[must_use]
    pub fn accuracy(&self, index: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct_total(index) as f64 / self.total as f64
        }
    }
}

/// Reusable gather/outcome buffers for
/// [`PredictorSet::observe_dense_batch`].
///
/// Create one per replay job and pass it to every chunk call; the buffers
/// grow to the largest chunk seen and are then reused allocation-free.
#[derive(Debug, Default)]
pub struct SetBatch {
    pcs: Vec<Pc>,
    values: Vec<Value>,
    masks: Vec<CorrectMask>,
    correct: Vec<bool>,
}

impl SetBatch {
    /// An empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        SetBatch::default()
    }
}

/// Convenience: run a whole trace through a single predictor and return
/// `(correct, total)`.
///
/// # Examples
///
/// ```
/// use dvp_core::{run_trace, StridePredictor};
/// use dvp_trace::{InstrCategory, Pc, TraceRecord};
///
/// let trace: Vec<_> = (0..50u64)
///     .map(|i| TraceRecord::new(Pc(4), InstrCategory::AddSub, 2 * i))
///     .collect();
/// let (correct, total) = run_trace(&mut StridePredictor::two_delta(), trace.iter());
/// assert_eq!(total, 50);
/// assert!(correct >= 47); // misses only the warmup
/// ```
pub fn run_trace<'a, P, I>(predictor: &mut P, records: I) -> (u64, u64)
where
    P: Predictor + ?Sized,
    I: IntoIterator<Item = &'a TraceRecord>,
{
    let mut correct = 0u64;
    let mut total = 0u64;
    for rec in records {
        if predictor.observe(rec.pc, rec.value) {
            correct += 1;
        }
        total += 1;
    }
    (correct, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FcmPredictor, LastValuePredictor, StridePredictor};
    use dvp_trace::Value;

    fn rec(pc: u64, value: Value) -> TraceRecord {
        TraceRecord::new(Pc(pc), InstrCategory::AddSub, value)
    }

    #[test]
    fn masks_partition_the_trace() {
        let mut set = PredictorSet::paper_trio();
        for i in 0..200u64 {
            set.observe(&rec(8, i % 5));
        }
        let sum: u64 = (0..8u32).map(|m| set.subset_count(None, m)).sum();
        assert_eq!(sum, set.total());
        assert_eq!(set.total(), 200);
    }

    #[test]
    fn constant_sequence_is_caught_by_all_three() {
        let mut set = PredictorSet::paper_trio();
        for _ in 0..100 {
            set.observe(&rec(8, 42));
        }
        // After warmup, all predictors agree: mask 0b111 dominates.
        assert!(set.subset_count(None, 0b111) >= 95);
    }

    #[test]
    fn stride_sequence_excludes_last_value() {
        let mut set = PredictorSet::paper_trio();
        for i in 0..100u64 {
            set.observe(&rec(8, 10 * i));
        }
        // Stride-only (FCM cannot extrapolate, last-value is always stale).
        assert!(set.subset_count(None, 0b010) >= 90);
        assert_eq!(set.subset_count(None, 0b001), 0);
    }

    #[test]
    fn repeated_non_stride_is_fcm_only() {
        let mut set = PredictorSet::paper_trio();
        let period = [9u64, 2, 77, 31, 5, 18];
        for &v in period.iter().cycle().take(300) {
            set.observe(&rec(8, v));
        }
        let fcm_only = set.subset_count(None, 0b100);
        assert!(fcm_only > 250, "fcm-only count {fcm_only}");
    }

    #[test]
    fn per_category_counts_are_separate() {
        let mut set = PredictorSet::paper_trio();
        for i in 0..50u64 {
            set.observe(&TraceRecord::new(Pc(0), InstrCategory::Loads, i));
            set.observe(&TraceRecord::new(Pc(4), InstrCategory::Shift, 7));
        }
        let loads_total: u64 =
            (0..8u32).map(|m| set.subset_count(Some(InstrCategory::Loads), m)).sum();
        assert_eq!(loads_total, 50);
        assert!(set.subset_count(Some(InstrCategory::Shift), 0b111) >= 45);
    }

    #[test]
    fn subset_fractions_sum_to_one() {
        let mut set = PredictorSet::paper_trio();
        for i in 0..100u64 {
            set.observe(&rec(8, i * i));
        }
        let sum: f64 = (0..8u32).map(|m| set.subset_fraction(None, m)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correct_total_matches_direct_run() {
        let values: Vec<Value> = (0..150u64).map(|i| (i * 37) % 11).collect();
        let mut set = PredictorSet::new();
        set.push(Box::new(LastValuePredictor::new()));
        set.push(Box::new(StridePredictor::two_delta()));
        set.push(Box::new(FcmPredictor::new(2)));
        for &v in &values {
            set.observe(&rec(16, v));
        }
        let trace: Vec<TraceRecord> = values.iter().map(|&v| rec(16, v)).collect();
        let (c_l, _) = run_trace(&mut LastValuePredictor::new(), trace.iter());
        let (c_s, _) = run_trace(&mut StridePredictor::two_delta(), trace.iter());
        let (c_f, _) = run_trace(&mut FcmPredictor::new(2), trace.iter());
        assert_eq!(set.correct_total(0), c_l);
        assert_eq!(set.correct_total(1), c_s);
        assert_eq!(set.correct_total(2), c_f);
    }

    #[test]
    fn per_pc_tallies_record_category_and_counts() {
        let mut set = PredictorSet::paper_trio();
        for i in 0..40u64 {
            set.observe(&TraceRecord::new(Pc(12), InstrCategory::Logic, i % 2));
        }
        let tallies = set.per_pc_tallies().unwrap();
        let (pc, tally) = &tallies[0];
        assert_eq!(*pc, Pc(12));
        assert_eq!(tally.total, 40);
        assert_eq!(tally.category, Some(InstrCategory::Logic));
        assert_eq!(tally.correct.len(), 3);
        // FCM learns the alternation; last value never does.
        assert!(tally.correct[2] > tally.correct[0]);
    }

    #[test]
    fn sharded_merge_equals_sequential_run() {
        // Feed a multi-PC trace sequentially into one set, and sharded by
        // pc % 2 into two sets merged afterwards: all counts must agree.
        let records: Vec<TraceRecord> = (0..300u64)
            .map(|i| {
                let pc = 4 * (i % 3);
                TraceRecord::new(Pc(pc), InstrCategory::AddSub, (i / 3) % 7)
            })
            .collect();
        let mut sequential = PredictorSet::paper_trio();
        for rec in &records {
            sequential.observe(rec);
        }
        let mut shards = [PredictorSet::paper_trio(), PredictorSet::paper_trio()];
        for rec in &records {
            shards[(rec.pc.0 % 2) as usize].observe(rec);
        }
        let [first, second] = shards;
        let mut merged = first;
        merged.merge(second);
        assert_eq!(merged.total(), sequential.total());
        for mask in 0..8u32 {
            assert_eq!(merged.subset_count(None, mask), sequential.subset_count(None, mask));
        }
        for index in 0..3 {
            assert_eq!(merged.correct_total(index), sequential.correct_total(index));
        }
        let m: HashMap<Pc, PcTally> = merged.per_pc_tallies().unwrap().into_iter().collect();
        let s: HashMap<Pc, PcTally> = sequential.per_pc_tallies().unwrap().into_iter().collect();
        assert_eq!(m.len(), s.len());
        for (pc, tally) in &s {
            assert_eq!(m[pc].total, tally.total, "{pc}");
            assert_eq!(m[pc].correct, tally.correct, "{pc}");
        }
    }

    #[test]
    fn dense_batch_equals_per_record_observe() {
        // The same multi-PC, multi-category stream through the per-record
        // and batched surfaces (several flush sizes) must agree on every
        // tally.
        let records: Vec<TraceRecord> = (0..240u64)
            .map(|i| {
                let pc = 4 * (i % 5);
                let cat = if i % 2 == 0 { InstrCategory::Loads } else { InstrCategory::AddSub };
                TraceRecord::new(Pc(pc), cat, (i / 5) % 4)
            })
            .collect();
        let mut interner = PcInterner::new();
        let ids: Vec<PcId> = records.iter().map(|r| interner.intern(r.pc)).collect();
        let mut sequential = PredictorSet::paper_trio();
        for (rec, &id) in records.iter().zip(&ids) {
            sequential.observe_dense(id, rec);
        }
        for chunk in [1usize, 7, 64, 240] {
            let mut batched = PredictorSet::paper_trio();
            let mut scratch = SetBatch::new();
            for (recs, idch) in records.chunks(chunk).zip(ids.chunks(chunk)) {
                batched.observe_dense_batch(idch, recs, &mut scratch);
            }
            assert_eq!(batched.total(), sequential.total(), "chunk {chunk}");
            for mask in 0..8u32 {
                assert_eq!(
                    batched.subset_count(None, mask),
                    sequential.subset_count(None, mask),
                    "chunk {chunk} mask {mask}"
                );
                assert_eq!(
                    batched.subset_count(Some(InstrCategory::Loads), mask),
                    sequential.subset_count(Some(InstrCategory::Loads), mask),
                    "chunk {chunk} loads mask {mask}"
                );
            }
            let b: HashMap<Pc, PcTally> = batched.per_pc_tallies().unwrap().into_iter().collect();
            let s: HashMap<Pc, PcTally> =
                sequential.per_pc_tallies().unwrap().into_iter().collect();
            assert_eq!(b.len(), s.len());
            for (pc, tally) in &s {
                assert_eq!(b[pc].correct, tally.correct, "chunk {chunk} {pc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "mismatched predictor banks")]
    fn merge_rejects_different_banks() {
        let mut trio = PredictorSet::paper_trio();
        let mut single = PredictorSet::new();
        single.push(Box::new(LastValuePredictor::new()));
        trio.merge(single);
    }

    #[test]
    #[should_panic(expected = "before observing")]
    fn cannot_push_after_observing() {
        let mut set = PredictorSet::new();
        set.push(Box::new(LastValuePredictor::new()));
        set.observe(&rec(0, 1));
        set.push(Box::new(StridePredictor::two_delta()));
    }
}
