//! Confidence estimation for value predictions.
//!
//! The paper studies prediction *accuracy* in isolation; any real use of
//! value prediction (its Section 5 "future research") must decide *when to
//! speculate*, because a misprediction costs a squash. The standard
//! mechanism — also used by the hysteresis variants in Section 2.1 — is a
//! per-PC saturating confidence counter: predictions are only *used* when
//! the counter is at or above a threshold.
//!
//! [`ConfidentPredictor`] wraps any [`Predictor`] with such a filter and
//! tracks the resulting coverage/accuracy trade-off.

use crate::Predictor;
use dvp_trace::{Pc, Value};
use std::collections::HashMap;

/// Outcome of one confident observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeculationOutcome {
    /// The predictor offered a value and confidence was high: speculate.
    /// The payload says whether the speculation was correct.
    Speculated {
        /// Whether the predicted value matched the actual one.
        correct: bool,
    },
    /// Confidence was below threshold (or no prediction existed): do not
    /// speculate.
    Suppressed,
}

/// A predictor wrapped with per-PC saturating confidence counters.
///
/// The counter increments on every correct underlying prediction and
/// decrements (by `penalty`) on every incorrect one; predictions are
/// exposed only when the counter is at least `threshold`.
///
/// # Examples
///
/// ```
/// use dvp_core::{ConfidentPredictor, LastValuePredictor, Predictor};
/// use dvp_trace::Pc;
///
/// let mut p = ConfidentPredictor::new(LastValuePredictor::new(), 4, 2, 2);
/// let pc = Pc(0x60);
/// // A noisy PC: alternating values never build confidence, so the
/// // wrapped predictor stays quiet instead of being wrong half the time.
/// for &v in [1u64, 2].iter().cycle().take(20) {
///     p.observe_speculative(pc, v);
/// }
/// assert_eq!(p.coverage(), 0.0);
/// ```
#[derive(Debug)]
pub struct ConfidentPredictor<P> {
    inner: P,
    name: String,
    counters: HashMap<Pc, u8>,
    max: u8,
    threshold: u8,
    penalty: u8,
    speculated: u64,
    speculated_correct: u64,
    total: u64,
}

impl<P: Predictor> ConfidentPredictor<P> {
    /// Wraps `inner` with counters saturating at `max`, exposing
    /// predictions at `threshold`, and decrementing by `penalty` on a miss.
    ///
    /// # Panics
    ///
    /// Panics if `threshold > max` or `max == 0`.
    #[must_use]
    pub fn new(inner: P, max: u8, threshold: u8, penalty: u8) -> Self {
        assert!(max > 0 && threshold <= max, "need 0 < threshold <= max");
        let name = format!("conf{threshold}of{max}({})", inner.name());
        ConfidentPredictor {
            inner,
            name,
            counters: HashMap::new(),
            max,
            threshold,
            penalty,
            speculated: 0,
            speculated_correct: 0,
            total: 0,
        }
    }

    /// The wrapped predictor.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Confidence counter for `pc` (0 if unseen).
    #[must_use]
    pub fn confidence(&self, pc: Pc) -> u8 {
        self.counters.get(&pc).copied().unwrap_or(0)
    }

    /// One full speculation step: decide, check, update.
    pub fn observe_speculative(&mut self, pc: Pc, actual: Value) -> SpeculationOutcome {
        self.total += 1;
        let raw = self.inner.predict(pc);
        let confident = self.confidence(pc) >= self.threshold;
        let outcome = match raw {
            Some(value) if confident => {
                let correct = value == actual;
                self.speculated += 1;
                self.speculated_correct += u64::from(correct);
                SpeculationOutcome::Speculated { correct }
            }
            _ => SpeculationOutcome::Suppressed,
        };
        // Confidence tracks the *underlying* predictor's correctness so it
        // can warm up while suppressed.
        if let Some(value) = raw {
            let counter = self.counters.entry(pc).or_insert(0);
            if value == actual {
                *counter = counter.saturating_add(1).min(self.max);
            } else {
                *counter = counter.saturating_sub(self.penalty);
            }
        }
        self.inner.update(pc, actual);
        outcome
    }

    /// Fraction of observations on which the wrapper chose to speculate.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.speculated as f64 / self.total as f64
        }
    }

    /// Accuracy *of the speculated subset* (1.0 when nothing speculated).
    #[must_use]
    pub fn speculated_accuracy(&self) -> f64 {
        if self.speculated == 0 {
            1.0
        } else {
            self.speculated_correct as f64 / self.speculated as f64
        }
    }
}

impl<P: Predictor> Predictor for ConfidentPredictor<P> {
    /// Exposes a prediction only above the confidence threshold.
    fn predict(&self, pc: Pc) -> Option<Value> {
        if self.confidence(pc) >= self.threshold {
            self.inner.predict(pc)
        } else {
            None
        }
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        // Route through the speculation bookkeeping so the two APIs agree.
        let _ = self.observe_speculative(pc, actual);
        self.total -= 1; // observe() callers count totals themselves
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.inner.static_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LastValuePredictor, StridePredictor};

    const PC: Pc = Pc(0x900);

    #[test]
    fn confidence_gates_predictions() {
        let mut p = ConfidentPredictor::new(LastValuePredictor::new(), 4, 2, 2);
        p.observe_speculative(PC, 7); // no prediction yet
        assert_eq!(p.predict(PC), None, "confidence 0 suppresses");
        p.observe_speculative(PC, 7); // underlying correct -> conf 1
        assert_eq!(p.predict(PC), None);
        p.observe_speculative(PC, 7); // conf 2 == threshold
        assert_eq!(p.predict(PC), Some(7));
    }

    #[test]
    fn noisy_streams_are_suppressed_entirely() {
        let mut p = ConfidentPredictor::new(LastValuePredictor::new(), 4, 2, 2);
        for &v in [1u64, 2, 3].iter().cycle().take(60) {
            p.observe_speculative(PC, v);
        }
        assert_eq!(p.coverage(), 0.0);
        assert_eq!(p.speculated_accuracy(), 1.0, "vacuous accuracy when suppressed");
    }

    #[test]
    fn speculated_accuracy_exceeds_raw_accuracy_on_mixed_stream() {
        // 70% constant, 30% noise: raw last-value accuracy ~ 70%, but the
        // confident subset should be much cleaner.
        let values: Vec<u64> =
            (0..400).map(|i| if i % 10 < 7 { 5 } else { 1000 + i as u64 }).collect();
        let mut raw = LastValuePredictor::new();
        let mut raw_correct = 0u64;
        for &v in &values {
            raw_correct += u64::from(raw.observe(PC, v));
        }
        let raw_acc = raw_correct as f64 / values.len() as f64;

        let mut conf = ConfidentPredictor::new(LastValuePredictor::new(), 8, 4, 4);
        for &v in &values {
            conf.observe_speculative(PC, v);
        }
        assert!(conf.coverage() > 0.1, "coverage {}", conf.coverage());
        assert!(
            conf.speculated_accuracy() > raw_acc + 0.05,
            "confident subset {:.2} should beat raw {:.2}",
            conf.speculated_accuracy(),
            raw_acc
        );
    }

    #[test]
    fn penalty_resets_confidence_fast() {
        let mut p = ConfidentPredictor::new(LastValuePredictor::new(), 4, 2, 4);
        for _ in 0..6 {
            p.observe_speculative(PC, 9);
        }
        assert!(p.confidence(PC) >= 2);
        p.observe_speculative(PC, 10); // one miss wipes confidence
        assert_eq!(p.confidence(PC), 0);
    }

    #[test]
    fn works_with_any_inner_predictor() {
        let mut p = ConfidentPredictor::new(StridePredictor::two_delta(), 4, 1, 1);
        for v in (0..20u64).map(|i| 10 * i) {
            p.observe_speculative(PC, v);
        }
        assert_eq!(p.predict(PC), Some(200));
        assert!(p.name().starts_with("conf1of4(s2"));
        assert_eq!(p.static_entries(), 1);
        assert!(p.inner().predict(PC).is_some());
    }

    #[test]
    fn predictor_impl_counts_consistently() {
        let mut p = ConfidentPredictor::new(LastValuePredictor::new(), 4, 1, 1);
        let mut correct = 0;
        for _ in 0..10 {
            correct += u32::from(p.observe(PC, 3));
        }
        assert!(correct >= 8);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        let _ = ConfidentPredictor::new(LastValuePredictor::new(), 2, 3, 1);
    }
}
