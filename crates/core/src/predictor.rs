//! The common interface of all value predictors.

use dvp_trace::{Pc, Value};

/// A data value predictor in the paper's idealized setting.
///
/// A predictor is a map from microarchitectural state to a predicted next
/// value. Following Section 2 of Sazeides & Smith (1997), predictors here:
///
/// * are indexed **only** by the program counter of the instruction being
///   predicted (one table entry per static instruction, no aliasing,
///   unbounded tables);
/// * are updated **immediately** after each prediction with the true value
///   (no update latency).
///
/// The protocol is: call [`predict`](Predictor::predict), compare with the
/// actual outcome, then call [`update`](Predictor::update) with the actual
/// value. [`observe`](Predictor::observe) bundles the two.
///
/// `predict` returns `None` when the predictor has no basis for a prediction
/// (e.g. the first dynamic instance of an instruction). The evaluation
/// counts `None` as an incorrect prediction, exactly as an implementation
/// that must always produce *some* value would at best guess.
///
/// # Examples
///
/// ```
/// use dvp_core::{LastValuePredictor, Predictor};
/// use dvp_trace::Pc;
///
/// let mut p = LastValuePredictor::new();
/// let pc = Pc(0x400100);
/// assert_eq!(p.predict(pc), None); // nothing seen yet
/// p.update(pc, 7);
/// assert_eq!(p.predict(pc), Some(7));
/// ```
///
/// Predictors are `Send + Sync` so traces can be processed from worker
/// threads and results cached in statics; every table type in this crate
/// (hash maps of plain values) satisfies this automatically.
pub trait Predictor: Send + Sync {
    /// Returns the predicted next value for the instruction at `pc`, or
    /// `None` when no prediction can be made yet.
    fn predict(&self, pc: Pc) -> Option<Value>;

    /// Informs the predictor of the actual value produced by the instruction
    /// at `pc`. Tables are updated immediately (the paper's idealization).
    fn update(&mut self, pc: Pc, actual: Value);

    /// A short human-readable name (used in experiment reports),
    /// e.g. `"l"`, `"s2"`, `"fcm3"`.
    fn name(&self) -> String;

    /// Predicts, then updates with `actual`; returns whether the prediction
    /// was made and correct.
    ///
    /// This is the common inner loop of every experiment in the paper.
    fn observe(&mut self, pc: Pc, actual: Value) -> bool {
        let correct = self.predict(pc) == Some(actual);
        self.update(pc, actual);
        correct
    }

    /// Number of static instructions (distinct PCs) currently tracked.
    fn static_entries(&self) -> usize;
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn predict(&self, pc: Pc) -> Option<Value> {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        (**self).update(pc, actual)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn observe(&mut self, pc: Pc, actual: Value) -> bool {
        (**self).observe(pc, actual)
    }

    fn static_entries(&self) -> usize {
        (**self).static_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LastValuePredictor;

    #[test]
    fn observe_is_predict_then_update() {
        let mut p = LastValuePredictor::new();
        let pc = Pc(8);
        assert!(!p.observe(pc, 3)); // no prior history: incorrect
        assert!(p.observe(pc, 3)); // last value repeats: correct
        assert!(!p.observe(pc, 4)); // changed: incorrect
        assert!(p.observe(pc, 4));
    }

    #[test]
    fn boxed_predictor_delegates() {
        let mut p: Box<dyn Predictor> = Box::new(LastValuePredictor::new());
        let pc = Pc(16);
        p.update(pc, 9);
        assert_eq!(p.predict(pc), Some(9));
        assert_eq!(p.name(), "l");
        assert_eq!(p.static_entries(), 1);
    }
}
