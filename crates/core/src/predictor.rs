//! The common interface of all value predictors.

use dvp_trace::{Pc, PcId, Value};

/// A data value predictor in the paper's idealized setting.
///
/// A predictor is a map from microarchitectural state to a predicted next
/// value. Following Section 2 of Sazeides & Smith (1997), predictors here:
///
/// * are indexed **only** by the program counter of the instruction being
///   predicted (one table entry per static instruction, no aliasing,
///   unbounded tables);
/// * are updated **immediately** after each prediction with the true value
///   (no update latency).
///
/// The protocol is: call [`predict`](Predictor::predict), compare with the
/// actual outcome, then call [`update`](Predictor::update) with the actual
/// value. [`step`](Predictor::step) fuses the two;
/// [`observe`](Predictor::observe) reduces the fused step to a
/// correct/incorrect bit.
///
/// `predict` returns `None` when the predictor has no basis for a prediction
/// (e.g. the first dynamic instance of an instruction). The evaluation
/// counts `None` as an incorrect prediction, exactly as an implementation
/// that must always produce *some* value would at best guess.
///
/// # The two keying surfaces
///
/// Every method exists in two forms:
///
/// * **`Pc`-keyed** (`predict`/`update`/`step`/`observe`) — the
///   compatibility surface. Each call locates the instruction's state by
///   hashing the PC.
/// * **`PcId`-keyed** (`predict_id`/`update_id`/`step_id`/`observe_id`) —
///   the dense path the replay engine drives. The caller supplies the
///   instruction's dense [`PcId`] (from the trace's
///   [`PcInterner`](dvp_trace::PcInterner)), and implementations that store
///   their state in an id-indexed slot vector reach it with one bounds
///   check instead of one-or-two hash probes. The id-keyed defaults fall
///   back to the `Pc`-keyed methods, so external implementations only need
///   the classic five.
///
/// The two surfaces address the *same* state: `predict(pc)` after an
/// id-driven replay sees everything `observe_id` learned. The only caller
/// obligation on the dense path is id consistency — all ids passed to one
/// predictor instance must come from a single interner (the engine
/// guarantees this by building a fresh predictor per replayed trace
/// shard).
///
/// # Examples
///
/// ```
/// use dvp_core::{LastValuePredictor, Predictor};
/// use dvp_trace::Pc;
///
/// let mut p = LastValuePredictor::new();
/// let pc = Pc(0x400100);
/// assert_eq!(p.predict(pc), None); // nothing seen yet
/// p.update(pc, 7);
/// assert_eq!(p.predict(pc), Some(7));
/// ```
///
/// Predictors are `Send + Sync` so traces can be processed from worker
/// threads and results cached in statics; every table type in this crate
/// (dense slot vectors of plain values) satisfies this automatically.
pub trait Predictor: Send + Sync {
    /// Returns the predicted next value for the instruction at `pc`, or
    /// `None` when no prediction can be made yet.
    fn predict(&self, pc: Pc) -> Option<Value>;

    /// Informs the predictor of the actual value produced by the instruction
    /// at `pc`. Tables are updated immediately (the paper's idealization).
    fn update(&mut self, pc: Pc, actual: Value);

    /// A short human-readable name (used in experiment reports),
    /// e.g. `"l"`, `"s2"`, `"fcm3"`. Names are fixed at construction;
    /// calling this allocates nothing.
    fn name(&self) -> &str;

    /// Fused predict-then-update: returns the prediction that was in force
    /// *before* `actual` was learned.
    ///
    /// This is the inner loop of every experiment in the paper. The
    /// default is the **slow path** — a full `predict` followed by a full
    /// `update`, walking the table twice; in-crate predictors override it
    /// (and [`step_id`](Predictor::step_id)) to locate the instruction's
    /// slot once and do both halves on it.
    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        let prediction = self.predict(pc);
        self.update(pc, actual);
        prediction
    }

    /// Predicts, then updates with `actual`; returns whether the prediction
    /// was made and correct. Equivalent to
    /// `self.step(pc, actual) == Some(actual)`.
    fn observe(&mut self, pc: Pc, actual: Value) -> bool {
        self.step(pc, actual) == Some(actual)
    }

    /// Number of static instructions (distinct PCs) currently tracked.
    fn static_entries(&self) -> usize;

    /// Pre-sizes dense state for `n` interned ids (a no-op for predictors
    /// without dense state). The replay engine calls this with the trace
    /// interner's length before an id-driven replay.
    fn reserve_ids(&mut self, n: usize) {
        let _ = n;
    }

    /// [`predict`](Predictor::predict) on the dense surface: `id` is
    /// `pc`'s dense id under the caller's interner.
    fn predict_id(&self, id: PcId, pc: Pc) -> Option<Value> {
        let _ = id;
        self.predict(pc)
    }

    /// [`update`](Predictor::update) on the dense surface.
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let _ = id;
        self.update(pc, actual);
    }

    /// [`step`](Predictor::step) on the dense surface: one slot access per
    /// record on dense implementations.
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        let _ = id;
        self.step(pc, actual)
    }

    /// [`observe`](Predictor::observe) on the dense surface. Equivalent to
    /// `self.step_id(id, pc, actual) == Some(actual)`.
    fn observe_id(&mut self, id: PcId, pc: Pc, actual: Value) -> bool {
        self.step_id(id, pc, actual) == Some(actual)
    }

    /// Batched [`observe_id`](Predictor::observe_id): replays a run of
    /// records in order, writing each record's outcome into `correct`.
    ///
    /// Semantically this **is** the per-record loop — the default does
    /// exactly `correct[i] = self.observe_id(ids[i], pcs[i], values[i])`
    /// for each `i` in order, and implementations must preserve that
    /// equivalence bit for bit (the engine's determinism guarantee rests
    /// on batch boundaries being invisible). The point of the method is
    /// dispatch amortization: a replay loop driving a `Box<dyn Predictor>`
    /// pays one virtual call per *chunk* instead of one per record, and
    /// the per-record calls inside the default body dispatch statically on
    /// the concrete type.
    ///
    /// All three slices and `correct` must have equal lengths.
    ///
    /// # Panics
    ///
    /// May panic (via slice indexing) if the slice lengths differ.
    fn observe_batch(&mut self, ids: &[PcId], pcs: &[Pc], values: &[Value], correct: &mut [bool]) {
        assert!(
            ids.len() == pcs.len() && pcs.len() == values.len() && values.len() == correct.len(),
            "observe_batch slice lengths differ"
        );
        for i in 0..ids.len() {
            correct[i] = self.observe_id(ids[i], pcs[i], values[i]);
        }
    }
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn predict(&self, pc: Pc) -> Option<Value> {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        (**self).update(pc, actual)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        (**self).step(pc, actual)
    }

    fn observe(&mut self, pc: Pc, actual: Value) -> bool {
        (**self).observe(pc, actual)
    }

    fn static_entries(&self) -> usize {
        (**self).static_entries()
    }

    fn reserve_ids(&mut self, n: usize) {
        (**self).reserve_ids(n)
    }

    fn predict_id(&self, id: PcId, pc: Pc) -> Option<Value> {
        (**self).predict_id(id, pc)
    }

    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        (**self).update_id(id, pc, actual)
    }

    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        (**self).step_id(id, pc, actual)
    }

    fn observe_id(&mut self, id: PcId, pc: Pc, actual: Value) -> bool {
        (**self).observe_id(id, pc, actual)
    }

    fn observe_batch(&mut self, ids: &[PcId], pcs: &[Pc], values: &[Value], correct: &mut [bool]) {
        (**self).observe_batch(ids, pcs, values, correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LastValuePredictor;

    #[test]
    fn observe_is_predict_then_update() {
        let mut p = LastValuePredictor::new();
        let pc = Pc(8);
        assert!(!p.observe(pc, 3)); // no prior history: incorrect
        assert!(p.observe(pc, 3)); // last value repeats: correct
        assert!(!p.observe(pc, 4)); // changed: incorrect
        assert!(p.observe(pc, 4));
    }

    #[test]
    fn step_returns_the_pre_update_prediction() {
        let mut p = LastValuePredictor::new();
        let pc = Pc(8);
        assert_eq!(p.step(pc, 3), None);
        assert_eq!(p.step(pc, 4), Some(3));
        assert_eq!(p.step(pc, 5), Some(4));
    }

    #[test]
    fn dense_surface_defaults_to_the_pc_surface() {
        let mut dense = LastValuePredictor::new();
        let mut compat = LastValuePredictor::new();
        let pc = Pc(16);
        for (i, v) in [7u64, 7, 9, 9, 7].into_iter().enumerate() {
            assert_eq!(
                dense.observe_id(PcId(0), pc, v),
                compat.observe(pc, v),
                "record {i} diverged"
            );
        }
        assert_eq!(dense.predict(pc), compat.predict(pc));
        assert_eq!(dense.static_entries(), compat.static_entries());
    }

    #[test]
    fn observe_batch_matches_the_per_record_loop() {
        let mut batched: Box<dyn Predictor> = Box::new(LastValuePredictor::new());
        let mut looped = LastValuePredictor::new();
        let stream: Vec<(PcId, Pc, Value)> =
            [(0u32, 8u64, 3u64), (1, 16, 4), (0, 8, 3), (0, 8, 5), (1, 16, 4)]
                .into_iter()
                .map(|(id, pc, v)| (PcId(id), Pc(pc), v))
                .collect();
        let ids: Vec<PcId> = stream.iter().map(|r| r.0).collect();
        let pcs: Vec<Pc> = stream.iter().map(|r| r.1).collect();
        let values: Vec<Value> = stream.iter().map(|r| r.2).collect();
        let mut correct = vec![false; stream.len()];
        batched.observe_batch(&ids, &pcs, &values, &mut correct);
        for (i, &(id, pc, v)) in stream.iter().enumerate() {
            assert_eq!(correct[i], looped.observe_id(id, pc, v), "record {i}");
        }
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn observe_batch_rejects_mismatched_lengths() {
        let mut p = LastValuePredictor::new();
        let mut correct = [false; 2];
        p.observe_batch(&[PcId(0)], &[Pc(8)], &[3], &mut correct);
    }

    #[test]
    fn boxed_predictor_delegates() {
        let mut p: Box<dyn Predictor> = Box::new(LastValuePredictor::new());
        let pc = Pc(16);
        p.reserve_ids(4);
        p.update_id(PcId(0), pc, 9);
        assert_eq!(p.predict_id(PcId(0), pc), Some(9));
        assert_eq!(p.predict(pc), Some(9));
        assert_eq!(p.name(), "l");
        assert_eq!(p.static_entries(), 1);
        assert_eq!(p.step_id(PcId(0), pc, 9), Some(9));
    }
}
