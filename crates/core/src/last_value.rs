//! Last-value prediction (Section 2.1 of the paper).

use crate::table::PcTable;
use crate::Predictor;
use dvp_trace::{Pc, PcId, Value};

/// Replacement policy of a [`LastValuePredictor`].
///
/// The paper describes the always-update form plus two hysteresis variants
/// and notes their subtle difference: the saturating-counter form switches to
/// a new value after (possibly inconsistent) incorrect behavior, whereas the
/// consecutive-confirmation form switches only after the new value has been
/// observed several times *in succession*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LastValuePolicy {
    /// Replace the stored value on every update. This is the policy the
    /// paper evaluates (predictor "l").
    #[default]
    Always,
    /// Saturating-counter hysteresis: the counter is incremented on a correct
    /// prediction (up to `max`) and decremented on an incorrect one; the
    /// stored value is replaced only when the counter falls below
    /// `threshold`.
    SaturatingCounter {
        /// Saturation ceiling of the counter.
        max: u8,
        /// Replacement happens when the counter is below this value.
        threshold: u8,
    },
    /// Replace the stored value only after the same new value has been seen
    /// this many times in a row.
    ConsecutiveConfirm {
        /// Number of consecutive occurrences required before switching.
        required: u8,
    },
}

#[derive(Debug, Clone)]
struct LastValueEntry {
    stored: Value,
    counter: u8,
    candidate: Option<Value>,
    run: u8,
}

/// The last-value predictor: predicts that an instruction will produce the
/// same value it produced last time (the identity function — the simplest
/// *computational* predictor).
///
/// # Examples
///
/// ```
/// use dvp_core::{LastValuePredictor, LastValuePolicy, Predictor};
/// use dvp_trace::Pc;
///
/// let mut p = LastValuePredictor::new();
/// let pc = Pc(0x40);
/// for v in [5, 5, 5, 5] {
///     p.update(pc, v);
/// }
/// assert_eq!(p.predict(pc), Some(5));
///
/// // A sticky variant that needs two consecutive sightings to switch:
/// let mut sticky = LastValuePredictor::with_policy(
///     LastValuePolicy::ConsecutiveConfirm { required: 2 },
/// );
/// sticky.update(pc, 5);
/// sticky.update(pc, 9); // first sighting of 9: still predicts 5
/// assert_eq!(sticky.predict(pc), Some(5));
/// sticky.update(pc, 9); // second consecutive sighting: switches
/// assert_eq!(sticky.predict(pc), Some(9));
/// ```
#[derive(Debug, Clone)]
pub struct LastValuePredictor {
    policy: LastValuePolicy,
    name: String,
    table: PcTable<LastValueEntry>,
}

impl Default for LastValuePredictor {
    fn default() -> Self {
        LastValuePredictor::with_policy(LastValuePolicy::default())
    }
}

impl LastValuePredictor {
    /// Creates an always-update last-value predictor (the paper's "l").
    #[must_use]
    pub fn new() -> Self {
        LastValuePredictor::default()
    }

    /// Creates a last-value predictor with the given replacement `policy`.
    #[must_use]
    pub fn with_policy(policy: LastValuePolicy) -> Self {
        let name = match policy {
            LastValuePolicy::Always => "l".to_owned(),
            LastValuePolicy::SaturatingCounter { max, threshold } => {
                format!("l-sat{max}t{threshold}")
            }
            LastValuePolicy::ConsecutiveConfirm { required } => format!("l-conf{required}"),
        };
        LastValuePredictor { policy, name, table: PcTable::new() }
    }

    /// The replacement policy in use.
    #[must_use]
    pub fn policy(&self) -> LastValuePolicy {
        self.policy
    }

    fn update_entry(policy: LastValuePolicy, entry: &mut LastValueEntry, actual: Value) {
        match policy {
            LastValuePolicy::Always => entry.stored = actual,
            LastValuePolicy::SaturatingCounter { max, threshold } => {
                if actual == entry.stored {
                    entry.counter = entry.counter.saturating_add(1).min(max);
                } else {
                    entry.counter = entry.counter.saturating_sub(1);
                    if entry.counter < threshold {
                        entry.stored = actual;
                        entry.counter = threshold;
                    }
                }
            }
            LastValuePolicy::ConsecutiveConfirm { required } => {
                if actual == entry.stored {
                    entry.candidate = None;
                    entry.run = 0;
                } else {
                    if entry.candidate == Some(actual) {
                        entry.run = entry.run.saturating_add(1);
                    } else {
                        entry.candidate = Some(actual);
                        entry.run = 1;
                    }
                    if entry.run >= required.max(1) {
                        entry.stored = actual;
                        entry.candidate = None;
                        entry.run = 0;
                    }
                }
            }
        }
    }

    /// The fused slot step: reads the slot's prediction, then applies the
    /// update — one state access for the whole observation.
    fn step_slot(
        policy: LastValuePolicy,
        slot: &mut Option<LastValueEntry>,
        actual: Value,
    ) -> Option<Value> {
        match slot {
            Some(entry) => {
                let prediction = entry.stored;
                Self::update_entry(policy, entry, actual);
                Some(prediction)
            }
            None => {
                *slot =
                    Some(LastValueEntry { stored: actual, counter: 0, candidate: None, run: 0 });
                None
            }
        }
    }
}

impl Predictor for LastValuePredictor {
    fn predict(&self, pc: Pc) -> Option<Value> {
        self.table.get(pc).map(|e| e.stored)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let policy = self.policy;
        let slot = self.table.slot_mut(pc);
        match slot {
            Some(entry) => Self::update_entry(policy, entry, actual),
            None => {
                *slot = Some(LastValueEntry { stored: actual, counter: 0, candidate: None, run: 0 })
            }
        }
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.policy, self.table.slot_mut(pc), actual)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn static_entries(&self) -> usize {
        self.table.len()
    }

    fn reserve_ids(&mut self, n: usize) {
        self.table.reserve(n);
    }

    #[inline]
    fn predict_id(&self, id: PcId, _pc: Pc) -> Option<Value> {
        self.table.get_dense(id).map(|e| e.stored)
    }

    #[inline]
    fn update_id(&mut self, id: PcId, pc: Pc, actual: Value) {
        let policy = self.policy;
        let _ = Self::step_slot(policy, self.table.dense_slot_mut(id, pc), actual);
    }

    #[inline]
    fn step_id(&mut self, id: PcId, pc: Pc, actual: Value) -> Option<Value> {
        Self::step_slot(self.policy, self.table.dense_slot_mut(id, pc), actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: Pc = Pc(0x100);

    fn run(policy: LastValuePolicy, seq: &[Value]) -> Vec<Option<Value>> {
        let mut p = LastValuePredictor::with_policy(policy);
        seq.iter()
            .map(|&v| {
                let pred = p.predict(PC);
                p.update(PC, v);
                pred
            })
            .collect()
    }

    #[test]
    fn always_tracks_most_recent_value() {
        let preds = run(LastValuePolicy::Always, &[1, 2, 2, 3]);
        assert_eq!(preds, vec![None, Some(1), Some(2), Some(2)]);
    }

    #[test]
    fn perfect_on_constant_sequence_after_one_observation() {
        let preds = run(LastValuePolicy::Always, &[5; 10]);
        assert_eq!(preds[0], None);
        assert!(preds[1..].iter().all(|&p| p == Some(5)));
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut p = LastValuePredictor::new();
        p.update(Pc(0), 1);
        p.update(Pc(4), 2);
        assert_eq!(p.predict(Pc(0)), Some(1));
        assert_eq!(p.predict(Pc(4)), Some(2));
        assert_eq!(p.static_entries(), 2);
    }

    #[test]
    fn saturating_counter_resists_transient_change() {
        let policy = LastValuePolicy::SaturatingCounter { max: 3, threshold: 2 };
        // Build up confidence in 7, then see a single blip of 9.
        let preds = run(policy, &[7, 7, 7, 7, 9, 7, 7]);
        // After the blip the counter drops but stays >= threshold, so the
        // stored value remains 7 and the post-blip prediction is correct.
        assert_eq!(preds[5], Some(7));
        assert_eq!(preds[6], Some(7));
    }

    #[test]
    fn saturating_counter_eventually_switches() {
        let policy = LastValuePolicy::SaturatingCounter { max: 3, threshold: 2 };
        let mut p = LastValuePredictor::with_policy(policy);
        p.update(PC, 7);
        for _ in 0..10 {
            p.update(PC, 9);
        }
        assert_eq!(p.predict(PC), Some(9));
    }

    #[test]
    fn consecutive_confirm_requires_run_of_new_value() {
        let policy = LastValuePolicy::ConsecutiveConfirm { required: 3 };
        let mut p = LastValuePredictor::with_policy(policy);
        p.update(PC, 1);
        p.update(PC, 2);
        p.update(PC, 2);
        assert_eq!(p.predict(PC), Some(1), "two sightings are not enough");
        p.update(PC, 2);
        assert_eq!(p.predict(PC), Some(2), "third consecutive sighting switches");
    }

    #[test]
    fn consecutive_confirm_run_is_broken_by_interleaving() {
        let policy = LastValuePolicy::ConsecutiveConfirm { required: 2 };
        // 2s never occur twice in a row, so the prediction stays 1.
        let preds = run(policy, &[1, 2, 1, 2, 1, 2, 1]);
        assert!(preds[1..].iter().all(|&p| p == Some(1)), "{preds:?}");
    }

    #[test]
    fn confirm_required_zero_behaves_like_required_one() {
        let policy = LastValuePolicy::ConsecutiveConfirm { required: 0 };
        let mut p = LastValuePredictor::with_policy(policy);
        p.update(PC, 1);
        p.update(PC, 2);
        assert_eq!(p.predict(PC), Some(2));
    }

    #[test]
    fn names_distinguish_policies() {
        assert_eq!(LastValuePredictor::new().name(), "l");
        let sat = LastValuePredictor::with_policy(LastValuePolicy::SaturatingCounter {
            max: 3,
            threshold: 1,
        });
        assert_eq!(sat.name(), "l-sat3t1");
        let conf =
            LastValuePredictor::with_policy(LastValuePolicy::ConsecutiveConfirm { required: 2 });
        assert_eq!(conf.name(), "l-conf2");
    }
}
