//! Property tests for predictor invariants.

use dvp_core::{
    hash_history, Blending, CounterMode, DelayedPredictor, EntropyProfile, FcmPredictor,
    FiniteFcmPredictor, FiniteHybridPredictor, FiniteLastValuePredictor, FiniteStridePredictor,
    LastValuePredictor, LocalityProfile, Predictor, PredictorSet, StridePredictor, TableSpec,
    TwoLevelStridePredictor,
};
use dvp_trace::{InstrCategory, Pc, TraceRecord, Value};
use proptest::prelude::*;
use std::collections::HashSet;

/// Debug builds run the predictor-heavy cases ~10x slower; keep the suite
/// fast everywhere.
const CASES: u32 = if cfg!(debug_assertions) { 16 } else { 64 };

fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(any::<Value>(), 1..max_len)
}

/// Small-alphabet value streams (lots of repetition, exercises context hits).
fn arb_small_values(max_len: usize) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(0u64..8, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    // ----- stride ------------------------------------------------------

    #[test]
    fn stride_exact_on_any_affine_sequence(
        start in any::<u64>(),
        delta in any::<u64>(),
        len in 4usize..200,
    ) {
        let mut p = StridePredictor::two_delta();
        let pc = Pc(0);
        let mut misses_after_warmup = 0;
        for i in 0..len {
            let v = start.wrapping_add(delta.wrapping_mul(i as u64));
            let correct = p.observe(pc, v);
            if i >= 3 && !correct {
                misses_after_warmup += 1;
            }
        }
        prop_assert_eq!(misses_after_warmup, 0);
    }

    #[test]
    fn last_value_accuracy_equals_adjacent_repeat_fraction(values in arb_values(200)) {
        let mut p = LastValuePredictor::new();
        let pc = Pc(0);
        let correct = values.iter().filter(|&&v| p.observe(pc, v)).count();
        let repeats = values.windows(2).filter(|w| w[0] == w[1]).count();
        prop_assert_eq!(correct, repeats);
    }

    // ----- fcm ----------------------------------------------------------

    #[test]
    fn fcm_never_predicts_unseen_values(values in arb_values(150), order in 0usize..4) {
        let mut p = FcmPredictor::new(order);
        let pc = Pc(0);
        let mut seen: HashSet<Value> = HashSet::new();
        for &v in &values {
            if let Some(pred) = p.predict(pc) {
                prop_assert!(seen.contains(&pred), "predicted unseen value {pred}");
            }
            p.update(pc, v);
            seen.insert(v);
        }
    }

    #[test]
    fn fcm_perfect_steady_state_on_distinct_periodic(
        period_vals in prop::collection::hash_set(any::<Value>(), 2..10),
        reps in 3usize..8,
        order in 1usize..4,
    ) {
        let period: Vec<Value> = period_vals.into_iter().collect();
        let seq: Vec<Value> =
            period.iter().copied().cycle().take(period.len() * reps).collect();
        let mut p = FcmPredictor::new(order);
        let pc = Pc(0);
        let warmup = period.len() + order + 1;
        let mut misses_after_warmup = 0;
        for (i, &v) in seq.iter().enumerate() {
            let correct = p.observe(pc, v);
            if i >= warmup && !correct {
                misses_after_warmup += 1;
            }
        }
        prop_assert_eq!(misses_after_warmup, 0, "period {:?} order {}", period, order);
    }

    #[test]
    fn fcm_blending_modes_agree_on_prediction_domain(values in arb_small_values(100)) {
        // Single-order predicts a subset of the time lazy-exclusion does
        // (blending only *adds* fallback predictions).
        let mut lazy = FcmPredictor::with_config(2, Blending::LazyExclusion, CounterMode::Exact);
        let mut single = FcmPredictor::with_config(2, Blending::SingleOrder, CounterMode::Exact);
        let pc = Pc(0);
        for &v in &values {
            let lazy_pred = lazy.predict(pc);
            let single_pred = single.predict(pc);
            if single_pred.is_some() {
                prop_assert!(lazy_pred.is_some(), "blending lost a prediction");
            }
            lazy.update(pc, v);
            single.update(pc, v);
        }
    }

    #[test]
    fn saturating_counters_never_panic_and_stay_predictive(
        values in arb_small_values(300),
        max in 2u32..8,
    ) {
        let mut p = FcmPredictor::with_config(
            1,
            Blending::LazyExclusion,
            CounterMode::Saturating { max },
        );
        let pc = Pc(0);
        let mut seen = HashSet::new();
        for &v in &values {
            if let Some(pred) = p.predict(pc) {
                prop_assert!(seen.contains(&pred));
            }
            p.update(pc, v);
            seen.insert(v);
        }
    }

    // ----- isolation -----------------------------------------------------

    #[test]
    fn pcs_are_fully_isolated(
        a in arb_small_values(80),
        b in arb_small_values(80),
    ) {
        // Interleaving two PCs' streams must give exactly the same
        // predictions as running each stream alone (no aliasing).
        fn run_alone<P: Predictor>(mut p: P, pc: Pc, values: &[Value]) -> Vec<Option<Value>> {
            values
                .iter()
                .map(|&v| {
                    let pred = p.predict(pc);
                    p.update(pc, v);
                    pred
                })
                .collect()
        }
        fn run_interleaved<P: Predictor>(
            mut p: P,
            a: &[Value],
            b: &[Value],
        ) -> (Vec<Option<Value>>, Vec<Option<Value>>) {
            let (mut ia, mut ib) = (0, 0);
            let (mut ra, mut rb) = (Vec::new(), Vec::new());
            while ia < a.len() || ib < b.len() {
                let take_a = ia < a.len() && (ib >= b.len() || ia <= ib);
                if take_a {
                    ra.push(p.predict(Pc(0)));
                    p.update(Pc(0), a[ia]);
                    ia += 1;
                } else {
                    rb.push(p.predict(Pc(4)));
                    p.update(Pc(4), b[ib]);
                    ib += 1;
                }
            }
            (ra, rb)
        }

        let (ia, ib) = run_interleaved(FcmPredictor::new(2), &a, &b);
        prop_assert_eq!(&ia, &run_alone(FcmPredictor::new(2), Pc(0), &a));
        prop_assert_eq!(&ib, &run_alone(FcmPredictor::new(2), Pc(4), &b));

        let (ia, ib) = run_interleaved(StridePredictor::two_delta(), &a, &b);
        prop_assert_eq!(&ia, &run_alone(StridePredictor::two_delta(), Pc(0), &a));
        prop_assert_eq!(&ib, &run_alone(StridePredictor::two_delta(), Pc(4), &b));

        let (ia, ib) = run_interleaved(TwoLevelStridePredictor::new(), &a, &b);
        prop_assert_eq!(&ia, &run_alone(TwoLevelStridePredictor::new(), Pc(0), &a));
        prop_assert_eq!(&ib, &run_alone(TwoLevelStridePredictor::new(), Pc(4), &b));
    }

    // ----- predictor set ---------------------------------------------------

    #[test]
    fn predictor_set_masks_partition_and_match_components(values in arb_small_values(150)) {
        let records: Vec<TraceRecord> = values
            .iter()
            .map(|&v| TraceRecord::new(Pc(8), InstrCategory::Logic, v))
            .collect();
        let mut set = PredictorSet::paper_trio();
        for rec in &records {
            set.observe(rec);
        }
        let mask_sum: u64 = (0..8u32).map(|m| set.subset_count(None, m)).sum();
        prop_assert_eq!(mask_sum, records.len() as u64);

        // Component totals agree with standalone runs.
        let (l, _) = dvp_core::run_trace(&mut LastValuePredictor::new(), records.iter());
        let (s, _) = dvp_core::run_trace(&mut StridePredictor::two_delta(), records.iter());
        let (f, _) = dvp_core::run_trace(&mut FcmPredictor::new(3), records.iter());
        prop_assert_eq!(set.correct_total(0), l);
        prop_assert_eq!(set.correct_total(1), s);
        prop_assert_eq!(set.correct_total(2), f);
    }

    // ----- sequences ---------------------------------------------------------

    // ----- finite tables ----------------------------------------------------

    #[test]
    fn finite_tables_match_unbounded_when_collision_free(
        values in arb_values(300),
        npcs in 1u64..16,
    ) {
        // Consecutive word-aligned PCs map to consecutive slots of a large
        // table (the index fold is the identity for small inputs), so a
        // 2^12-slot tagged table is collision-free for <16 PCs: the finite
        // predictors must be bit-identical to the unbounded ones.
        let spec = TableSpec::new(12).with_tag_bits(8);
        let mut fin_l = FiniteLastValuePredictor::new(spec);
        let mut fin_s = FiniteStridePredictor::new(spec);
        let mut ub_l = LastValuePredictor::new();
        let mut ub_s = StridePredictor::two_delta();
        for (i, &v) in values.iter().enumerate() {
            let pc = Pc(0x1000 + (i as u64 % npcs) * 4);
            prop_assert_eq!(fin_l.predict(pc), ub_l.predict(pc));
            prop_assert_eq!(fin_s.predict(pc), ub_s.predict(pc));
            fin_l.update(pc, v);
            fin_s.update(pc, v);
            ub_l.update(pc, v);
            ub_s.update(pc, v);
        }
    }

    #[test]
    fn hash_history_is_always_in_range(
        history in prop::collection::vec(any::<Value>(), 0..9),
        bits in 1u32..=28,
    ) {
        prop_assert!(hash_history(&history, bits) < 1u64 << bits);
    }

    #[test]
    fn finite_fcm_never_panics_and_predicts_only_after_full_history(
        values in arb_small_values(200),
        order in 1usize..5,
    ) {
        let mut p = FiniteFcmPredictor::new(order, TableSpec::new(6), TableSpec::new(8));
        let pc = Pc(0x100);
        for (i, &v) in values.iter().enumerate() {
            let pred = p.predict(pc);
            if i < order {
                prop_assert_eq!(pred, None, "no full history after {} values", i);
            }
            p.update(pc, v);
        }
    }

    #[test]
    fn finite_hybrid_prediction_comes_from_a_component(
        values in arb_small_values(250),
        npcs in 1u64..8,
    ) {
        // The hybrid never invents values: every prediction equals what one
        // of its components would predict from the identical update stream.
        let mut hybrid = FiniteHybridPredictor::paper_geometry(8);
        let mut stride = FiniteStridePredictor::new(TableSpec::new(8));
        let mut fcm = FiniteFcmPredictor::new(2, TableSpec::new(8), TableSpec::new(12));
        for (i, &v) in values.iter().enumerate() {
            let pc = Pc(0x400 + (i as u64 % npcs) * 4);
            let h = hybrid.predict(pc);
            if let Some(pred) = h {
                let s = stride.predict(pc);
                let f = fcm.predict(pc);
                prop_assert!(
                    s == Some(pred) || f == Some(pred),
                    "hybrid predicted {pred} but components said {s:?}/{f:?}"
                );
            }
            hybrid.update(pc, v);
            stride.update(pc, v);
            fcm.update(pc, v);
        }
    }

    // ----- delayed updates ----------------------------------------------------

    #[test]
    fn delay_zero_is_bit_identical_to_immediate(values in arb_small_values(200)) {
        let mut delayed = DelayedPredictor::new(FcmPredictor::new(2), 0);
        let mut direct = FcmPredictor::new(2);
        for (i, &v) in values.iter().enumerate() {
            let pc = Pc((i as u64 % 5) * 4);
            prop_assert_eq!(delayed.predict(pc), direct.predict(pc));
            delayed.update(pc, v);
            direct.update(pc, v);
        }
    }

    #[test]
    fn drained_delayed_predictor_converges_to_immediate(
        values in arb_small_values(200),
        delay in 0usize..32,
    ) {
        // After draining, the inner predictor has seen exactly the same
        // update sequence as an immediate-update run.
        let mut delayed = DelayedPredictor::new(StridePredictor::two_delta(), delay);
        let mut direct = StridePredictor::two_delta();
        for (i, &v) in values.iter().enumerate() {
            let pc = Pc((i as u64 % 3) * 4);
            delayed.update(pc, v);
            direct.update(pc, v);
        }
        let inner = delayed.into_inner();
        for pc in (0..3u64).map(|i| Pc(i * 4)) {
            prop_assert_eq!(inner.predict(pc), direct.predict(pc));
        }
    }

    #[test]
    fn delayed_in_flight_never_exceeds_delay(
        values in arb_small_values(100),
        delay in 0usize..16,
    ) {
        let mut p = DelayedPredictor::new(LastValuePredictor::new(), delay);
        for &v in &values {
            p.update(Pc(0), v);
            prop_assert!(p.in_flight() <= delay);
        }
    }

    // ----- locality & entropy ---------------------------------------------------

    #[test]
    fn locality_is_monotone_and_depth1_equals_last_value(values in arb_small_values(300)) {
        let mut profile = LocalityProfile::new(8);
        let mut lvp = LastValuePredictor::new();
        let mut lvp_correct = 0u64;
        for &v in &values {
            let rec = TraceRecord::new(Pc(0), InstrCategory::AddSub, v);
            profile.record(&rec);
            lvp_correct += u64::from(lvp.observe(Pc(0), v));
        }
        let series = profile.series(None);
        for w in series.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        // The most recent distinct value *is* the last value, so depth-1
        // locality and always-update last-value accuracy coincide exactly.
        let lvp_accuracy = lvp_correct as f64 / values.len() as f64;
        prop_assert!((series[0] - lvp_accuracy).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_bounded_by_log2_of_distinct_values(values in arb_small_values(300)) {
        let mut profile = EntropyProfile::new();
        for &v in &values {
            profile.record(&TraceRecord::new(Pc(0), InstrCategory::AddSub, v));
        }
        let h = profile.entropy_of(Pc(0)).expect("recorded");
        let distinct = values.iter().collect::<HashSet<_>>().len() as f64;
        prop_assert!(h >= -1e-12, "entropy cannot be negative: {h}");
        prop_assert!(h <= distinct.log2() + 1e-9, "H {h} > log2({distinct})");
        if distinct == 1.0 {
            prop_assert!(h.abs() < 1e-12);
        }
    }

    // ----- sequences ---------------------------------------------------------

    #[test]
    fn classify_is_stable_under_repetition(
        period in prop::collection::vec(any::<Value>(), 3..10),
        reps in 2usize..6,
    ) {
        use dvp_core::sequences::{classify, SequenceClass};
        let seq: Vec<Value> = period.iter().copied().cycle().take(period.len() * reps).collect();
        let class = classify(&seq);
        prop_assert!(
            matches!(
                class,
                SequenceClass::Constant
                    | SequenceClass::Stride
                    | SequenceClass::RepeatedStride
                    | SequenceClass::RepeatedNonStride
            ),
            "repetition of a finite period can never be NonStride: {class:?}"
        );
    }
}
