//! Focused coverage for the FCM predictor's blending and lazy-exclusion
//! paths: the facade doc-comment's `1, 5, 9` repeating sequence across an
//! order sweep, observable divergence between the blending policies, and an
//! aliasing-free per-PC isolation property.

use dvp_core::{Blending, CounterMode, FcmPredictor, Predictor};
use dvp_trace::{Pc, Value};
use proptest::prelude::*;

const PC: Pc = Pc(0x400100);

const BLENDINGS: [Blending; 3] = [Blending::LazyExclusion, Blending::Full, Blending::SingleOrder];

/// Feeds `seq` at one PC, returning the prediction made before each update.
fn run(p: &mut FcmPredictor, pc: Pc, seq: &[Value]) -> Vec<Option<Value>> {
    seq.iter()
        .map(|&v| {
            let pred = p.predict(pc);
            p.update(pc, v);
            pred
        })
        .collect()
}

#[test]
fn doc_comment_sequence_1_5_9_predicts_the_next_element() {
    // Mirror of the facade doc example (`dvp` crate root): after observing
    // 1 5 9 1 5 9 1 5, the order-2 context (1, 5) was followed by 9.
    let mut fcm = FcmPredictor::new(2);
    for &v in &[1u64, 5, 9, 1, 5, 9, 1, 5] {
        fcm.update(PC, v);
    }
    assert_eq!(fcm.predict(PC), Some(9));
}

#[test]
fn order_sweep_1_to_4_is_perfect_on_1_5_9_after_warmup() {
    for order in 1usize..=4 {
        let seq: Vec<Value> = [1u64, 5, 9].iter().copied().cycle().take(30).collect();
        let mut p = FcmPredictor::new(order);
        let preds = run(&mut p, PC, &seq);
        // One full period to populate the contexts, plus `order` values to
        // refill the history window, plus the first predictable slot.
        let warmup = 3 + order + 1;
        for (i, (&pred, &actual)) in preds.iter().zip(&seq).enumerate().skip(warmup) {
            assert_eq!(pred, Some(actual), "order {order}, index {i}");
        }
    }
}

#[test]
fn order_sweep_blending_agrees_with_single_order_at_steady_state() {
    // On a distinct-valued period every order >= 1 resolves the next value,
    // so the blended (lazy-exclusion) prediction must match the pure
    // single-order prediction once both are warm.
    for order in 1usize..=4 {
        let seq: Vec<Value> = [1u64, 5, 9].iter().copied().cycle().take(30).collect();
        let mut lazy = FcmPredictor::new(order);
        let mut single =
            FcmPredictor::with_config(order, Blending::SingleOrder, CounterMode::Exact);
        let lazy_preds = run(&mut lazy, PC, &seq);
        let single_preds = run(&mut single, PC, &seq);
        let warmup = 3 + order + 1;
        assert_eq!(lazy_preds[warmup..], single_preds[warmup..], "order {order}");
    }
}

#[test]
fn lazy_exclusion_freezes_low_orders_once_high_orders_match() {
    // Lazy exclusion updates only the matched order and higher; full
    // blending updates every order. After a long 1,2 alternation the
    // order-0 model has frozen counts {1: 2, 2: 1} under lazy exclusion but
    // balanced counts under full blending — observable as different
    // fallback predictions once a novel value empties the order-1 context.
    let mut lazy = FcmPredictor::with_config(1, Blending::LazyExclusion, CounterMode::Exact);
    let mut full = FcmPredictor::with_config(1, Blending::Full, CounterMode::Exact);
    for _ in 0..8 {
        for &v in &[1u64, 2] {
            lazy.update(PC, v);
            full.update(PC, v);
        }
    }
    lazy.update(PC, 7);
    full.update(PC, 7);
    // History is now [7]; the order-1 context (7,) is unseen, so prediction
    // falls back to the order-0 frequency table.
    assert_eq!(lazy.predict(PC), Some(1), "lazy order-0 froze while order-1 matched");
    assert_eq!(full.predict(PC), Some(2), "full order-0 kept counting; tie breaks to recent");
}

#[test]
fn lazy_exclusion_seeds_every_order_on_a_complete_miss() {
    // The very first value matches no context at any order, so lazy
    // exclusion seeds all of them: an order-0 prediction exists right away.
    let mut p = FcmPredictor::new(3);
    p.update(PC, 42);
    assert_eq!(p.predict(PC), Some(42));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Blending only ever *adds* fallback predictions: wherever the pure
    // order-k model predicts, the blended predictor must predict too —
    // across the whole order sweep, not just the seed suite's order 2.
    #[test]
    fn blending_dominates_single_order_domain_for_orders_1_to_4(
        values in prop::collection::vec(0u64..8, 1..120),
        order in 1usize..5,
    ) {
        let mut lazy = FcmPredictor::new(order);
        let mut single =
            FcmPredictor::with_config(order, Blending::SingleOrder, CounterMode::Exact);
        for &v in &values {
            let lazy_pred = lazy.predict(PC);
            let single_pred = single.predict(PC);
            if single_pred.is_some() {
                prop_assert!(
                    lazy_pred.is_some(),
                    "order {} lost a prediction under blending",
                    order
                );
            }
            lazy.update(PC, v);
            single.update(PC, v);
        }
    }

    // Per-PC isolation must hold in every blending/counter configuration:
    // interleaving two PCs' streams gives bit-identical predictions to
    // running each stream alone (the paper's "no table aliasing" idealization).
    #[test]
    fn fcm_pcs_are_aliasing_free_in_every_configuration(
        a in prop::collection::vec(0u64..6, 1..60),
        b in prop::collection::vec(0u64..6, 1..60),
        order in 1usize..5,
    ) {
        for blending in BLENDINGS {
            for counters in [CounterMode::Exact, CounterMode::Saturating { max: 4 }] {
                let make = || FcmPredictor::with_config(order, blending, counters);

                let alone_a = run(&mut make(), Pc(0), &a);
                let alone_b = run(&mut make(), Pc(4), &b);

                let mut shared = make();
                let (mut ia, mut ib) = (0usize, 0usize);
                let (mut inter_a, mut inter_b) = (Vec::new(), Vec::new());
                while ia < a.len() || ib < b.len() {
                    if ia < a.len() && (ib >= b.len() || ia <= ib) {
                        inter_a.push(shared.predict(Pc(0)));
                        shared.update(Pc(0), a[ia]);
                        ia += 1;
                    } else {
                        inter_b.push(shared.predict(Pc(4)));
                        shared.update(Pc(4), b[ib]);
                        ib += 1;
                    }
                }
                prop_assert_eq!(&inter_a, &alone_a, "{:?}/{:?} stream a", blending, counters);
                prop_assert_eq!(&inter_b, &alone_b, "{:?}/{:?} stream b", blending, counters);
            }
        }
    }
}
