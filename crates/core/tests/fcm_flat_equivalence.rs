//! The flat arena-backed FCM must be bit-for-bit the paper's model.
//!
//! `FcmPredictor` stores every (instruction, order, context) entry in one
//! open-addressed table with rolling context hashes and inline follower
//! counts. These properties pin its observable behaviour — predictions,
//! entry counts, blending and lazy-exclusion divergence, saturating
//! halving — to `OracleFcm`, a direct nested-`HashMap` transliteration of
//! Section 2.2 with none of the flat layout. A second property pins
//! `Predictor::observe_batch` to the per-record loop for every predictor
//! family the experiments replay.

use std::collections::HashMap;

use dvp_core::{Blending, CounterMode, FcmPredictor, Predictor, PredictorConfig};
use dvp_trace::{Pc, PcId, PcInterner, Value};
use proptest::prelude::*;

const CASES: u32 = if cfg!(debug_assertions) { 24 } else { 96 };

/// One context's frequency table in the oracle: `(value, count, stamp)`
/// rows plus the per-context recency clock. Stamps are unique within a
/// context, so the argmax by `(count, stamp)` is deterministic — the same
/// tie-break the paper's "most frequent, most recent wins" rule implies.
#[derive(Debug, Default)]
struct OracleCtx {
    followers: Vec<(Value, u64, u64)>,
    tick: u64,
}

impl OracleCtx {
    fn top(&self) -> Option<Value> {
        self.followers.iter().max_by_key(|&&(_, count, stamp)| (count, stamp)).map(|&(v, _, _)| v)
    }

    fn bump(&mut self, value: Value, mode: CounterMode) {
        self.tick += 1;
        let count = match self.followers.iter_mut().find(|(v, _, _)| *v == value) {
            Some(row) => {
                row.1 += 1;
                row.2 = self.tick;
                row.1
            }
            None => {
                self.followers.push((value, 1, self.tick));
                1
            }
        };
        if let CounterMode::Saturating { max } = mode {
            if count >= u64::from(max) {
                for row in &mut self.followers {
                    row.1 /= 2;
                }
                self.followers.retain(|&(_, count, _)| count > 0);
            }
        }
    }
}

/// Per-instruction oracle state: the recent-value window and one
/// context-keyed map per order `0..=k`.
#[derive(Debug)]
struct OracleSlot {
    hist: Vec<Value>,
    tables: Vec<HashMap<Box<[Value]>, OracleCtx>>,
}

/// The paper's order-k FCM with blending, written the obvious way:
/// nested maps, boxed context keys, no sharing between orders.
struct OracleFcm {
    order: usize,
    blending: Blending,
    counter_mode: CounterMode,
    slots: HashMap<Pc, OracleSlot>,
}

impl OracleFcm {
    fn new(order: usize, blending: Blending, counter_mode: CounterMode) -> Self {
        OracleFcm { order, blending, counter_mode, slots: HashMap::new() }
    }

    /// `(prediction, longest matched order)` for the slot's current
    /// window. An entry that exists but has no followers (possible after
    /// saturating halving) fails to match and the descent continues —
    /// exactly the `or_default()` reuse semantics of the nested model.
    fn descend(&self, slot: &OracleSlot) -> (Option<Value>, Option<usize>) {
        let ctx_at = |ord: usize| &slot.hist[slot.hist.len() - ord..];
        match self.blending {
            Blending::SingleOrder => {
                if slot.hist.len() >= self.order {
                    if let Some(top) =
                        slot.tables[self.order].get(ctx_at(self.order)).and_then(OracleCtx::top)
                    {
                        return (Some(top), None);
                    }
                }
                (None, None)
            }
            Blending::LazyExclusion | Blending::Full => {
                for ord in (0..=self.order.min(slot.hist.len())).rev() {
                    if let Some(top) = slot.tables[ord].get(ctx_at(ord)).and_then(OracleCtx::top) {
                        return (Some(top), Some(ord));
                    }
                }
                (None, None)
            }
        }
    }

    fn predict(&self, pc: Pc) -> Option<Value> {
        self.slots.get(&pc).and_then(|slot| self.descend(slot).0)
    }

    fn update(&mut self, pc: Pc, actual: Value) {
        let order = self.order;
        self.slots.entry(pc).or_insert_with(|| OracleSlot {
            hist: Vec::new(),
            tables: (0..=order).map(|_| HashMap::new()).collect(),
        });
        let matched = match self.blending {
            Blending::SingleOrder => None,
            Blending::LazyExclusion | Blending::Full => self.descend(&self.slots[&pc]).1,
        };
        let lowest = match self.blending {
            Blending::SingleOrder => order,
            Blending::Full => 0,
            Blending::LazyExclusion => matched.unwrap_or(0),
        };
        let slot = self.slots.get_mut(&pc).expect("just inserted");
        for ord in lowest..=order {
            if ord > slot.hist.len() {
                continue;
            }
            let ctx: Box<[Value]> = slot.hist[slot.hist.len() - ord..].into();
            slot.tables[ord].entry(ctx).or_default().bump(actual, self.counter_mode);
        }
        if order > 0 {
            slot.hist.push(actual);
            if slot.hist.len() > order {
                slot.hist.remove(0);
            }
        }
    }

    fn step(&mut self, pc: Pc, actual: Value) -> Option<Value> {
        let prediction = self.predict(pc);
        self.update(pc, actual);
        prediction
    }

    fn context_entries(&self) -> usize {
        self.slots.values().map(|s| s.tables.iter().map(HashMap::len).sum::<usize>()).sum()
    }
}

/// A short stream over a handful of PCs and a small value alphabet —
/// small domains force context reuse, ties, and (with saturating
/// counters) emptied entries.
fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<(Pc, Value)>> {
    prop::collection::vec((0u64..6, 0u64..5), 1..max_len)
        .prop_map(|raw| raw.into_iter().map(|(pc, v)| (Pc(0x400 + 4 * pc), v)).collect())
}

fn arb_config() -> impl Strategy<Value = (usize, Blending, CounterMode)> {
    (
        0usize..=5,
        prop_oneof![
            Just(Blending::LazyExclusion),
            Just(Blending::Full),
            Just(Blending::SingleOrder)
        ],
        prop_oneof![
            Just(CounterMode::Exact),
            (1u32..=4).prop_map(|max| CounterMode::Saturating { max }),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// The flat table agrees with the nested-map oracle record for
    /// record: same pre-update prediction, same entry count, same final
    /// predictions — across orders (0..=5 spans the inline-key limit),
    /// all three blendings, and both counter modes (saturating maxima
    /// small enough to empty contexts).
    #[test]
    fn flat_fcm_equals_nested_oracle(
        config in arb_config(),
        stream in arb_stream(300),
    ) {
        let (order, blending, counter_mode) = config;
        let mut flat = FcmPredictor::with_config(order, blending, counter_mode);
        let mut oracle = OracleFcm::new(order, blending, counter_mode);
        for (i, &(pc, value)) in stream.iter().enumerate() {
            prop_assert_eq!(
                flat.step(pc, value),
                oracle.step(pc, value),
                "prediction diverged at record {} of {:?}",
                i,
                &stream
            );
        }
        prop_assert_eq!(flat.context_entries(), oracle.context_entries());
        for &(pc, _) in &stream {
            prop_assert_eq!(flat.predict(pc), oracle.predict(pc));
        }
    }

    /// The dense id-keyed surface is the same model: driving the flat
    /// predictor through `observe_id` (interned ids, as the replay
    /// engine does) tracks the oracle exactly.
    #[test]
    fn flat_fcm_dense_surface_equals_nested_oracle(
        config in arb_config(),
        stream in arb_stream(200),
    ) {
        let (order, blending, counter_mode) = config;
        let mut flat = FcmPredictor::with_config(order, blending, counter_mode);
        let mut oracle = OracleFcm::new(order, blending, counter_mode);
        let mut interner = PcInterner::new();
        for (i, &(pc, value)) in stream.iter().enumerate() {
            let id = interner.intern(pc);
            let want = oracle.step(pc, value) == Some(value);
            prop_assert_eq!(
                flat.observe_id(id, pc, value),
                want,
                "outcome diverged at record {}",
                i
            );
        }
        prop_assert_eq!(flat.context_entries(), oracle.context_entries());
    }

    /// `observe_batch` is the per-record loop, bit for bit, for every
    /// predictor family in the paper bank and at every chunking.
    #[test]
    fn observe_batch_matches_per_record_observe_for_every_family(
        stream in arb_stream(250),
        chunk in 1usize..=64,
    ) {
        let mut interner = PcInterner::new();
        let ids: Vec<PcId> = stream.iter().map(|&(pc, _)| interner.intern(pc)).collect();
        let pcs: Vec<Pc> = stream.iter().map(|&(pc, _)| pc).collect();
        let values: Vec<Value> = stream.iter().map(|&(_, v)| v).collect();
        for config in PredictorConfig::paper_bank() {
            let mut reference = config.build();
            let want: Vec<bool> = stream
                .iter()
                .zip(&ids)
                .map(|(&(pc, v), &id)| reference.observe_id(id, pc, v))
                .collect();
            let mut batched = config.build();
            let mut got = vec![false; stream.len()];
            let mut at = 0;
            while at < stream.len() {
                let hi = (at + chunk).min(stream.len());
                batched.observe_batch(
                    &ids[at..hi],
                    &pcs[at..hi],
                    &values[at..hi],
                    &mut got[at..hi],
                );
                at = hi;
            }
            prop_assert_eq!(&got, &want, "{} diverged at chunk {}", config.name(), chunk);
            for &pc in &pcs {
                prop_assert_eq!(batched.predict(pc), reference.predict(pc));
            }
        }
    }
}

/// Lazy exclusion and full blending genuinely diverge — and the flat
/// implementation diverges in exactly the way the oracle does.
///
/// Order 1, stream `1 2 1 2 7`, then predict with history `[7]` (context
/// never seen, so the order-0 model decides):
///
/// * **lazy** stopped feeding order 0 once order 1 matched, leaving
///   `{1: 2, 2: 1}` → predicts 1;
/// * **full** kept counting, leaving `{1: 2, 2: 2, 7: 1}` with 2 stamped
///   later → predicts 2.
#[test]
fn lazy_exclusion_divergence_is_reproduced_exactly() {
    let stream = [1u64, 2, 1, 2, 7];
    let pc = Pc(0x400);
    let mut outcomes = Vec::new();
    for blending in [Blending::LazyExclusion, Blending::Full] {
        let mut flat = FcmPredictor::with_config(1, blending, CounterMode::Exact);
        let mut oracle = OracleFcm::new(1, blending, CounterMode::Exact);
        for &v in &stream {
            assert_eq!(flat.step(pc, v), oracle.step(pc, v), "{blending:?}");
        }
        assert_eq!(flat.predict(pc), oracle.predict(pc), "{blending:?}");
        outcomes.push(flat.predict(pc));
    }
    assert_eq!(outcomes, vec![Some(1), Some(2)], "the two blendings must diverge");
}

/// Saturating halving with `max = 1` empties contexts on every bump; the
/// emptied entries must keep existing (and keep failing to match) in
/// both implementations.
#[test]
fn saturating_emptied_contexts_agree_with_the_oracle() {
    let pc = Pc(0x400);
    let mode = CounterMode::Saturating { max: 1 };
    let mut flat = FcmPredictor::with_config(2, Blending::LazyExclusion, mode);
    let mut oracle = OracleFcm::new(2, Blending::LazyExclusion, mode);
    for &v in &[5u64, 5, 3, 5, 3, 3, 5] {
        assert_eq!(flat.step(pc, v), oracle.step(pc, v));
    }
    assert_eq!(flat.predict(pc), oracle.predict(pc));
    assert_eq!(flat.context_entries(), oracle.context_entries());
}
