//! Property suite pinning the dense-slot replay path to the legacy
//! per-record-hash semantics, per predictor family.
//!
//! Every predictor exposes two keying surfaces over the same state: the
//! `Pc`-keyed compatibility surface (`observe`, one hash probe per record —
//! behaviourally identical to the old `HashMap<Pc, _>` tables) and the
//! dense `PcId`-keyed surface the replay engine drives (`observe_id`, one
//! slot index per record). These properties feed identical random streams
//! through both surfaces on independent instances and require identical
//! outcome sequences, final predictions, and static-entry counts — and,
//! for the last-value and stride families, additionally check both against
//! hand-rolled `HashMap` oracles reimplementing the paper's definitions.

use dvp_core::{
    Blending, CounterMode, DelayedPredictor, FcmPredictor, FiniteFcmPredictor,
    FiniteHybridPredictor, FiniteLastValuePredictor, FiniteStridePredictor, HybridPredictor,
    LastValuePredictor, Predictor, ShiftPredictor, StridePredictor, TableSpec,
    TwoLevelStridePredictor,
};
use dvp_trace::{Pc, PcId, PcInterner, Value};
use proptest::prelude::*;
use std::collections::HashMap;

const CASES: u32 = if cfg!(debug_assertions) { 16 } else { 64 };

/// A random (pc, value) stream over a small PC set (so per-PC state gets
/// real reuse) with semi-repetitive values (so predictions actually hit).
fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<(Pc, Value)>> {
    prop::collection::vec((0u64..12, 0u64..6), 1..max_len)
        .prop_map(|raw| raw.into_iter().map(|(pc, v)| (Pc(0x400 + 4 * pc), v)).collect())
}

/// Drives `dense` through `observe_id` (interning like a trace would) and
/// `compat` through `observe`; asserts identical outcome sequences and
/// consistent end states.
fn assert_surfaces_agree<P: Predictor>(mut dense: P, mut compat: P, stream: &[(Pc, Value)]) {
    let mut interner = PcInterner::new();
    for (step, &(pc, value)) in stream.iter().enumerate() {
        let id = interner.intern(pc);
        let d = dense.observe_id(id, pc, value);
        let c = compat.observe(pc, value);
        assert_eq!(d, c, "outcome diverged at step {step} ({pc})");
    }
    assert_eq!(dense.static_entries(), compat.static_entries());
    for (id, pc) in interner.iter() {
        assert_eq!(dense.predict(pc), compat.predict(pc), "final prediction at {pc}");
        assert_eq!(dense.predict_id(id, pc), compat.predict(pc), "dense read at {pc}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn last_value_dense_matches_compat_and_hashmap_oracle(stream in arb_stream(300)) {
        assert_surfaces_agree(LastValuePredictor::new(), LastValuePredictor::new(), &stream);
        // Oracle: the paper's always-update last-value table as a bare map.
        let mut oracle: HashMap<Pc, Value> = HashMap::new();
        let mut interner = PcInterner::new();
        let mut dense = LastValuePredictor::new();
        for &(pc, value) in &stream {
            let id = interner.intern(pc);
            let expected = oracle.insert(pc, value) == Some(value);
            prop_assert_eq!(dense.observe_id(id, pc, value), expected, "{}", pc);
        }
    }

    #[test]
    fn stride_dense_matches_compat_and_hashmap_oracle(stream in arb_stream(300)) {
        assert_surfaces_agree(StridePredictor::two_delta(), StridePredictor::two_delta(), &stream);
        // Oracle: the two-delta rule (Eickemeyer & Vassiliadis) as a bare
        // map of (last, s1, s2).
        let mut oracle: HashMap<Pc, (Value, Value, Value)> = HashMap::new();
        let mut interner = PcInterner::new();
        let mut dense = StridePredictor::two_delta();
        for &(pc, value) in &stream {
            let id = interner.intern(pc);
            let expected = match oracle.get_mut(&pc) {
                Some((last, s1, s2)) => {
                    let correct = last.wrapping_add(*s2) == value;
                    let delta = value.wrapping_sub(*last);
                    if delta == *s1 {
                        *s2 = delta;
                    }
                    *s1 = delta;
                    *last = value;
                    correct
                }
                None => {
                    oracle.insert(pc, (value, 0, 0));
                    false
                }
            };
            prop_assert_eq!(dense.observe_id(id, pc, value), expected, "{}", pc);
        }
    }

    #[test]
    fn fcm_dense_matches_compat(order in 0usize..4, stream in arb_stream(250)) {
        assert_surfaces_agree(FcmPredictor::new(order), FcmPredictor::new(order), &stream);
    }

    #[test]
    fn fcm_variants_dense_match_compat(stream in arb_stream(200)) {
        for blending in [Blending::LazyExclusion, Blending::Full, Blending::SingleOrder] {
            for mode in [CounterMode::Exact, CounterMode::Saturating { max: 4 }] {
                assert_surfaces_agree(
                    FcmPredictor::with_config(2, blending, mode),
                    FcmPredictor::with_config(2, blending, mode),
                    &stream,
                );
            }
        }
    }

    #[test]
    fn hybrid_dense_matches_compat(stream in arb_stream(250)) {
        assert_surfaces_agree(
            HybridPredictor::stride_fcm(2),
            HybridPredictor::stride_fcm(2),
            &stream,
        );
    }

    #[test]
    fn extension_predictors_dense_match_compat(stream in arb_stream(250)) {
        assert_surfaces_agree(ShiftPredictor::new(), ShiftPredictor::new(), &stream);
        assert_surfaces_agree(
            TwoLevelStridePredictor::new(),
            TwoLevelStridePredictor::new(),
            &stream,
        );
    }

    #[test]
    fn finite_predictors_dense_match_compat(stream in arb_stream(250)) {
        // Finite tables ignore the id by design (PC hashing is the model);
        // the dense surface must still agree record for record.
        let spec = TableSpec::new(4).with_tag_bits(6);
        assert_surfaces_agree(
            FiniteLastValuePredictor::new(spec),
            FiniteLastValuePredictor::new(spec),
            &stream,
        );
        assert_surfaces_agree(
            FiniteStridePredictor::new(spec),
            FiniteStridePredictor::new(spec),
            &stream,
        );
        assert_surfaces_agree(
            FiniteFcmPredictor::new(2, TableSpec::new(4), TableSpec::new(8)),
            FiniteFcmPredictor::new(2, TableSpec::new(4), TableSpec::new(8)),
            &stream,
        );
        assert_surfaces_agree(
            FiniteHybridPredictor::paper_geometry(5),
            FiniteHybridPredictor::paper_geometry(5),
            &stream,
        );
    }

    #[test]
    fn delayed_dense_matches_compat(delay in 0usize..6, stream in arb_stream(250)) {
        assert_surfaces_agree(
            DelayedPredictor::new(StridePredictor::two_delta(), delay),
            DelayedPredictor::new(StridePredictor::two_delta(), delay),
            &stream,
        );
    }

    #[test]
    fn step_equals_predict_then_update(stream in arb_stream(200)) {
        // The fused step must equal the two-call protocol on every family.
        let mut fused = FcmPredictor::new(2);
        let mut split = FcmPredictor::new(2);
        for &(pc, value) in &stream {
            let expected = split.predict(pc);
            split.update(pc, value);
            prop_assert_eq!(fused.step(pc, value), expected);
        }
    }

    #[test]
    fn interner_round_trip_and_collision_freedom(pcs in prop::collection::vec(any::<u64>(), 1..400)) {
        let mut interner = PcInterner::new();
        let ids: Vec<PcId> = pcs.iter().map(|&pc| interner.intern(Pc(pc))).collect();
        // Stable: re-interning yields the same id.
        for (&pc, &id) in pcs.iter().zip(&ids) {
            prop_assert_eq!(interner.intern(Pc(pc)), id);
            prop_assert_eq!(interner.get(Pc(pc)), Some(id));
            prop_assert_eq!(interner.pc(id), Pc(pc));
        }
        // Dense and collision-free: ids are exactly 0..len, one per
        // distinct PC.
        let distinct: std::collections::HashSet<u64> = pcs.iter().copied().collect();
        prop_assert_eq!(interner.len(), distinct.len());
        let mut seen = std::collections::HashSet::new();
        for (id, pc) in interner.iter() {
            prop_assert!(id.index() < interner.len());
            prop_assert!(seen.insert(pc), "pc {} interned twice", pc);
        }
        // And the persisted-table rebuild is the identity.
        let rebuilt = PcInterner::from_pcs(interner.pcs().to_vec()).expect("bijective");
        prop_assert_eq!(&rebuilt, &interner);
    }
}
