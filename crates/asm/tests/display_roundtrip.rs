//! Property test: the assembler parses exactly what `Instr`'s `Display`
//! prints — i.e. disassembly output is always valid assembler input.

use dvp_asm::assemble;
use dvp_isa::{decode, BranchOp, IOp, Instr, MemOp, ROp, Reg, ShiftOp};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

/// Instructions whose `Display` form is position-independent (branches and
/// jumps print numeric targets which the assembler interprets relative to
/// the instruction's own position or as absolute addresses, so they are
/// exercised separately below).
fn arb_positionless_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (
            prop_oneof![
                Just(ROp::Add),
                Just(ROp::Sub),
                Just(ROp::And),
                Just(ROp::Or),
                Just(ROp::Xor),
                Just(ROp::Nor),
                Just(ROp::Slt),
                Just(ROp::Sltu),
                Just(ROp::Mul),
                Just(ROp::Mulh),
                Just(ROp::Div),
                Just(ROp::Rem),
            ],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs, rt)| Instr::R { op, rd, rs, rt }),
        (
            prop_oneof![Just(ShiftOp::Sll), Just(ShiftOp::Srl), Just(ShiftOp::Sra)],
            arb_reg(),
            arb_reg(),
            0u8..32
        )
            .prop_map(|(op, rd, rt, shamt)| Instr::Shift { op, rd, rt, shamt }),
        (
            prop_oneof![Just(ShiftOp::Sll), Just(ShiftOp::Srl), Just(ShiftOp::Sra)],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rt, rs)| Instr::ShiftV { op, rd, rt, rs }),
        (prop_oneof![Just(IOp::Addi), Just(IOp::Slti)], arb_reg(), arb_reg(), any::<i16>())
            .prop_map(|(op, rt, rs, imm)| Instr::I { op, rt, rs, imm }),
        // Zero-extended immediates print as signed but reparse as their
        // unsigned bit pattern only when non-negative; restrict to that.
        (
            prop_oneof![Just(IOp::Andi), Just(IOp::Ori), Just(IOp::Xori), Just(IOp::Sltiu)],
            arb_reg(),
            arb_reg(),
            0i16..=i16::MAX
        )
            .prop_map(|(op, rt, rs, imm)| Instr::I { op, rt, rs, imm }),
        (arb_reg(), any::<u16>()).prop_map(|(rt, imm)| Instr::Lui { rt, imm }),
        (
            prop_oneof![
                Just(MemOp::Lb),
                Just(MemOp::Lbu),
                Just(MemOp::Lh),
                Just(MemOp::Lhu),
                Just(MemOp::Lw),
                Just(MemOp::Sb),
                Just(MemOp::Sh),
                Just(MemOp::Sw),
            ],
            arb_reg(),
            arb_reg(),
            any::<i16>()
        )
            .prop_map(|(op, rt, base, offset)| Instr::Mem { op, rt, base, offset }),
        arb_reg().prop_map(|rs| Instr::Jr { rs }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Instr::Jalr { rd, rs }),
        (0u32..(1 << 20)).prop_map(|code| Instr::Syscall { code }),
    ]
}

proptest! {
    #[test]
    fn display_reassembles_to_same_encoding(instrs in prop::collection::vec(arb_positionless_instr(), 1..40)) {
        let source: String = std::iter::once(".text".to_owned())
            .chain(instrs.iter().map(|i| format!("    {i}")))
            .collect::<Vec<_>>()
            .join("\n");
        let image = assemble(&source)
            .unwrap_or_else(|e| panic!("display text must assemble: {e}\n{source}"));
        prop_assert_eq!(image.text.len(), instrs.len());
        for (word, original) in image.text.iter().zip(&instrs) {
            let reparsed = decode(*word).expect("assembled word decodes");
            prop_assert_eq!(&reparsed, original);
        }
    }

    #[test]
    fn branches_round_trip_via_numeric_offsets(
        op in prop_oneof![
            Just(BranchOp::Beq),
            Just(BranchOp::Bne),
            Just(BranchOp::Blt),
            Just(BranchOp::Bge),
            Just(BranchOp::Bltu),
            Just(BranchOp::Bgeu),
        ],
        rs in arb_reg(),
        rt in arb_reg(),
        offset in any::<i16>(),
    ) {
        let instr = Instr::Branch { op, rs, rt, offset };
        let source = format!(".text\n    {instr}");
        let image = assemble(&source).unwrap();
        prop_assert_eq!(decode(image.text[0]).unwrap(), instr);
    }
}
