//! Disassembly listings of program images.

use crate::ProgramImage;
use dvp_isa::decode;
use std::collections::HashMap;

/// Renders a human-readable listing of the image's text segment:
/// `address: word  instruction`, with label lines interleaved from the
/// image's symbol table.
///
/// Undecodable words (possible in hand-crafted images) are shown as
/// `.word 0x…`.
///
/// # Examples
///
/// ```
/// use dvp_asm::{assemble, disassemble};
///
/// let image = assemble(".text\nmain: li t0, 1\nloop: addi t0, t0, 1\n b loop")?;
/// let listing = disassemble(&image);
/// assert!(listing.contains("main:"));
/// assert!(listing.contains("loop:"));
/// assert!(listing.contains("addi t0, t0, 1"));
/// # Ok::<(), dvp_asm::AsmError>(())
/// ```
#[must_use]
pub fn disassemble(image: &ProgramImage) -> String {
    // Group labels by address (several labels may share one).
    let mut labels: HashMap<u32, Vec<&str>> = HashMap::new();
    for (name, &addr) in &image.symbols {
        labels.entry(addr).or_default().push(name);
    }
    for names in labels.values_mut() {
        names.sort_unstable();
    }

    let mut out = String::new();
    for (i, &word) in image.text.iter().enumerate() {
        let addr = image.text_base + (i as u32) * 4;
        if let Some(names) = labels.get(&addr) {
            for name in names {
                out.push_str(name);
                out.push_str(":\n");
            }
        }
        let text = match decode(word) {
            Ok(instr) => instr.to_string(),
            Err(_) => format!(".word 0x{word:08x}"),
        };
        out.push_str(&format!("  0x{addr:08x}: {word:08x}  {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn listing_round_trips_mnemonics() {
        let src = r"
            .text
            main: add t0, t1, t2
                  lw s0, 4(sp)
                  jal helper
                  halt
            helper: jr ra
        ";
        let image = assemble(src).unwrap();
        let listing = disassemble(&image);
        for expected in ["add t0, t1, t2", "lw s0, 4(sp)", "jr ra", "main:", "helper:"] {
            assert!(listing.contains(expected), "missing `{expected}` in:\n{listing}");
        }
    }

    #[test]
    fn addresses_are_sequential() {
        let image = assemble(".text\nnop\nnop\nnop").unwrap();
        let listing = disassemble(&image);
        assert!(listing.contains("0x00400000"));
        assert!(listing.contains("0x00400004"));
        assert!(listing.contains("0x00400008"));
    }

    #[test]
    fn bad_words_render_as_word_directives() {
        let mut image = assemble(".text\nnop").unwrap();
        image.text.push(0xfc00_0000); // invalid opcode
        let listing = disassemble(&image);
        assert!(listing.contains(".word 0xfc000000"), "{listing}");
    }

    #[test]
    fn data_labels_do_not_pollute_text_listing() {
        let image = assemble(".text\nmain: halt\n.data\nbuf: .word 1").unwrap();
        let listing = disassemble(&image);
        assert!(listing.contains("main:"));
        assert!(!listing.contains("buf:"), "{listing}");
    }
}
