//! The two-pass assembler.

use crate::image::{ProgramImage, DATA_BASE, TEXT_BASE};
use dvp_isa::{encode, BranchOp, IOp, Instr, MemOp, ROp, Reg, ShiftOp};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError { line, message: message.into() }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A parsed source line: optional label plus optional statement.
#[derive(Debug, Clone)]
struct Line {
    number: usize,
    label: Option<String>,
    mnemonic: Option<String>,
    operands: Vec<String>,
}

/// Strips comments (`#` or `;` to end of line), respecting quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_char = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !in_char && !prev_backslash => in_str = !in_str,
            '\'' if !in_str && !prev_backslash => in_char = !in_char,
            '#' | ';' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Splits an operand list on top-level commas (commas inside quotes or char
/// literals do not split).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_char = false;
    let mut prev_backslash = false;
    for c in s.chars() {
        match c {
            '"' if !in_char && !prev_backslash => {
                in_str = !in_str;
                cur.push(c);
            }
            '\'' if !in_str && !prev_backslash => {
                in_char = !in_char;
                cur.push(c);
            }
            ',' if !in_str && !in_char => {
                out.push(cur.trim().to_owned());
                cur.clear();
            }
            _ => cur.push(c),
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    out
}

fn parse_line(number: usize, raw: &str) -> Result<Option<Line>, AsmError> {
    let text = strip_comment(raw).trim();
    if text.is_empty() {
        return Ok(None);
    }
    // Local labels like `.L0:` are allowed; directives never contain `:`.
    let (label, rest) = match text.split_once(':') {
        Some((l, r)) if !l.contains(char::is_whitespace) && !l.is_empty() => {
            (Some(l.to_owned()), r.trim())
        }
        _ => (None, text),
    };
    if rest.is_empty() {
        return Ok(Some(Line { number, label, mnemonic: None, operands: Vec::new() }));
    }
    let (mnemonic, args) = match rest.split_once(char::is_whitespace) {
        Some((m, a)) => (m.to_owned(), a.trim()),
        None => (rest.to_owned(), ""),
    };
    Ok(Some(Line {
        number,
        label,
        mnemonic: Some(mnemonic.to_ascii_lowercase()),
        operands: split_operands(args),
    }))
}

/// Parses a character literal body (after the opening quote was checked).
fn parse_char(body: &str, line: usize) -> Result<i64, AsmError> {
    let inner = body
        .strip_prefix('\'')
        .and_then(|s| s.strip_suffix('\''))
        .ok_or_else(|| AsmError::new(line, format!("malformed char literal `{body}`")))?;
    let value = match inner {
        "\\n" => b'\n',
        "\\t" => b'\t',
        "\\r" => b'\r',
        "\\0" => 0,
        "\\\\" => b'\\',
        "\\'" => b'\'',
        "\\\"" => b'"',
        s if s.len() == 1 => s.bytes().next().unwrap(),
        _ => return Err(AsmError::new(line, format!("malformed char literal `{body}`"))),
    };
    Ok(i64::from(value))
}

/// Parses a numeric literal: decimal, hex (0x), binary (0b), or char.
fn parse_number(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    if tok.starts_with('\'') {
        return parse_char(tok, line);
    }
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| AsmError::new(line, format!("invalid number `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// Decodes a string literal with escapes into bytes.
fn parse_string(tok: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let inner = tok
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, format!("malformed string literal `{tok}`")))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        let esc =
            chars.next().ok_or_else(|| AsmError::new(line, "dangling escape in string literal"))?;
        out.push(match esc {
            'n' => b'\n',
            't' => b'\t',
            'r' => b'\r',
            '0' => 0,
            '\\' => b'\\',
            '"' => b'"',
            '\'' => b'\'',
            other => {
                return Err(AsmError::new(line, format!("unknown escape `\\{other}`")));
            }
        });
    }
    Ok(out)
}

/// A value that is either a literal or a label reference (resolved at pass 2).
#[derive(Debug, Clone)]
enum ValueExpr {
    Literal(i64),
    Label(String),
}

fn parse_value_expr(tok: &str, line: usize) -> Result<ValueExpr, AsmError> {
    let tok = tok.trim();
    if tok.is_empty() {
        return Err(AsmError::new(line, "empty operand"));
    }
    let first = tok.chars().next().unwrap();
    if first.is_ascii_digit() || first == '-' || first == '\'' {
        Ok(ValueExpr::Literal(parse_number(tok, line)?))
    } else {
        Ok(ValueExpr::Label(tok.to_owned()))
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    tok.parse::<Reg>().map_err(|e| AsmError::new(line, e.to_string()))
}

/// `offset(base)` memory operand.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i16, Reg), AsmError> {
    let open = tok
        .find('(')
        .ok_or_else(|| AsmError::new(line, format!("expected `offset(base)`, got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| AsmError::new(line, format!("unclosed memory operand `{tok}`")))?;
    let off_text = tok[..open].trim();
    let offset = if off_text.is_empty() { 0 } else { parse_number(off_text, line)? };
    let offset = i16::try_from(offset)
        .map_err(|_| AsmError::new(line, format!("offset {offset} out of 16-bit range")))?;
    let base = parse_reg(tok[open + 1..close].trim(), line)?;
    Ok((offset, base))
}

/// How many instruction words a (possibly pseudo) instruction occupies.
fn instr_size(line: &Line) -> Result<u32, AsmError> {
    let m = line.mnemonic.as_deref().unwrap_or("");
    Ok(match m {
        "li" => {
            let imm = parse_number(
                line.operands
                    .get(1)
                    .ok_or_else(|| AsmError::new(line.number, "li needs 2 operands"))?,
                line.number,
            )?;
            li_size(imm)
        }
        "la" => 2,
        _ => 1,
    })
}

fn li_size(imm: i64) -> u32 {
    // One instruction when a 16-bit form exists (addi/ori) or when a bare
    // lui covers it; otherwise lui + ori.
    if i16::try_from(imm).is_ok() || u16::try_from(imm).is_ok() || imm & 0xffff == 0 {
        1
    } else {
        2
    }
}

struct Assembler {
    text: Vec<u32>,
    text_base: u32,
    data: Vec<u8>,
    data_base: u32,
    symbols: HashMap<String, u32>,
}

impl Assembler {
    fn resolve(&self, expr: &ValueExpr, line: usize) -> Result<i64, AsmError> {
        match expr {
            ValueExpr::Literal(v) => Ok(*v),
            ValueExpr::Label(name) => self
                .symbols
                .get(name)
                .map(|&a| i64::from(a))
                .ok_or_else(|| AsmError::new(line, format!("undefined label `{name}`"))),
        }
    }

    fn push(&mut self, instr: Instr) {
        self.text.push(encode(instr));
    }

    fn current_pc(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * 4
    }

    fn branch_offset(&self, expr: &ValueExpr, line: usize) -> Result<i16, AsmError> {
        match expr {
            ValueExpr::Literal(v) => i16::try_from(*v)
                .map_err(|_| AsmError::new(line, format!("branch offset {v} out of range"))),
            ValueExpr::Label(_) => {
                let target = self.resolve(expr, line)?;
                let next = i64::from(self.current_pc()) + 4;
                let delta = target - next;
                if delta % 4 != 0 {
                    return Err(AsmError::new(line, "branch target is not word aligned"));
                }
                i16::try_from(delta / 4).map_err(|_| {
                    AsmError::new(line, format!("branch target {delta} bytes away: out of range"))
                })
            }
        }
    }

    fn jump_target(&self, expr: &ValueExpr, line: usize) -> Result<u32, AsmError> {
        let addr = self.resolve(expr, line)?;
        if addr % 4 != 0 {
            return Err(AsmError::new(line, "jump target is not word aligned"));
        }
        Ok(((addr as u64) >> 2) as u32 & 0x03ff_ffff)
    }

    fn emit_li(&mut self, rd: Reg, imm: i64, line: usize) -> Result<(), AsmError> {
        if !(-0x8000_0000..=0xffff_ffff).contains(&imm) {
            return Err(AsmError::new(line, format!("li immediate {imm} out of 32-bit range")));
        }
        let imm32 = (imm as u64 & 0xffff_ffff) as u32;
        if let Ok(v) = i16::try_from(imm) {
            self.push(Instr::I { op: IOp::Addi, rt: rd, rs: Reg::ZERO, imm: v });
        } else if let Ok(v) = u16::try_from(imm) {
            self.push(Instr::I { op: IOp::Ori, rt: rd, rs: Reg::ZERO, imm: v as i16 });
        } else {
            let hi = (imm32 >> 16) as u16;
            let lo = (imm32 & 0xffff) as u16;
            self.push(Instr::Lui { rt: rd, imm: hi });
            if lo != 0 {
                self.push(Instr::I { op: IOp::Ori, rt: rd, rs: rd, imm: lo as i16 });
            }
        }
        Ok(())
    }
}

const R_OPS: [(&str, ROp); 12] = [
    ("add", ROp::Add),
    ("sub", ROp::Sub),
    ("and", ROp::And),
    ("or", ROp::Or),
    ("xor", ROp::Xor),
    ("nor", ROp::Nor),
    ("slt", ROp::Slt),
    ("sltu", ROp::Sltu),
    ("mul", ROp::Mul),
    ("mulh", ROp::Mulh),
    ("div", ROp::Div),
    ("rem", ROp::Rem),
];

const I_OPS: [(&str, IOp); 6] = [
    ("addi", IOp::Addi),
    ("slti", IOp::Slti),
    ("sltiu", IOp::Sltiu),
    ("andi", IOp::Andi),
    ("ori", IOp::Ori),
    ("xori", IOp::Xori),
];

const MEM_OPS: [(&str, MemOp); 8] = [
    ("lb", MemOp::Lb),
    ("lbu", MemOp::Lbu),
    ("lh", MemOp::Lh),
    ("lhu", MemOp::Lhu),
    ("lw", MemOp::Lw),
    ("sb", MemOp::Sb),
    ("sh", MemOp::Sh),
    ("sw", MemOp::Sw),
];

const BRANCH_OPS: [(&str, BranchOp); 6] = [
    ("beq", BranchOp::Beq),
    ("bne", BranchOp::Bne),
    ("blt", BranchOp::Blt),
    ("bge", BranchOp::Bge),
    ("bltu", BranchOp::Bltu),
    ("bgeu", BranchOp::Bgeu),
];

/// Swapped-operand branch pseudo-ops: `bgt a, b` == `blt b, a` etc.
const SWAPPED_BRANCH_OPS: [(&str, BranchOp); 4] = [
    ("bgt", BranchOp::Blt),
    ("ble", BranchOp::Bge),
    ("bgtu", BranchOp::Bltu),
    ("bleu", BranchOp::Bgeu),
];

const SHIFT_OPS: [(&str, ShiftOp); 3] =
    [("sll", ShiftOp::Sll), ("srl", ShiftOp::Srl), ("sra", ShiftOp::Sra)];

const SHIFTV_OPS: [(&str, ShiftOp); 3] =
    [("sllv", ShiftOp::Sll), ("srlv", ShiftOp::Srl), ("srav", ShiftOp::Sra)];

fn expect_operands(line: &Line, n: usize) -> Result<(), AsmError> {
    if line.operands.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            line.number,
            format!(
                "{} expects {n} operands, got {}",
                line.mnemonic.as_deref().unwrap_or("?"),
                line.operands.len()
            ),
        ))
    }
}

impl Assembler {
    #[allow(clippy::too_many_lines)]
    fn emit_instruction(&mut self, line: &Line) -> Result<(), AsmError> {
        let m = line.mnemonic.as_deref().unwrap_or("");
        let ln = line.number;
        let ops = &line.operands;

        if let Some((_, op)) = R_OPS.iter().find(|(n, _)| *n == m) {
            expect_operands(line, 3)?;
            let rd = parse_reg(&ops[0], ln)?;
            let rs = parse_reg(&ops[1], ln)?;
            let rt = parse_reg(&ops[2], ln)?;
            self.push(Instr::R { op: *op, rd, rs, rt });
            return Ok(());
        }
        if let Some((_, op)) = I_OPS.iter().find(|(n, _)| *n == m) {
            expect_operands(line, 3)?;
            let rt = parse_reg(&ops[0], ln)?;
            let rs = parse_reg(&ops[1], ln)?;
            let imm = parse_number(&ops[2], ln)?;
            let imm = if matches!(op, IOp::Andi | IOp::Ori | IOp::Xori | IOp::Sltiu) {
                u16::try_from(imm)
                    .map(|v| v as i16)
                    .or_else(|_| i16::try_from(imm))
                    .map_err(|_| AsmError::new(ln, format!("immediate {imm} out of range")))?
            } else {
                i16::try_from(imm)
                    .map_err(|_| AsmError::new(ln, format!("immediate {imm} out of range")))?
            };
            self.push(Instr::I { op: *op, rt, rs, imm });
            return Ok(());
        }
        if let Some((_, op)) = MEM_OPS.iter().find(|(n, _)| *n == m) {
            expect_operands(line, 2)?;
            let rt = parse_reg(&ops[0], ln)?;
            let (offset, base) = parse_mem_operand(&ops[1], ln)?;
            self.push(Instr::Mem { op: *op, rt, base, offset });
            return Ok(());
        }
        if let Some((_, op)) = BRANCH_OPS.iter().find(|(n, _)| *n == m) {
            expect_operands(line, 3)?;
            let rs = parse_reg(&ops[0], ln)?;
            let rt = parse_reg(&ops[1], ln)?;
            let offset = self.branch_offset(&parse_value_expr(&ops[2], ln)?, ln)?;
            self.push(Instr::Branch { op: *op, rs, rt, offset });
            return Ok(());
        }
        if let Some((_, op)) = SWAPPED_BRANCH_OPS.iter().find(|(n, _)| *n == m) {
            expect_operands(line, 3)?;
            let rs = parse_reg(&ops[0], ln)?;
            let rt = parse_reg(&ops[1], ln)?;
            let offset = self.branch_offset(&parse_value_expr(&ops[2], ln)?, ln)?;
            // Swapped: bgt a, b == blt b, a.
            self.push(Instr::Branch { op: *op, rs: rt, rt: rs, offset });
            return Ok(());
        }
        if let Some((_, op)) = SHIFT_OPS.iter().find(|(n, _)| *n == m) {
            expect_operands(line, 3)?;
            let rd = parse_reg(&ops[0], ln)?;
            let rt = parse_reg(&ops[1], ln)?;
            let shamt = parse_number(&ops[2], ln)?;
            let shamt = u8::try_from(shamt)
                .ok()
                .filter(|&s| s < 32)
                .ok_or_else(|| AsmError::new(ln, format!("shift amount {shamt} out of range")))?;
            self.push(Instr::Shift { op: *op, rd, rt, shamt });
            return Ok(());
        }
        if let Some((_, op)) = SHIFTV_OPS.iter().find(|(n, _)| *n == m) {
            expect_operands(line, 3)?;
            let rd = parse_reg(&ops[0], ln)?;
            let rt = parse_reg(&ops[1], ln)?;
            let rs = parse_reg(&ops[2], ln)?;
            self.push(Instr::ShiftV { op: *op, rd, rt, rs });
            return Ok(());
        }

        match m {
            "lui" => {
                expect_operands(line, 2)?;
                let rt = parse_reg(&ops[0], ln)?;
                let imm = parse_number(&ops[1], ln)?;
                let imm = u16::try_from(imm)
                    .map_err(|_| AsmError::new(ln, format!("lui immediate {imm} out of range")))?;
                self.push(Instr::Lui { rt, imm });
            }
            "j" => {
                expect_operands(line, 1)?;
                let target = self.jump_target(&parse_value_expr(&ops[0], ln)?, ln)?;
                self.push(Instr::J { target });
            }
            "jal" => {
                expect_operands(line, 1)?;
                let target = self.jump_target(&parse_value_expr(&ops[0], ln)?, ln)?;
                self.push(Instr::Jal { target });
            }
            "jr" => {
                expect_operands(line, 1)?;
                let rs = parse_reg(&ops[0], ln)?;
                self.push(Instr::Jr { rs });
            }
            "jalr" => {
                expect_operands(line, 2)?;
                let rd = parse_reg(&ops[0], ln)?;
                let rs = parse_reg(&ops[1], ln)?;
                self.push(Instr::Jalr { rd, rs });
            }
            "syscall" => {
                let code = match ops.len() {
                    0 => 0,
                    1 => u32::try_from(parse_number(&ops[0], ln)?)
                        .map_err(|_| AsmError::new(ln, "syscall code out of range"))?,
                    _ => return Err(AsmError::new(ln, "syscall takes at most one operand")),
                };
                self.push(Instr::Syscall { code });
            }
            // ----- pseudo-instructions -----
            "nop" => {
                expect_operands(line, 0)?;
                self.push(Instr::NOP);
            }
            "halt" => {
                expect_operands(line, 0)?;
                self.push(Instr::Syscall { code: dvp_isa::syscall::HALT });
            }
            "li" => {
                expect_operands(line, 2)?;
                let rd = parse_reg(&ops[0], ln)?;
                let imm = parse_number(&ops[1], ln)?;
                self.emit_li(rd, imm, ln)?;
            }
            "la" => {
                expect_operands(line, 2)?;
                let rd = parse_reg(&ops[0], ln)?;
                let addr = self.resolve(&parse_value_expr(&ops[1], ln)?, ln)? as u32;
                self.push(Instr::Lui { rt: rd, imm: (addr >> 16) as u16 });
                self.push(Instr::I {
                    op: IOp::Ori,
                    rt: rd,
                    rs: rd,
                    imm: (addr & 0xffff) as u16 as i16,
                });
            }
            "move" => {
                expect_operands(line, 2)?;
                let rd = parse_reg(&ops[0], ln)?;
                let rs = parse_reg(&ops[1], ln)?;
                self.push(Instr::R { op: ROp::Add, rd, rs, rt: Reg::ZERO });
            }
            "not" => {
                expect_operands(line, 2)?;
                let rd = parse_reg(&ops[0], ln)?;
                let rs = parse_reg(&ops[1], ln)?;
                self.push(Instr::R { op: ROp::Nor, rd, rs, rt: Reg::ZERO });
            }
            "neg" => {
                expect_operands(line, 2)?;
                let rd = parse_reg(&ops[0], ln)?;
                let rs = parse_reg(&ops[1], ln)?;
                self.push(Instr::R { op: ROp::Sub, rd, rs: Reg::ZERO, rt: rs });
            }
            "b" => {
                expect_operands(line, 1)?;
                let offset = self.branch_offset(&parse_value_expr(&ops[0], ln)?, ln)?;
                self.push(Instr::Branch {
                    op: BranchOp::Beq,
                    rs: Reg::ZERO,
                    rt: Reg::ZERO,
                    offset,
                });
            }
            "beqz" | "bnez" => {
                expect_operands(line, 2)?;
                let rs = parse_reg(&ops[0], ln)?;
                let offset = self.branch_offset(&parse_value_expr(&ops[1], ln)?, ln)?;
                let op = if m == "beqz" { BranchOp::Beq } else { BranchOp::Bne };
                self.push(Instr::Branch { op, rs, rt: Reg::ZERO, offset });
            }
            other => return Err(AsmError::new(ln, format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }

    fn emit_directive(&mut self, line: &Line, section: &mut Section) -> Result<(), AsmError> {
        let m = line.mnemonic.as_deref().unwrap_or("");
        let ln = line.number;
        match m {
            ".text" => *section = Section::Text,
            ".data" => *section = Section::Data,
            ".globl" | ".global" | ".ent" | ".end" => {} // accepted, no effect
            ".word" => {
                self.align_data(4);
                for op in &line.operands {
                    let v = self.resolve(&parse_value_expr(op, ln)?, ln)?;
                    self.data.extend_from_slice(&(v as u32).to_le_bytes());
                }
            }
            ".half" => {
                self.align_data(2);
                for op in &line.operands {
                    let v = self.resolve(&parse_value_expr(op, ln)?, ln)?;
                    self.data.extend_from_slice(&(v as u16).to_le_bytes());
                }
            }
            ".byte" => {
                for op in &line.operands {
                    let v = self.resolve(&parse_value_expr(op, ln)?, ln)?;
                    self.data.push(v as u8);
                }
            }
            ".ascii" | ".asciiz" => {
                expect_operands(line, 1)?;
                let mut bytes = parse_string(&line.operands[0], ln)?;
                if m == ".asciiz" {
                    bytes.push(0);
                }
                self.data.extend_from_slice(&bytes);
            }
            ".space" => {
                expect_operands(line, 1)?;
                let n = parse_number(&line.operands[0], ln)?;
                let n =
                    usize::try_from(n).map_err(|_| AsmError::new(ln, "negative .space size"))?;
                self.data.extend(std::iter::repeat_n(0u8, n));
            }
            ".align" => {
                expect_operands(line, 1)?;
                let n = parse_number(&line.operands[0], ln)?;
                let n = u32::try_from(n)
                    .ok()
                    .filter(|&n| n <= 16)
                    .ok_or_else(|| AsmError::new(ln, "bad .align"))?;
                self.align_data(1 << n);
            }
            other => return Err(AsmError::new(ln, format!("unknown directive `{other}`"))),
        }
        Ok(())
    }

    fn align_data(&mut self, align: u32) {
        while !(self.data_base + self.data.len() as u32).is_multiple_of(align) {
            self.data.push(0);
        }
    }
}

/// Sizes a directive's data contribution for pass 1 (must agree exactly with
/// what `emit_directive` appends).
fn directive_size(line: &Line, data_cursor: u32) -> Result<u32, AsmError> {
    let m = line.mnemonic.as_deref().unwrap_or("");
    let ln = line.number;
    let aligned = |cursor: u32, align: u32| cursor.div_ceil(align) * align;
    Ok(match m {
        ".word" => aligned(data_cursor, 4) - data_cursor + 4 * line.operands.len() as u32,
        ".half" => aligned(data_cursor, 2) - data_cursor + 2 * line.operands.len() as u32,
        ".byte" => line.operands.len() as u32,
        ".ascii" | ".asciiz" => {
            expect_operands(line, 1)?;
            let bytes = parse_string(&line.operands[0], ln)?;
            bytes.len() as u32 + u32::from(m == ".asciiz")
        }
        ".space" => {
            expect_operands(line, 1)?;
            u32::try_from(parse_number(&line.operands[0], ln)?)
                .map_err(|_| AsmError::new(ln, "negative .space size"))?
        }
        ".align" => {
            expect_operands(line, 1)?;
            let n = u32::try_from(parse_number(&line.operands[0], ln)?)
                .ok()
                .filter(|&n| n <= 16)
                .ok_or_else(|| AsmError::new(ln, "bad .align"))?;
            aligned(data_cursor, 1 << n) - data_cursor
        }
        _ => 0,
    })
}

/// Assembles `source` with the default segment bases.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (with its line number).
pub fn assemble(source: &str) -> Result<ProgramImage, AsmError> {
    assemble_with_bases(source, TEXT_BASE, DATA_BASE)
}

/// Assembles `source` placing text and data at the given base addresses.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered. Both bases must be
/// word-aligned.
pub fn assemble_with_bases(
    source: &str,
    text_base: u32,
    data_base: u32,
) -> Result<ProgramImage, AsmError> {
    if !text_base.is_multiple_of(4) || !data_base.is_multiple_of(4) {
        return Err(AsmError::new(0, "segment bases must be word aligned"));
    }
    let mut lines = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        if let Some(line) = parse_line(i + 1, raw)? {
            lines.push(line);
        }
    }

    // Pass 1: lay out sections and record label addresses.
    let mut symbols = HashMap::new();
    let mut section = Section::Text;
    let mut text_cursor = 0u32; // bytes
    let mut data_cursor = 0u32; // bytes
    for line in &lines {
        let is_directive = line.mnemonic.as_deref().is_some_and(|m| m.starts_with('.'));
        // Pre-directive section switches must happen before labeling.
        if is_directive {
            match line.mnemonic.as_deref() {
                Some(".text") => section = Section::Text,
                Some(".data") => section = Section::Data,
                _ => {}
            }
        }
        if let Some(label) = &line.label {
            let addr = match section {
                Section::Text => text_base + text_cursor,
                Section::Data => {
                    // Labels on .word/.half lines refer to the aligned address.
                    let align = match line.mnemonic.as_deref() {
                        Some(".word") => 4,
                        Some(".half") => 2,
                        _ => 1,
                    };
                    data_base + data_cursor.div_ceil(align) * align
                }
            };
            if symbols.insert(label.clone(), addr).is_some() {
                return Err(AsmError::new(line.number, format!("duplicate label `{label}`")));
            }
        }
        if line.mnemonic.is_none() {
            continue;
        }
        if is_directive {
            data_cursor += match section {
                Section::Data => directive_size(line, data_cursor)?,
                Section::Text => {
                    // Data directives inside .text are rejected at pass 2;
                    // .text/.globl etc. contribute nothing.
                    0
                }
            };
        } else {
            text_cursor += instr_size(line)? * 4;
        }
    }

    // Pass 2: emit.
    let mut asm = Assembler { text: Vec::new(), text_base, data: Vec::new(), data_base, symbols };
    let mut section = Section::Text;
    for line in &lines {
        let Some(m) = line.mnemonic.as_deref() else { continue };
        if m.starts_with('.') {
            if section == Section::Text
                && matches!(m, ".word" | ".half" | ".byte" | ".ascii" | ".asciiz" | ".space")
            {
                return Err(AsmError::new(
                    line.number,
                    format!("data directive `{m}` outside .data section"),
                ));
            }
            asm.emit_directive(line, &mut section)?;
        } else {
            if section != Section::Text {
                return Err(AsmError::new(line.number, "instruction outside .text section"));
            }
            let before = asm.text.len() as u32;
            let expected = instr_size(line)?;
            asm.emit_instruction(line)?;
            let emitted = asm.text.len() as u32 - before;
            debug_assert_eq!(
                emitted, expected,
                "pass-1 size disagrees with pass-2 emission on line {}",
                line.number
            );
        }
    }

    let entry = asm.symbols.get("main").copied().unwrap_or(text_base);
    Ok(ProgramImage {
        text: asm.text,
        text_base,
        data: asm.data,
        data_base,
        entry,
        symbols: asm.symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvp_isa::decode;

    fn asm(src: &str) -> ProgramImage {
        assemble(src).unwrap_or_else(|e| panic!("assembly failed: {e}"))
    }

    fn disasm(image: &ProgramImage) -> Vec<String> {
        image.text.iter().map(|&w| decode(w).unwrap().to_string()).collect()
    }

    #[test]
    fn basic_instructions_assemble() {
        let image = asm(r"
            .text
            add t0, t1, t2
            addi t0, t0, -5
            lw s0, 8(sp)
            sw s0, -4(fp)
            sll v0, v1, 3
            sllv v0, v1, a0
        ");
        assert_eq!(
            disasm(&image),
            vec![
                "add t0, t1, t2",
                "addi t0, t0, -5",
                "lw s0, 8(sp)",
                "sw s0, -4(fp)",
                "sll v0, v1, 3",
                "sllv v0, v1, a0",
            ]
        );
    }

    #[test]
    fn labels_and_branches_resolve() {
        let image = asm(r"
            .text
            main:
            loop: addi t0, t0, 1
                  bne t0, t1, loop
                  beq t0, t1, done
                  nop
            done: halt
        ");
        let text = disasm(&image);
        // bne jumps back 2 instructions: offset -2.
        assert_eq!(text[1], "bne t0, t1, -2");
        // beq skips the nop: offset +1.
        assert_eq!(text[2], "beq t0, t1, 1");
    }

    #[test]
    fn forward_and_backward_jumps() {
        let image = asm(r"
            .text
            main: jal func
                  halt
            func: jr ra
        ");
        let func = image.symbol("func").unwrap();
        match decode(image.text[0]).unwrap() {
            dvp_isa::Instr::Jal { target } => assert_eq!(target << 2, func),
            other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn li_expansion_sizes() {
        // Small positive/negative: one addi.
        assert_eq!(asm(".text\nli t0, 42").text.len(), 1);
        assert_eq!(asm(".text\nli t0, -42").text.len(), 1);
        // 16-bit unsigned beyond i16: one ori.
        assert_eq!(asm(".text\nli t0, 40000").text.len(), 1);
        // Full 32-bit: lui + ori.
        assert_eq!(asm(".text\nli t0, 0x12345678").text.len(), 2);
        // High-half only: a single lui suffices.
        assert_eq!(asm(".text\nli t0, 0x10000").text.len(), 1);
    }

    #[test]
    fn li_values_load_correctly_shaped_words() {
        let image = asm(".text\nli t0, 0x12345678");
        let text = disasm(&image);
        assert_eq!(text, vec!["lui t0, 4660", "ori t0, t0, 22136"]);
    }

    #[test]
    fn la_is_lui_plus_ori() {
        let image = asm(r#"
            .text
            main: la t0, msg
            .data
            msg: .asciiz "x"
        "#);
        let addr = image.symbol("msg").unwrap();
        assert_eq!(addr, DATA_BASE);
        let text = disasm(&image);
        assert_eq!(text[0], format!("lui t0, {}", addr >> 16));
    }

    #[test]
    fn data_directives_lay_out_bytes() {
        let image = asm(r#"
            .data
            a: .byte 1, 2, 3
            b: .word 0x04030201
            c: .asciiz "hi"
            d: .space 2
            e: .half 0x0605
        "#);
        // .word aligns to 4 after 3 bytes -> one pad byte.
        assert_eq!(
            image.data,
            vec![1, 2, 3, 0, 0x01, 0x02, 0x03, 0x04, b'h', b'i', 0, 0, 0, 0, 0x05, 0x06]
        );
        assert_eq!(image.symbol("b").unwrap(), DATA_BASE + 4);
        assert_eq!(image.symbol("e").unwrap(), DATA_BASE + 14);
    }

    #[test]
    fn word_can_hold_label_references() {
        let image = asm(r"
            .data
            table: .word table, next
            next:  .word 7
        ");
        let table = image.symbol("table").unwrap();
        let next = image.symbol("next").unwrap();
        assert_eq!(&image.data[0..4], &table.to_le_bytes());
        assert_eq!(&image.data[4..8], &next.to_le_bytes());
    }

    #[test]
    fn entry_defaults_to_main_or_text_base() {
        let with_main = asm(".text\nnop\nmain: halt");
        assert_eq!(with_main.entry, with_main.text_base + 4);
        let without = asm(".text\nnop");
        assert_eq!(without.entry, without.text_base);
    }

    #[test]
    fn pseudo_instructions_expand() {
        let image = asm(r"
            .text
            move t0, t1
            not  t2, t3
            neg  t4, t5
            beqz t0, 4
            bnez t0, -4
            b 8
            halt
        ");
        let text = disasm(&image);
        assert_eq!(text[0], "add t0, t1, zero");
        assert_eq!(text[1], "nor t2, t3, zero");
        assert_eq!(text[2], "sub t4, zero, t5");
        assert_eq!(text[3], "beq t0, zero, 4");
        assert_eq!(text[4], "bne t0, zero, -4");
        assert_eq!(text[5], "beq zero, zero, 8");
        assert_eq!(text[6], "syscall 0");
    }

    #[test]
    fn swapped_branches() {
        let image = asm(".text\nbgt t0, t1, 4\nble t2, t3, 8");
        let text = disasm(&image);
        assert_eq!(text[0], "blt t1, t0, 4");
        assert_eq!(text[1], "bge t3, t2, 8");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let image = asm("
            # leading comment
            .text
            nop ; trailing comment
            nop # another

            halt
        ");
        assert_eq!(image.text.len(), 3);
    }

    #[test]
    fn char_literals_in_immediates() {
        let image = asm(".text\nli t0, 'A'\nli t1, '\\n'");
        let text = disasm(&image);
        assert_eq!(text[0], "addi t0, zero, 65");
        assert_eq!(text[1], "addi t1, zero, 10");
    }

    #[test]
    fn string_escapes() {
        let image = asm(".data\ns: .asciiz \"a\\tb\\n\\\"q\\\"\"");
        assert_eq!(image.data, b"a\tb\n\"q\"\0".to_vec());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let image = asm(".data\ns: .asciiz \"a#b\"");
        assert_eq!(image.data, b"a#b\0".to_vec());
    }

    // ----- error cases ------------------------------------------------

    #[test]
    fn undefined_label_is_reported_with_line() {
        let err = assemble(".text\n\n j nowhere").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_rejected() {
        let err = assemble(".text\nx: nop\nx: nop").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn unknown_mnemonic_is_rejected() {
        let err = assemble(".text\nfrobnicate t0, t1").unwrap_err();
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn bad_register_is_rejected() {
        let err = assemble(".text\nadd q0, t1, t2").unwrap_err();
        assert!(err.message.contains("q0"));
    }

    #[test]
    fn immediate_out_of_range_is_rejected() {
        assert!(assemble(".text\naddi t0, t0, 40000").is_err());
        assert!(assemble(".text\nsll t0, t0, 32").is_err());
    }

    #[test]
    fn data_directive_in_text_is_rejected() {
        let err = assemble(".text\n.word 1").unwrap_err();
        assert!(err.message.contains("outside .data"));
    }

    #[test]
    fn instruction_in_data_is_rejected() {
        let err = assemble(".data\nadd t0, t1, t2").unwrap_err();
        assert!(err.message.contains("outside .text"));
    }

    #[test]
    fn misaligned_bases_are_rejected() {
        assert!(assemble_with_bases(".text\nnop", 2, DATA_BASE).is_err());
    }

    #[test]
    fn operands_count_is_checked() {
        let err = assemble(".text\nadd t0, t1").unwrap_err();
        assert!(err.message.contains("expects 3"));
    }
}
