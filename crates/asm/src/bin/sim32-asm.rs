//! `sim32-asm` — assemble a Sim32 assembly file and print a listing.
//!
//! ```text
//! sim32-asm program.s            # stats + disassembly listing
//! sim32-asm --quiet program.s    # stats only
//! ```

use dvp_asm::{assemble, disassemble};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    args.retain(|a| a != "--quiet" && a != "-q");
    let Some(path) = args.first() else {
        eprintln!("usage: sim32-asm [--quiet] <file.s>");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sim32-asm: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match assemble(&source) {
        Ok(image) => {
            eprintln!(
                "{path}: {} instructions ({} bytes text), {} bytes data, entry 0x{:08x}, {} symbols",
                image.text.len(),
                image.text.len() * 4,
                image.data.len(),
                image.entry,
                image.symbols.len()
            );
            if !quiet {
                print!("{}", disassemble(&image));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}:{e}");
            ExitCode::FAILURE
        }
    }
}
