//! The output of assembly: a loadable program image.

use std::collections::HashMap;

/// Default base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;

/// Default base address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;

/// A fully assembled program, ready to be loaded by the simulator.
///
/// # Examples
///
/// ```
/// use dvp_asm::assemble;
///
/// let image = assemble(".text\nmain: halt\n.data\nx: .word 7")?;
/// assert_eq!(image.entry, image.symbol("main").unwrap());
/// assert_eq!(image.data, vec![7, 0, 0, 0]); // little endian
/// # Ok::<(), dvp_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramImage {
    /// Encoded instruction words, in order, starting at `text_base`.
    pub text: Vec<u32>,
    /// Byte address where the text segment is loaded.
    pub text_base: u32,
    /// Raw data segment bytes, starting at `data_base`.
    pub data: Vec<u8>,
    /// Byte address where the data segment is loaded.
    pub data_base: u32,
    /// Entry point (the `main` label if present, else `text_base`).
    pub entry: u32,
    /// All labels with their resolved byte addresses.
    pub symbols: HashMap<String, u32>,
}

impl ProgramImage {
    /// Looks up a label's byte address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The byte address one past the end of the text segment.
    #[must_use]
    pub fn text_end(&self) -> u32 {
        self.text_base + (self.text.len() as u32) * 4
    }

    /// The byte address one past the end of the initialized data segment.
    #[must_use]
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ends_are_computed_from_lengths() {
        let image = ProgramImage {
            text: vec![0; 3],
            text_base: 0x400000,
            data: vec![0; 5],
            data_base: 0x10000000,
            entry: 0x400000,
            symbols: HashMap::new(),
        };
        assert_eq!(image.text_end(), 0x40000c);
        assert_eq!(image.data_end(), 0x10000005);
        assert_eq!(image.symbol("nope"), None);
    }
}
