//! # dvp-asm — assembler for the Sim32 ISA
//!
//! A two-pass text assembler producing loadable [`ProgramImage`]s for the
//! `dvp-sim` functional simulator. It supports labels, the usual data
//! directives, and a small set of pseudo-instructions that expand to real
//! Sim32 instructions.
//!
//! The `dvp-lang` Mini compiler emits this assembly dialect; hand-written
//! `.s` files (used heavily in tests) use it too.
//!
//! # Syntax
//!
//! ```text
//! # comment            ; also a comment
//!         .text
//! main:   li   t0, 10
//! loop:   addi t0, t0, -1
//!         bne  t0, zero, loop
//!         li   v0, 99
//!         syscall 0            # halt
//!         .data
//! msg:    .asciiz "hi"
//! nums:   .word 1, 2, 3
//! ```
//!
//! # Pseudo-instructions
//!
//! | pseudo | expansion |
//! |--------|-----------|
//! | `li rd, imm32`  | `addi`/`ori`/`lui(+ori)` depending on the value |
//! | `la rd, label`  | `lui` + `ori` |
//! | `move rd, rs`   | `add rd, rs, zero` |
//! | `not rd, rs`    | `nor rd, rs, zero` |
//! | `neg rd, rs`    | `sub rd, zero, rs` |
//! | `b label`       | `beq zero, zero, label` |
//! | `beqz/bnez r, label` | `beq`/`bne` against `zero` |
//! | `bgt/ble/bgtu/bleu`  | operand-swapped `blt`/`bge`/`bltu`/`bgeu` |
//! | `halt`          | `syscall 0` |
//! | `nop`           | `sll zero, zero, 0` |
//!
//! # Examples
//!
//! ```
//! use dvp_asm::assemble;
//!
//! let image = assemble(r#"
//!         .text
//! main:   li   v0, 42
//!         halt
//! "#)?;
//! assert_eq!(image.text.len(), 2);
//! # Ok::<(), dvp_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod disasm;
mod image;
mod parser;

pub use disasm::disassemble;
pub use image::{ProgramImage, DATA_BASE, TEXT_BASE};
pub use parser::{assemble, assemble_with_bases, AsmError};
