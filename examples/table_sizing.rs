//! Size a realizable value predictor: sweep finite (direct-mapped) table
//! geometries against the paper's unbounded idealization and report the
//! accuracy each hardware budget buys.
//!
//! The paper (Section 4.3) deliberately ignores cost — "predictor costs are
//! ignored in order to more clearly understand limits of data
//! predictability" — and notes that fixed tables would introduce aliasing.
//! This example is the engineering follow-up: for one benchmark, it prints
//! accuracy and storage for a range of table sizes, tagged and untagged, so
//! the knee of the size/accuracy curve is visible.
//!
//! Run with: `cargo run --release --example table_sizing [benchmark]`

use dvp_core::{
    FcmPredictor, FiniteFcmPredictor, FiniteHybridPredictor, FiniteLastValuePredictor,
    FiniteStridePredictor, Predictor, StridePredictor, TableSpec,
};
use dvp_lang::OptLevel;
use dvp_trace::TraceRecord;
use dvp_workloads::{Benchmark, Workload};

fn accuracy(p: &mut dyn Predictor, trace: &[TraceRecord]) -> f64 {
    let (correct, total) = dvp_core::run_trace(p, trace.iter());
    100.0 * correct as f64 / total.max(1) as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = match std::env::args().nth(1) {
        None => Benchmark::Cc,
        Some(name) => Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == name)
            .ok_or_else(|| format!("unknown benchmark `{name}` (try: cc, go, perl, ...)"))?,
    };
    let workload = Workload::reference(benchmark).with_scale(1);
    let trace = workload.trace(OptLevel::O1, 200_000_000)?;
    println!("table sizing on `{}` ({} predicted instructions)\n", benchmark.name(), trace.len());

    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} {:>8} {:>8}",
        "entries", "l%", "l-tag%", "s2%", "s2-tag%", "fcm2%", "fcm2-KiB", "hyb%", "hyb-KiB"
    );
    for bits in [4u32, 6, 8, 10, 12, 14] {
        let untagged = TableSpec::new(bits);
        let tagged = TableSpec::new(bits).with_tag_bits(8);
        let mut f = FiniteFcmPredictor::new(2, untagged, TableSpec::new(bits + 4));
        let mut h = FiniteHybridPredictor::paper_geometry(bits);
        let hybrid_kib = h.storage_bits() / 8 / 1024;
        println!(
            "{:>8} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>9} {:>8.1} {:>8}",
            1u64 << bits,
            accuracy(&mut FiniteLastValuePredictor::new(untagged), &trace),
            accuracy(&mut FiniteLastValuePredictor::new(tagged), &trace),
            accuracy(&mut FiniteStridePredictor::new(untagged), &trace),
            accuracy(&mut FiniteStridePredictor::new(tagged), &trace),
            accuracy(&mut f, &trace),
            f.storage_bits() / 8 / 1024,
            accuracy(&mut h, &trace),
            hybrid_kib,
        );
    }
    println!(
        "{:>8} {:>9} {:>9} {:>9.1} {:>9} {:>10.1} {:>9} {:>8} {:>8}",
        "unbound",
        "-",
        "-",
        accuracy(&mut StridePredictor::two_delta(), &trace),
        "-",
        accuracy(&mut FcmPredictor::new(2), &trace),
        "-",
        "-",
        "-"
    );
    println!(
        "\nTags stop cross-instruction mispredictions (a mismatch predicts nothing\n\
         instead of predicting the aliasing instruction's value) but do not stop\n\
         eviction thrash; both effects shrink as the table grows toward one slot\n\
         per static instruction — the paper's idealization."
    );
    Ok(())
}
