//! Walk the full substrate pipeline by hand: write a Mini program, compile
//! it at two optimization levels, inspect the generated assembly, assemble,
//! execute, and compare the value traces the predictors would see.
//!
//! Run with: `cargo run --release --example compiler_pipeline`

use dvp_asm::assemble;
use dvp_core::StridePredictor;
use dvp_lang::{compile, OptLevel};
use dvp_sim::Machine;
use dvp_trace::TraceSummary;

const PROGRAM: &str = "
// Sum of squares with a strength-reducible multiply and a global.
int total = 0;
int square_scaled(int x) { return x * x * 8; }
int main() {
    for (int i = 1; i <= 200; i = i + 1) {
        total = total + square_scaled(i);
    }
    print_int(total);
    return 0;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for opt in [OptLevel::O0, OptLevel::O2] {
        println!("=== {opt} ===");
        let asm = compile(PROGRAM, opt)?;
        let mul_count = asm.lines().filter(|l| l.trim().starts_with("mul")).count();
        let sll_count = asm.lines().filter(|l| l.trim().starts_with("sll")).count();
        println!("assembly: {} lines, {mul_count} mul, {sll_count} sll", asm.lines().count());

        let image = assemble(&asm)?;
        let mut machine = Machine::load(&image);
        let trace = machine.collect_trace(10_000_000)?;
        println!("output: {}", machine.output_string());
        println!("retired: {} instructions, {} predicted", machine.retired(), trace.len());

        let summary: TraceSummary = trace.iter().copied().collect();
        print!("mix:");
        for (cat, count) in summary.dynamic_mix().iter() {
            if count > 0 {
                print!(" {}={:.1}%", cat.code(), 100.0 * summary.dynamic_fraction(cat));
            }
        }
        println!();

        // The loop induction variable and accumulator are stride sequences:
        // a stride predictor should do very well on this program.
        let mut stride = StridePredictor::two_delta();
        let (correct, total) = dvp_core::run_trace(&mut stride, trace.iter());
        println!("s2 stride accuracy: {:.1}%\n", 100.0 * correct as f64 / total as f64);
    }
    Ok(())
}
