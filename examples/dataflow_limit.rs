//! The paper's Section 5 claim, measured: how much faster could a machine
//! run if data values were predicted?
//!
//! Uses the dataflow-limit model (Lipasti & Shen, the paper's reference
//! [2]): unit-latency operations, perfect control prediction, execution
//! bounded only by data-dependence chains. For each benchmark this example
//! prints the dependence-chain height, the dataflow-limit IPC, and the
//! speedup each predictor family unlocks by breaking dependence edges it
//! predicts correctly.
//!
//! Run with: `cargo run --release --example dataflow_limit [penalty]`
//! (penalty = extra cycles consumers of a mispredicted value pay; default 0)

use dvp::core::{
    dataflow_height, oracle_height, value_predicted_height, FcmPredictor, LastValuePredictor,
    StridePredictor,
};
use dvp::sim::collect_dataflow;
use dvp::workloads::{Benchmark, Workload};
use dvp_lang::OptLevel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let penalty: u64 = match std::env::args().nth(1) {
        None => 0,
        Some(arg) => arg.parse().map_err(|_| format!("bad penalty `{arg}`"))?,
    };
    println!(
        "dataflow-limit speedup at misprediction penalty {penalty}\n\n\
         {:<10} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "nodes", "height", "ipc", "l", "s2", "fcm3"
    );
    for benchmark in Benchmark::ALL {
        // Scale the workloads down: dependence traces are bulky and the
        // shapes are stable well below full scale.
        let scale = (benchmark.default_scale() / 4).max(1);
        let workload = Workload::reference(benchmark).with_scale(scale);
        let mut machine = workload.machine(OptLevel::O1)?;
        let nodes = collect_dataflow(&mut machine, 500_000_000)?;

        let base = dataflow_height(&nodes);
        let l = value_predicted_height(&nodes, &mut LastValuePredictor::new(), penalty);
        let s2 = value_predicted_height(&nodes, &mut StridePredictor::two_delta(), penalty);
        let fcm3 = value_predicted_height(&nodes, &mut FcmPredictor::new(3), penalty);
        println!(
            "{:<10} {:>9} {:>9} {:>7.1} {:>6.2}x {:>6.2}x {:>6.2}x",
            benchmark.name(),
            nodes.len(),
            base,
            nodes.len() as f64 / base.max(1) as f64,
            l.speedup(),
            s2.speedup(),
            fcm3.speedup(),
        );
        let _ = oracle_height(&nodes); // see `repro ext-speedup` for the oracle
    }
    println!(
        "\nStride prediction often out-speeds the more accurate fcm3: dataflow\n\
         critical paths are loop-carried induction chains — non-repeating\n\
         stride-class sequences that context-based predictors cannot\n\
         extrapolate (paper Table 1, row S). Accuracy is not time; a hybrid\n\
         (paper Section 4.2) gets both."
    );
    Ok(())
}
