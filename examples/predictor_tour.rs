//! A tour of the predictor design space on the paper's Section 1.1
//! sequence taxonomy: every predictor variant (hysteresis policies,
//! two-delta, blending modes, saturating counters, hybrids) against every
//! sequence class.
//!
//! Run with: `cargo run --release --example predictor_tour`

use dvp_core::sequences::{
    constant, measure_learning, non_stride, repeated_non_stride, repeated_stride, stride,
    SequenceClass,
};
use dvp_core::{
    Blending, CounterMode, DelayedPredictor, FcmPredictor, FiniteFcmPredictor,
    FiniteHybridPredictor, FiniteStridePredictor, HybridPredictor, LastValuePolicy,
    LastValuePredictor, Predictor, StridePolicy, StridePredictor, TableSpec,
};

fn zoo() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(LastValuePredictor::new()),
        Box::new(LastValuePredictor::with_policy(LastValuePolicy::SaturatingCounter {
            max: 3,
            threshold: 2,
        })),
        Box::new(LastValuePredictor::with_policy(LastValuePolicy::ConsecutiveConfirm {
            required: 2,
        })),
        Box::new(StridePredictor::with_policy(StridePolicy::Simple)),
        Box::new(StridePredictor::with_policy(StridePolicy::Hysteresis { max: 3, threshold: 1 })),
        Box::new(StridePredictor::two_delta()),
        Box::new(FcmPredictor::new(1)),
        Box::new(FcmPredictor::new(3)),
        Box::new(FcmPredictor::with_config(3, Blending::SingleOrder, CounterMode::Exact)),
        Box::new(FcmPredictor::with_config(
            3,
            Blending::LazyExclusion,
            CounterMode::Saturating { max: 16 },
        )),
        Box::new(HybridPredictor::stride_fcm(3)),
        // The realizable tier: fixed direct-mapped tables and a delayed
        // update pipeline (single-PC sequences, so tiny tables suffice).
        Box::new(FiniteStridePredictor::new(TableSpec::new(4))),
        Box::new(FiniteFcmPredictor::new(3, TableSpec::new(4), TableSpec::new(8))),
        Box::new(FiniteHybridPredictor::paper_geometry(4)),
        Box::new(DelayedPredictor::new(StridePredictor::two_delta(), 8)),
    ]
}

fn main() {
    let n = 512;
    let period = 16;
    let sequences: Vec<(SequenceClass, Vec<u64>)> = vec![
        (SequenceClass::Constant, constant(42, n)),
        (SequenceClass::Stride, stride(100, 12, n)),
        (SequenceClass::NonStride, non_stride(7, n)),
        (SequenceClass::RepeatedStride, repeated_stride(1, 1, period, n)),
        (SequenceClass::RepeatedNonStride, repeated_non_stride(7, period, n)),
    ];

    let width = zoo().iter().map(|p| p.name().len()).max().unwrap_or(16) + 2;
    print!("{:<width$}", "predictor");
    for (class, _) in &sequences {
        print!("{:>8}", class.code());
    }
    println!("      (accuracy % over {n} values, period {period})");
    println!("{}", "-".repeat(width + 8 * sequences.len() + 6));

    for make in 0..zoo().len() {
        let name = zoo().remove(make).name().to_owned();
        print!("{name:<width$}");
        for (_, values) in &sequences {
            let mut predictor = zoo().remove(make);
            let learning = measure_learning(predictor.as_mut(), values);
            print!("{:>8.1}", learning.accuracy() * 100.0);
        }
        println!();
    }
    println!(
        "\nReading guide (paper Table 1): last value only learns constants; stride\n\
         variants learn strides; only fcm learns repeated non-strides; the hybrid\n\
         inherits the union of its components."
    );
}
