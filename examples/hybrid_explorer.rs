//! Explore the hybrid predictor the paper motivates in Section 4.2: how
//! close does a stride+fcm hybrid with a per-PC chooser get to the union of
//! its components ("use a stride predictor for most predictions, and use
//! fcm prediction to get the remaining 20%")?
//!
//! Run with: `cargo run --release --example hybrid_explorer`

use dvp_core::{FcmPredictor, HybridPredictor, PredictorSet, StridePredictor};
use dvp_lang::OptLevel;
use dvp_workloads::{Benchmark, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "benchmark", "s2%", "fcm3%", "hybrid%", "union%", "chooser"
    );
    for benchmark in Benchmark::ALL {
        let workload = Workload::reference(benchmark).with_scale(1);
        let trace = workload.trace(OptLevel::O1, 200_000_000)?;

        // Union of correct sets via the lockstep machinery (bit1 = stride,
        // bit2 = fcm in the paper trio).
        let mut set = PredictorSet::new();
        set.push(Box::new(StridePredictor::two_delta()));
        set.push(Box::new(FcmPredictor::new(3)));
        for rec in &trace {
            set.observe(rec);
        }
        let total = set.total() as f64;
        let s2 = set.accuracy(0) * 100.0;
        let fcm = set.accuracy(1) * 100.0;
        let union = (total - set.subset_count(None, 0b00) as f64) / total * 100.0;

        let mut hybrid = HybridPredictor::stride_fcm(3);
        let (correct, _) = dvp_core::run_trace(&mut hybrid, trace.iter());
        let hybrid_acc = correct as f64 / total * 100.0;

        println!(
            "{:<10} {:>7.1} {:>7.1} {:>7.1} {:>8.1} {:>6.1}%",
            benchmark.name(),
            s2,
            fcm,
            hybrid_acc,
            union,
            // How much of the oracle-union headroom the chooser recovers.
            100.0 * (hybrid_acc - s2.max(fcm)).max(0.0) / (union - s2.max(fcm)).max(0.001),
        );
    }
    println!(
        "\n`union%` is the oracle upper bound (either component correct); the chooser\n\
         column shows how much of the gap between the best component and the oracle\n\
         the per-PC chooser actually recovers."
    );
    Ok(())
}
