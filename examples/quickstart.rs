//! Quickstart: predict the values of a short synthetic sequence with every
//! predictor family from the paper, then do the same for a real compiled
//! workload.
//!
//! Run with: `cargo run --release --example quickstart`

use dvp_core::{FcmPredictor, HybridPredictor, LastValuePredictor, Predictor, StridePredictor};
use dvp_lang::OptLevel;
use dvp_trace::Pc;
use dvp_workloads::{Benchmark, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- Part 1: the Section 1.1 sequence classes -------------------
    //
    // A repeated non-stride sequence: computational predictors cannot
    // learn it, context-based prediction can.
    let sequence: Vec<u64> = [3u64, 17, 8, 42].iter().copied().cycle().take(40).collect();
    let pc = Pc(0x0040_0100);

    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(LastValuePredictor::new()),
        Box::new(StridePredictor::two_delta()),
        Box::new(FcmPredictor::new(2)),
        Box::new(HybridPredictor::stride_fcm(2)),
    ];
    println!("repeated non-stride sequence {:?} x10:", &sequence[..4]);
    for p in &mut predictors {
        let correct = sequence.iter().filter(|&&v| p.observe(pc, v)).count();
        println!("  {:<16} {:>2}/{} correct", p.name(), correct, sequence.len());
    }

    // ----- Part 2: a compiled workload ---------------------------------
    //
    // Build the xlisp-like benchmark (recursive N-queens over a cons
    // heap), trace it with the simulator, and measure the paper's
    // predictors on the real value stream.
    let workload = Workload::reference(Benchmark::Xlisp).with_scale(1);
    let trace = workload.trace(OptLevel::O1, 100_000_000)?;
    println!("\nworkload `{}` ({} predicted instructions):", workload.benchmark(), trace.len());

    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(LastValuePredictor::new()),
        Box::new(StridePredictor::two_delta()),
        Box::new(FcmPredictor::new(3)),
    ];
    for p in &mut predictors {
        let (correct, total) = dvp_core::run_trace(p.as_mut(), trace.iter());
        println!("  {:<8} {:>5.1}% accurate", p.name(), 100.0 * correct as f64 / total as f64);
    }
    println!("\n(the paper's Figure 3 reports this ordering: last value < stride < fcm)");
    Ok(())
}
