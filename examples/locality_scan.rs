//! Measure the two information-theoretic quantities behind the paper's
//! framing: value locality by history depth (Lipasti et al., discussed in
//! Section 1.2) and value-stream entropy (Hammerstrom's redundancy
//! argument), side by side for every benchmark.
//!
//! Depth-1 locality upper-bounds last-value prediction; the depth-16 column
//! shows the headroom that context-based prediction exists to capture; the
//! entropy columns show how much raw information each benchmark's value
//! stream carries (lower = more redundant = more predictable).
//!
//! Run with: `cargo run --release --example locality_scan`

use dvp_core::{EntropyProfile, LastValuePredictor, LocalityProfile, Predictor};
use dvp_lang::OptLevel;
use dvp_workloads::{Benchmark, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>8} {:>9} {:>9}",
        "benchmark", "d1%", "d4%", "d16%", "lvp%", "H-static", "H-dynamic"
    );
    for benchmark in Benchmark::ALL {
        let workload = Workload::reference(benchmark).with_scale(1);
        let trace = workload.trace(OptLevel::O1, 200_000_000)?;

        let mut locality = LocalityProfile::new(16);
        let mut entropy = EntropyProfile::new();
        let mut lvp = LastValuePredictor::new();
        let mut lvp_correct = 0u64;
        for rec in &trace {
            locality.record(rec);
            entropy.record(rec);
            lvp_correct += u64::from(lvp.observe(rec.pc, rec.value));
        }

        println!(
            "{:<10} {:>7.1} {:>7.1} {:>7.1} {:>8.1} {:>9.2} {:>9.2}",
            benchmark.name(),
            100.0 * locality.locality(1, None),
            100.0 * locality.locality(4, None),
            100.0 * locality.locality(16, None),
            100.0 * lvp_correct as f64 / trace.len().max(1) as f64,
            entropy.static_mean_entropy(),
            entropy.dynamic_mean_entropy(),
        );
    }
    println!(
        "\nd1/d4/d16 = value locality at history depths 1/4/16; lvp = last-value\n\
         prediction accuracy (bounded above by d1). H = mean Shannon entropy of\n\
         per-instruction value streams in bits, unweighted over statics and\n\
         weighted by execution count."
    );
    Ok(())
}
